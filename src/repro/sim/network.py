"""Simulated message network with per-link latencies.

Messages between registered nodes are delivered as simulator events after a
one-way delay drawn from a latency provider (usually a
:class:`repro.net.latency_model.LatencyModel` matrix).  Faults are injected
through *interceptors*: callables that may drop, delay or rewrite a message
before it is scheduled for delivery.  This is how the Byzantine behaviours
in :mod:`repro.faults` manipulate traffic without touching protocol code.

Fast path: a network with no interceptors, no down nodes and no active
partition is *pristine*; sends and deliveries then skip every fault check.
The ``_pristine`` flag is recomputed on each topology/interceptor
mutation, so installing a fault mid-run transparently re-enables the
checks -- including for messages already in flight, whose delivery
re-validates against the fabric state at delivery time, as before.  The
fast path performs exactly the same jitter draws in the same order as
the checked path, so seeded runs are bit-identical either way.

Message planes
--------------
The network supports two delivery planes (``plane=`` constructor arg):

``object``
    The historical path: one heap entry per message, one delivery
    callback per message.

``columnar``
    The batched path: every pristine delivery -- unicast rows and the
    fanned-out rows of a multicast alike -- lands in ONE globally
    sorted *spine* of ``(arrival_time, seq, src, dst, message)``
    records with a single armed heap *cursor* at its head.  The event
    heap then carries only timers and the cursor, so when the cursor
    fires, a drain loop delivers long runs of consecutive rows while
    their ``(time, seq)`` keys precede every other pending event (and
    the run horizon), handing maximal same-destination same-class runs
    to per-node batch handlers (``handle_<Class>Batch``).  Every row
    keeps exactly the ``(time, seq)`` key the object plane would have
    assigned -- the same jitter draws in the same order, the same
    consecutive seq numbers -- so delivering rows in spine order *is*
    the object plane's heap pop order and seeded runs are bit-identical
    across planes.  The moment a fault makes the network non-pristine,
    new sends take the object path and in-flight rows drain one message
    at a time through the same delivery-time checks as the object
    plane.

``columnar-fast``
    The relaxed campaign path: pending rows live in a *narrow numpy
    structured array* (f8 time, u4 seq/src/dst, u4 message-pool index;
    ~24 bytes/row vs ~170 for the tuple rows) that is appended to in
    O(1) and never kept sorted.  When the cursor fires, the drain
    selects EVERY pending row whose key precedes the next timer
    barrier, groups the selection by destination and hands each
    destination's maximal same-class run to its batch handler in ONE
    call -- even when, on the exact planes, interleaved traffic to
    other destinations would have split the run.  Semantics are
    *documented-equivalent*, not bit-identical: per-row ``(time, seq)``
    keys, jitter draws and seq allocation are exactly the object
    plane's, and no row is ever reordered across a timer barrier, but
    within a barrier window rows are delivered destination-major, so
    ``sim.now`` can step backwards between destination groups and
    per-replica arrival interleavings differ.  Final metrics (commit
    counts, request totals, latency quantiles) agree with ``columnar``
    within the measurement-sketch error bound; ``plane="check-fast"``
    (resolved by the runner, like ``"check"``) asserts exactly that.
    Faults fall back identically to ``columnar``: new sends take the
    object path and in-flight fast rows drain per message through the
    delivery-time checks.
"""

from __future__ import annotations

from bisect import insort as _insort
from heapq import (
    heappop as _heappop,
    heappush as _heappush,
    heapreplace as _heapreplace,
)
from typing import Any, Callable, Dict, Iterable, Optional

import numpy as np

from repro.sim.engine import Simulator

#: Valid values for the ``plane`` knob as seen by scenario plumbing.  The
#: network itself only builds "object", "columnar" or "columnar-fast";
#: "check" and "check-fast" are resolved by the experiment runner into one
#: run per plane plus a comparison (state-trace hashes for "check", final
#: metrics within the sketch error bound for "check-fast"), mirroring
#: ``check_score``/``check_rebuild``.
MESSAGE_PLANES = ("object", "columnar", "columnar-fast", "check", "check-fast")

# An interceptor receives (src, dst, message, delay) and returns either
# None (drop the message) or a (message, delay) pair to use instead.
Interceptor = Callable[[int, int, Any, float], Optional[tuple]]

#: Sentinel distinguishing "class not yet resolved" from "resolved to no
#: handler" in a registered dispatch cache (see Network.register_dispatch).
_UNRESOLVED = object()

#: Barrier seq used when the horizon (not a heap event) bounds a drain:
#: rows at exactly the horizon time always pass the tie-break.
_INF = float("inf")

#: Byte cap on the relaxed multicast path's per-src row-array cache
#: (``Network._delay_row_arrays``).  Keeps every row resident for the
#: n<=2048 scales while bounding the n=4096/8192 memory diet: the cache
#: is cleared wholesale when the next insert would cross the cap.
_ROW_CACHE_BYTES = 64 << 20


def _provider_delay_floor(provider: Any) -> float:
    """Smallest positive cross-node delay ``provider`` can ever answer.

    Resolved by duck-typing a ``delay_floor()`` method (the latency
    providers in :mod:`repro.net` and the client-site router implement
    it); bare callables answer 0.0, which disables the relaxed drain's
    window cap -- see :meth:`Network._drain_fast` for what that costs in
    equivalence guarantees.
    """
    fn = getattr(provider, "delay_floor", None)
    if fn is None:
        return 0.0
    floor = fn()
    return float(floor) if floor > 0.0 else 0.0


class _SpineBlock:
    """One wide multicast's fanned-out rows in columnar array form.

    The per-row tuples of the scalar spine cost ~170 bytes each; at
    n=4096 a single PBFT broadcast fans out 4095 rows, and the in-flight
    population reaches tens of millions of rows -- multiple GB as
    tuples.  A block keeps the whole fanout as three parallel arrays
    (~24 bytes/row): arrival times (float64), seq numbers (int64) and
    destinations (int64), sorted by ``(time, seq)``; ``src`` and the
    shared ``message`` are stored once.  ``pos`` is the drain cursor
    into the sorted arrays.

    Every value is byte-identical to the tuples it replaces: times are
    ``now + delay`` float64 adds (numpy elementwise == scalar IEEE),
    seqs are the same consecutive allocations, and the stable argsort
    over times reproduces ``(time, seq)`` order because seqs ascend in
    input order.
    """

    __slots__ = ("times", "seqs", "dsts", "src", "message", "pos")

    def __init__(self, times, seqs, dsts, src, message):
        self.times = times
        self.seqs = seqs
        self.dsts = dsts
        self.src = src
        self.message = message
        self.pos = 0


class _Spine:
    """The single global column of pending pristine deliveries.

    ``entries`` is a list of ``(arrival_time, seq, src, dst, message)``
    rows kept sorted by ``(time, seq)`` (seqs are unique, so sort
    comparisons never reach ``src``).  Keeping *all* destinations merged
    in one column -- rather than one column per destination -- is what
    makes the drain loop long: the event heap holds only timers plus one
    cursor for the spine head, so interleaved traffic to different
    destinations no longer breaks a drain into per-row cursor hops.

    ``blocks`` is a heap of ``(head_time, head_seq, _SpineBlock)``
    keyed by each block's first undelivered row; wide multicasts park
    their fanout here instead of merging thousands of tuples into
    ``entries`` (the per-multicast whole-spine re-sort was the n=4096
    wall-clock ceiling).  ``(time, seq)`` keys are globally unique, so
    heap comparisons never reach the block object.

    ``armed`` is the key of the row the live heap cursor is responsible
    for (``None`` when empty); ``live`` holds the keys of every cursor
    currently in the heap, so a drain that re-arms at a key whose cursor
    is still queued does not push a duplicate (two heap tuples with
    equal ``(time, seq)`` would make the heap compare callbacks).  A
    cursor that fires when ``armed`` moved on is stale and returns
    immediately.
    """

    __slots__ = ("entries", "armed", "live", "blocks")

    def __init__(self):
        self.entries: list = []
        self.armed: Optional[tuple] = None
        self.live: set = set()
        self.blocks: list = []

    def __getstate__(self):
        return (self.entries, self.armed, self.live, self.blocks)

    def __setstate__(self, state):
        if len(state) == 3:
            # Pre-block checkpoint: no block heap yet.
            self.entries, self.armed, self.live = state
            self.blocks = []
        else:
            self.entries, self.armed, self.live, self.blocks = state


#: Checkpoint row layout of the relaxed spine (in memory the columns
#: live as parallel contiguous arrays).  u4 seqs are stored relative to
#: ``_FastSpine.seq_base`` so the column survives multi-billion-event
#: runs; u4 src/dst cover any deployment we can fit in memory, and the
#: u4 pool index points into the shared message list (a multicast's
#: whole fanout shares one slot).  ``cls`` is the small-int message
#: class code (``Network._cls_codes``) so the drain finds maximal
#: same-destination same-class runs with one vectorized boundary scan
#: instead of touching every row from Python.
_FAST_DTYPE = np.dtype(
    [
        ("time", "f8"),
        ("seq", "u4"),
        ("src", "u4"),
        ("dst", "u4"),
        ("msg", "u4"),
        ("cls", "u4"),
    ]
)

#: Relative-seq ceiling that triggers a rebase of the fast spine's seq
#: column (leaves ~1M headroom below the u4 limit for in-flight appends).
_FAST_SEQ_LIMIT = 0xFFF00000


class _FastSpine:
    """Pending pristine deliveries of the relaxed ``columnar-fast`` plane.

    In memory the column is six parallel capacity-doubling arrays
    (``times`` f8, ``seqs``/``srcs``/``dsts``/``msgs``/``clss`` u4) --
    parallel rather than one structured array so every hot drain op
    (searchsorted, min, masks, lexsort) runs on contiguous memory
    instead of re-copying a strided field view; checkpoints still
    serialize the packed :data:`_FAST_DTYPE` rows.

    Each column is split in three: ``[:lo]`` is the dead front (already
    delivered, reclaimed by the drain's shift-to-front),
    ``[lo:sorted_end]`` is the *prefix* -- lexsorted by ``(time, seq)``
    -- and ``[sorted_end:count]`` is the unsorted *append tail* the
    send paths push onto in O(1).  The drain consumes the prefix by
    advancing ``lo`` (a searchsorted cut, never a scan of the backlog)
    and the tail by a mask over its few thousand rows, folding the tail
    into the prefix only when it has grown to a fraction of the live
    region -- amortized ``O(log)`` sorts per row instead of the
    O(backlog) selection scan and keep-compaction a flat append-order
    column pays on every pass.

    ``pool`` is the message object list the u4 ``msgs`` column indexes
    into; ``seq_base`` is the absolute seq the relative u4 ``seqs``
    column is anchored at.  ``armed``/``live`` mirror the exact spine's
    cursor bookkeeping (absolute ``(time, seq)`` keys, matching the
    heap entries).
    """

    __slots__ = (
        "times", "seqs", "srcs", "dsts", "msgs", "clss", "count", "pool",
        "armed", "live", "seq_base", "lo", "sorted_end",
    )

    def __init__(self, cap: int = 1024):
        self.times = np.empty(cap, dtype=np.float64)
        self.seqs = np.empty(cap, dtype=np.uint32)
        self.srcs = np.empty(cap, dtype=np.uint32)
        self.dsts = np.empty(cap, dtype=np.uint32)
        self.msgs = np.empty(cap, dtype=np.uint32)
        self.clss = np.empty(cap, dtype=np.uint32)
        self.count = 0
        self.pool: list = []
        self.armed: Optional[tuple] = None
        self.live: set = set()
        self.seq_base = 0
        self.lo = 0
        self.sorted_end = 0

    def grow(self, need: int) -> None:
        cap = len(self.times)
        while cap < need:
            cap *= 2
        count = self.count
        for name in ("times", "seqs", "srcs", "dsts", "msgs", "clss"):
            old = getattr(self, name)
            col = np.empty(cap, dtype=old.dtype)
            col[:count] = old[:count]
            setattr(self, name, col)

    def rebase(self, next_seq: int) -> int:
        """Re-anchor the relative seq column; returns the new base."""
        if self.count > self.lo:
            seqs = self.seqs[self.lo : self.count]
            low = int(seqs.min())
            seqs -= np.uint32(low)
            self.seq_base += low
        else:
            self.seq_base = next_seq
        return self.seq_base

    def __getstate__(self):
        # Checkpoints pack the live rows into the _FAST_DTYPE layout and
        # normalize away the cursor split: restored as an all-tail
        # column the next drain pass re-sorts.  Delivery order is
        # unaffected -- each pass's batch is a selection (window/barrier
        # cut) put into a total (dst, time, seq) order, independent of
        # the prefix/tail representation.
        lo = self.lo
        count = self.count
        rows = np.empty(count - lo, dtype=_FAST_DTYPE)
        rows["time"] = self.times[lo:count]
        rows["seq"] = self.seqs[lo:count]
        rows["src"] = self.srcs[lo:count]
        rows["dst"] = self.dsts[lo:count]
        rows["msg"] = self.msgs[lo:count]
        rows["cls"] = self.clss[lo:count]
        return (rows, self.pool, self.armed, self.live, self.seq_base)

    def __setstate__(self, state):
        rows, self.pool, self.armed, self.live, self.seq_base = state
        n = len(rows)
        cap = 1024
        while cap < n:
            cap *= 2
        self.times = np.empty(cap, dtype=np.float64)
        self.seqs = np.empty(cap, dtype=np.uint32)
        self.srcs = np.empty(cap, dtype=np.uint32)
        self.dsts = np.empty(cap, dtype=np.uint32)
        self.msgs = np.empty(cap, dtype=np.uint32)
        self.clss = np.empty(cap, dtype=np.uint32)
        self.count = n
        self.times[:n] = rows["time"]
        self.seqs[:n] = rows["seq"]
        self.srcs[:n] = rows["src"]
        self.dsts[:n] = rows["dst"]
        self.msgs[:n] = rows["msg"]
        self.clss[:n] = rows["cls"]
        self.lo = 0
        self.sorted_end = 0


class NetworkStats:
    """Counters kept by the network for overhead accounting (Fig. 13).

    ``messages_sent``/``bytes_sent``/``per_type_bytes`` count only traffic
    actually put on the wire: a message dropped at send time (down node,
    partition, interceptor drop) increments ``messages_dropped`` alone, so
    fault scenarios do not inflate the overhead accounting.
    ``messages_multicast`` counts batched :meth:`Network.multicast` calls
    (each of which still counts one ``messages_sent`` per destination).

    Representation: the send path bumps ONE class-keyed ``[count, bytes]``
    accumulator per message; the public totals (``messages_sent``,
    ``bytes_sent``) and the name-keyed ``per_type_bytes`` dict are
    materialized lazily on read.  This replaces the old per-send
    ``type(message).__name__`` string derivation (the satellite fix: the
    name is now derived once per *type* at read time, never on the send
    path) and keeps the per-message cost at a single dict operation.
    """

    __slots__ = (
        "messages_delivered",
        "messages_dropped",
        "messages_multicast",
        "_per_class",
    )

    def __init__(self) -> None:
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_multicast = 0
        #: message class -> [messages, bytes], in first-send order.
        self._per_class: Dict[type, list] = {}

    @property
    def messages_sent(self) -> int:
        return sum(entry[0] for entry in self._per_class.values())

    @property
    def bytes_sent(self) -> int:
        return sum(entry[1] for entry in self._per_class.values())

    @property
    def per_type_bytes(self) -> Dict[str, int]:
        """Bytes per message-type name, in first-send order.

        Materialized on access; distinct classes sharing a ``__name__``
        are summed, matching the historical name-keyed accounting.
        """
        out: Dict[str, int] = {}
        for cls, entry in self._per_class.items():
            name = cls.__name__
            out[name] = out.get(name, 0) + entry[1]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkStats(sent={self.messages_sent}, "
            f"delivered={self.messages_delivered}, "
            f"dropped={self.messages_dropped}, "
            f"multicast={self.messages_multicast}, bytes={self.bytes_sent})"
        )

    def record_send(self, message: Any, size: int) -> None:
        per_class = self._per_class
        cls = message.__class__
        entry = per_class.get(cls)
        if entry is None:
            per_class[cls] = [1, size]
        else:
            entry[0] += 1
            entry[1] += size

    def record_multicast(self, message: Any, size: int, fanout: int) -> None:
        """Batched equivalent of ``fanout`` :meth:`record_send` calls."""
        per_class = self._per_class
        cls = message.__class__
        entry = per_class.get(cls)
        if entry is None:
            per_class[cls] = [fanout, size * fanout]
        else:
            entry[0] += fanout
            entry[1] += size * fanout


class Network:
    """Point-to-point network delivering messages over simulated links.

    Parameters
    ----------
    sim:
        The owning simulator.
    one_way_delay:
        Callable ``(src, dst) -> seconds`` giving the one-way link delay.
    jitter:
        Fractional uniform jitter applied to every delivery; a value of
        0.05 means each delay is multiplied by ``uniform(1.0, 1.05)``.
        Jitter draws come from a dedicated generator so enabling or
        disabling it does not perturb other random streams.
    plane:
        ``"object"`` (default), ``"columnar"`` or ``"columnar-fast"`` --
        see the module docstring.  The first two are bit-identical for
        seeded runs; ``columnar-fast`` trades exact per-row interleaving
        for coalesced barrier-window delivery (documented-equivalent
        final metrics).
    """

    #: Pristine columnar multicasts with at least this fanout go into a
    #: :class:`_SpineBlock` instead of merging tuple rows into the spine.
    #: Class-level so tests can lower it (per instance or globally) to
    #: exercise the block path at small n.
    block_fanout: int = 256

    def __init__(
        self,
        sim: Simulator,
        one_way_delay: Callable[[int, int], float],
        jitter: float = 0.0,
        plane: str = "object",
    ):
        if plane not in ("object", "columnar", "columnar-fast"):
            raise ValueError(
                f"unknown message plane {plane!r}; the network builds "
                "'object', 'columnar' or 'columnar-fast' ('check' and "
                "'check-fast' are resolved by the runner)"
            )
        self.sim = sim
        self.plane = plane
        self._columnar = plane in ("columnar", "columnar-fast")
        self._relaxed = plane == "columnar-fast"
        self._delay_rows: Optional[list] = None
        self._delay_row_fn: Optional[Callable[[int], Optional[list]]] = None
        #: src -> float64 row array for the relaxed multicast path; a
        #: byte-capped snapshot cache over the provider's per-src rows
        #: (cleared by the ``one_way_delay`` setter, never pickled).
        self._delay_row_arrays: Dict[int, Any] = {}
        self.one_way_delay = one_way_delay
        self.jitter = jitter
        self._stats = NetworkStats()
        #: Global sorted column of pending columnar deliveries.
        self._spine = _Spine()
        #: Unsorted structured-array column of the relaxed plane.
        self._fast = _FastSpine()
        #: message class -> small-int code for the relaxed column's
        #: ``cls`` field.  Pickled with the network: buffered rows carry
        #: codes, so the mapping must stay consistent across a resume.
        self._cls_codes: Dict[type, int] = {}
        #: node id -> object probed for ``handle_<Class>Batch`` methods.
        self._batch_endpoints: Dict[int, Any] = {}
        #: node id -> class -> batch handler (or None), lazily resolved.
        self._batch_routes: Dict[int, Dict[type, Optional[Callable]]] = {}
        #: ``(cls code << 32) | dst`` -> resolved dispatch tuple for the
        #: relaxed drain's run loop (see ``_resolve_fast_dispatch``).
        #: Pure cache: cleared on every registration change, never
        #: pickled.
        self._fast_dispatch: Dict[int, tuple] = {}
        self._handlers: Dict[int, Callable[[int, Any], None]] = {}
        #: node id -> its class->bound-handler cache (see
        #: :meth:`register_dispatch`); lets delivery call the terminal
        #: handler directly, skipping the generic inbox dispatch frame.
        self._routes: Dict[int, Dict[type, Optional[Callable]]] = {}
        self._interceptors: list[Interceptor] = []
        self._down: set[int] = set()
        #: node id -> partition group; nodes in different groups cannot
        #: exchange messages.  Nodes absent from the map (e.g. clients)
        #: keep full connectivity.
        self._partition_group: Dict[int, int] = {}
        #: Incremented by every partition(); lets a scheduled heal detect
        #: that a newer partition superseded the one it belongs to.
        self._partition_epoch = 0
        #: True while no interceptor, down node or partition exists; the
        #: send/deliver fast path keys off this single flag.
        self._pristine = True
        self._jitter_rng = sim.derive_rng("network-jitter")
        self._jitter_random = self._jitter_rng.random
        # Pre-bound hot-path callables and references: attribute and
        # descriptor lookups cost real time at one send + one delivery per
        # simulated message.  The delivery callback is closure-compiled so
        # the stable references (routes, handlers, stats) are locals.
        self._post = sim.post
        self._deliver_bound = self._make_deliver()
        self._stats_per_class = self.stats._per_class

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Drop the derived hot-path fields; they are deterministic
        functions of the rest and the delivery closure cannot pickle.
        (Queued heap entries referencing ``_deliver_bound`` are handled
        by the checkpoint module's persistent-id hooks.)

        Everything else round-trips as-is -- audited per field:

        * ``_pristine`` pickles verbatim and stays consistent because the
          inputs it is derived from (``_interceptors``, ``_down``,
          ``_partition_group``) pickle in the same snapshot; a resume
          therefore re-checks in-flight deliveries exactly as the
          uninterrupted run would.
        * ``_stats_per_class`` is re-pointed at the restored ``_stats``
          accumulator in ``__setstate__`` -- it must never be pickled, or
          the copy would split the send accounting from ``stats``.
        * ``_delay_rows`` / ``_delay_row_fn`` are re-derived from the
          restored provider so a provider without a ``rows`` matrix (or
          ``row()`` view) never resurrects a stale one.
        * The columnar state (``_spine``, ``_batch_endpoints``,
          ``_batch_routes``) pickles verbatim: spine rows hold only
          plain values and messages, and the cached batch handlers are
          bound methods of replicas already in the checkpoint graph, so
          they rebind to the restored replicas on load.  The drain
          callback queued in the heap is a plain bound method
          (``_drain_spine``) and needs no persistent-id treatment.
        """
        state = self.__dict__.copy()
        for key in (
            "_deliver_bound",
            "_post",
            "_stats_per_class",
            "_delay_rows",
            "_delay_row_fn",
            "_jitter_random",
            "_fast_dispatch",
            "_delay_row_arrays",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        if "_relaxed" not in state:
            # Checkpoint from before the relaxed plane existed.
            self._relaxed = False
        if "_fast" not in state:
            self._fast = _FastSpine()
        if "_cls_codes" not in state:
            self._cls_codes = {}
        if "_delay_floor" not in state:
            self._delay_floor = (
                _provider_delay_floor(self._one_way_delay)
                if self._relaxed
                else 0.0
            )
        self._post = self.sim.post
        self._jitter_random = self._jitter_rng.random
        self._fast_dispatch = {}
        self._delay_row_arrays = {}
        self._delay_rows = getattr(self._one_way_delay, "rows", None)
        self._delay_row_fn = getattr(self._one_way_delay, "row", None)
        self._deliver_bound = self._make_deliver()
        self._stats_per_class = self._stats._per_class

    # ------------------------------------------------------------------
    # Stats, delay provider and jitter
    # ------------------------------------------------------------------
    @property
    def stats(self) -> NetworkStats:
        """The network's counters.  Read-only by design: the hot paths
        hold direct references into this object (``_stats_per_class``,
        the delivery closure), so swapping it out would silently split
        the accounting -- attempting to assign raises instead."""
        return self._stats

    @property
    def one_way_delay(self) -> Callable[[int, int], float]:
        return self._one_way_delay

    @one_way_delay.setter
    def one_way_delay(self, value: Callable[[int, int], float]) -> None:
        self._one_way_delay = value
        self._delay_row_arrays.clear()
        # Providers that expose their full matrix (Deployment.one_way)
        # let the send paths index a plain list instead of calling out.
        self._delay_rows = getattr(value, "rows", None)
        # Providers without an eager matrix may still serve one row at a
        # time (``row(src) -> list | None``): the hierarchical substrate
        # and the lazy dense provider synthesize rows on demand, and the
        # client-site router forwards replica rows while answering None
        # for client sources (which need its scalar mapping).
        self._delay_row_fn = getattr(value, "row", None)
        # The relaxed drain's window cap needs a lower bound on every
        # cross-node delay; the exact planes never read it.
        self._delay_floor = (
            _provider_delay_floor(value) if self._relaxed else 0.0
        )

    @property
    def jitter(self) -> float:
        return self._jitter

    @jitter.setter
    def jitter(self, value: float) -> None:
        self._jitter = value
        # Matches random.Random.uniform(1.0, 1.0 + jitter) bit-for-bit:
        # uniform(a, b) computes a + (b - a) * random(), so the span must
        # be the rounded difference, not the raw jitter value.
        self._jitter_span = (1.0 + value) - 1.0

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def _refresh_fast_path(self) -> None:
        self._pristine = not (
            self._interceptors or self._down or self._partition_group
        )

    def register(self, node_id: int, handler: Callable[[int, Any], None]) -> None:
        """Register ``handler(src, message)`` as the inbox of ``node_id``."""
        self._handlers[node_id] = handler
        self._fast_dispatch.clear()

    def register_dispatch(
        self, node_id: int, dispatch: Dict[type, Optional[Callable]]
    ) -> None:
        """Opt-in delivery fast path for ``node_id``.

        ``dispatch`` is a *live* message-class -> bound-handler mapping
        (``None`` meaning "no handler for this class") that the node's
        inbox keeps populated as it resolves classes.  Delivery consults
        it first and calls the terminal handler directly; unknown classes
        fall back to the registered inbox, which resolves and caches them.
        Counting semantics are identical either way: a delivery to a
        registered node counts as delivered even when the class resolves
        to no handler, exactly as the generic inbox behaves.
        """
        self._routes[node_id] = dispatch
        self._fast_dispatch.clear()

    def register_batch_endpoint(self, node_id: int, endpoint: Any) -> None:
        """Columnar-plane opt-in: deliver same-class runs in bulk.

        ``endpoint`` (usually the replica object) is probed lazily for
        ``handle_<ClassName>Batch(srcs, messages, times)`` methods; when
        one exists, the spine drain hands it a maximal run of *two or
        more* consecutive same-class rows bound for this node instead of
        delivering them one at a time.  Single-row runs keep the
        ordinary per-row delivery: a batched class must therefore retain
        an equivalent per-row handler (the object plane needs one
        anyway, and cross-plane bit-identity already demands the two be
        indistinguishable).

        Batch-handler contract (load-bearing for bit-identity):

        * Rows must be processed in order, with ``sim.now`` set to
          ``times[k]`` before row ``k``'s side effects (the drain sets it
          to ``times[0]`` before the call).
        * The handler must return the number of rows consumed, and it
          must stop -- returning ``k + 1`` -- as soon as processing row
          ``k`` sends a message or schedules an event, because those side
          effects may now precede row ``k + 1`` in global event order.
          Rows that only mutate local state may be consumed freely.
        * Returning ``None`` means "all rows consumed" (valid only for
          handlers whose rows never send or schedule).
        """
        self._batch_endpoints[node_id] = endpoint
        self._batch_routes[node_id] = {}
        self._fast_dispatch.clear()

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)
        self._routes.pop(node_id, None)
        self._batch_endpoints.pop(node_id, None)
        self._batch_routes.pop(node_id, None)
        self._fast_dispatch.clear()

    def set_down(self, node_id: int, down: bool = True) -> None:
        """Crash (or revive) a node: messages to and from it are dropped."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)
        self._refresh_fast_path()

    def is_down(self, node_id: int) -> bool:
        return node_id in self._down

    def partition(self, groups: Iterable[Iterable[int]]) -> int:
        """Split the network into isolated ``groups`` of nodes.

        Links inside a group keep working; messages between nodes of
        different groups are dropped -- at send time for new traffic and
        at delivery time for messages already in flight, mirroring the
        node-down semantics.  Unlike :meth:`set_down` the nodes stay
        alive: they keep processing timers and intra-group traffic, which
        is what distinguishes a partition from a crash.

        Nodes not named in any group (clients, late joiners) retain full
        connectivity.  Calling :meth:`partition` again replaces the
        previous partition; :meth:`heal` removes it.

        Returns an epoch token: pass it to :meth:`heal` so a heal
        scheduled for *this* partition becomes a no-op if a newer
        partition has replaced it in the meantime.
        """
        mapping: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                if node in mapping:
                    raise ValueError(f"node {node} appears in two partition groups")
                mapping[node] = index
        self._partition_group = mapping
        self._partition_epoch += 1
        self._refresh_fast_path()
        return self._partition_epoch

    def heal(self, epoch: Optional[int] = None) -> None:
        """Remove the current partition; all links work again.

        With ``epoch`` (from :meth:`partition`), only heal if that
        partition is still the active one -- a later partition survives
        an earlier partition's scheduled heal.
        """
        if epoch is not None and epoch != self._partition_epoch:
            return
        self._partition_group = {}
        self._refresh_fast_path()

    def reachable(self, src: int, dst: int) -> bool:
        """Can a message currently flow ``src`` -> ``dst``?"""
        if src in self._down or dst in self._down:
            return False
        return not self._partitioned(src, dst)

    def _partitioned(self, a: int, b: int) -> bool:
        group_a = self._partition_group.get(a)
        group_b = self._partition_group.get(b)
        return group_a is not None and group_b is not None and group_a != group_b

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Install a fault-injection hook; interceptors run in order."""
        self._interceptors.append(interceptor)
        self._refresh_fast_path()

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)
        self._refresh_fast_path()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: Any, size: int = 0) -> None:
        """Send ``message`` from ``src`` to ``dst`` after the link delay.

        ``size`` is the serialized size in bytes, used only for statistics.
        Self-delivery is supported with zero latency (plus jitter) because
        protocol code treats the local replica uniformly.

        Only messages that actually reach the wire are counted as sent;
        send-time drops (down endpoint, partition, interceptor) count as
        dropped instead.
        """
        if self._pristine:
            if self._columnar:
                # Columnar pristine unicast: insert one row into the
                # global spine instead of pushing a heap entry.  Delay,
                # jitter draw, stats bump and seq allocation are
                # identical (same values, same order) to the object
                # branch below, so the row carries exactly the
                # ``(time, seq)`` key the object plane would have used.
                # Inlined rather than a helper: one call frame per
                # message is measurable on the steady-state path.
                if src == dst:
                    delay = 0.0
                else:
                    rows = self._delay_rows
                    delay = (
                        rows[src][dst] if rows is not None
                        else self._one_way_delay(src, dst)
                    )
                if self._jitter > 0.0:
                    delay *= 1.0 + self._jitter_span * self._jitter_random()
                per_class = self._stats_per_class
                cls = message.__class__
                entry = per_class.get(cls)
                if entry is None:
                    per_class[cls] = [1, size]
                else:
                    entry[0] += 1
                    entry[1] += size
                sim = self.sim
                seq = sim._seq
                sim._seq = seq + 1
                time = sim.now + delay
                if self._relaxed:
                    if src == dst:
                        # Zero-delay self rows are delivered inline at
                        # send time: parked in the column they would be
                        # the one row class that can arrive *inside* the
                        # current drain window (everything cross-node is
                        # at least ``_delay_floor`` away), breaking the
                        # per-destination time order the window cap
                        # guarantees.  The seq above is still allocated,
                        # keeping seq alignment with the exact planes.
                        self._deliver_bound(src, dst, message)
                        return
                    # Relaxed plane: O(1) append to the structured
                    # column (the exact spine pays an O(rows) insort
                    # memmove per unicast).  Same delay, jitter draw,
                    # stats bump and seq as the exact branches.
                    fast = self._fast
                    if seq - fast.seq_base >= _FAST_SEQ_LIMIT:
                        fast.rebase(seq)
                    count = fast.count
                    if count == len(fast.times):
                        fast.grow(count + 1)
                    pool = fast.pool
                    codes = self._cls_codes
                    code = codes.get(cls)
                    if code is None:
                        code = codes[cls] = len(codes)
                    fast.times[count] = time
                    fast.seqs[count] = seq - fast.seq_base
                    fast.srcs[count] = src
                    fast.dsts[count] = dst
                    fast.msgs[count] = len(pool)
                    fast.clss[count] = code
                    pool.append(message)
                    fast.count = count + 1
                    armed = fast.armed
                    if armed is None or time < armed[0] or (
                        time == armed[0] and seq < armed[1]
                    ):
                        key = (time, seq)
                        fast.armed = key
                        fast.live.add(key)
                        queue = sim._queue
                        _heappush(
                            queue, (time, seq, None, self._drain_fast, (time, seq))
                        )
                        if len(queue) > sim.max_queue_depth:
                            sim.max_queue_depth = len(queue)
                    return
                spine = self._spine
                _insort(spine.entries, (time, seq, src, dst, message))
                armed = spine.armed
                if armed is None or time < armed[0] or (
                    time == armed[0] and seq < armed[1]
                ):
                    key = (time, seq)
                    spine.armed = key
                    spine.live.add(key)
                    queue = sim._queue
                    _heappush(
                        queue, (time, seq, None, self._drain_spine, (time, seq))
                    )
                    if len(queue) > sim.max_queue_depth:
                        sim.max_queue_depth = len(queue)
                return
            if src == dst:
                delay = 0.0
            else:
                rows = self._delay_rows
                delay = (
                    rows[src][dst] if rows is not None
                    else self._one_way_delay(src, dst)
                )
            if self._jitter > 0.0:
                delay *= 1.0 + self._jitter_span * self._jitter_random()
            # record_send(), inlined: one send per protocol message makes
            # even the method call measurable.
            per_class = self._stats_per_class
            cls = message.__class__
            entry = per_class.get(cls)
            if entry is None:
                per_class[cls] = [1, size]
            else:
                entry[0] += 1
                entry[1] += size
            # Simulator.post(), inlined (same entry shape and ordering):
            # one frame per simulated message is measurable too.
            sim = self.sim
            seq = sim._seq
            sim._seq = seq + 1
            queue = sim._queue
            _heappush(
                queue,
                (sim.now + delay, seq, None, self._deliver_bound, (src, dst, message)),
            )
            if len(queue) > sim.max_queue_depth:
                sim.max_queue_depth = len(queue)
            return
        if src in self._down or dst in self._down or self._partitioned(src, dst):
            self.stats.messages_dropped += 1
            return
        delay = 0.0 if src == dst else self.one_way_delay(src, dst)
        if self._jitter > 0.0:
            delay *= 1.0 + self._jitter_span * self._jitter_random()
        for interceptor in self._interceptors:
            result = interceptor(src, dst, message, delay)
            if result is None:
                self.stats.messages_dropped += 1
                return
            message, delay = result
        self.stats.record_send(message, size)
        self._post(delay, self._deliver_bound, (src, dst, message))

    def multicast(self, src: int, dsts: Iterable[int], message: Any, size: int = 0) -> None:
        """Send the same message to every destination, as one batch.

        On a pristine network the per-destination fault checks and stats
        bookkeeping are hoisted out of the loop; per-destination delays and
        jitter draws are identical (same values, same RNG order) to a loop
        of :meth:`send` calls, so the batch is purely a constant-factor
        optimisation.  On a faulted network it degrades to exactly that
        loop.
        """
        self.stats.messages_multicast += 1
        if not self._pristine:
            for dst in dsts:
                self.send(src, dst, message, size)
            return
        if self._columnar:
            if self._relaxed:
                self._multicast_fast(src, dsts, message, size)
            else:
                self._multicast_columnar(src, dsts, message, size)
            return
        one_way = self._one_way_delay
        jittered = self._jitter > 0.0
        span = self._jitter_span
        rand = self._jitter_random
        deliver = self._deliver_bound
        # When the delay provider exposes its matrix (Deployment.one_way
        # does), index the row directly instead of calling per destination.
        # Row-serving providers (hierarchical substrate, lazy dense,
        # client-site router) answer one row at a time -- or None, which
        # falls back to the scalar loop.
        rows = self._delay_rows
        row = rows[src] if rows is not None else None
        if row is None:
            row_fn = self._delay_row_fn
            if row_fn is not None:
                row = row_fn(src)
        # Simulator.post(), inlined and hoisted: ``now`` is constant for
        # the whole batch and the entries keep consecutive seq numbers
        # (nothing else can push while this loop runs), so ordering is
        # identical to a loop of send() calls.
        sim = self.sim
        now = sim.now
        queue = sim._queue
        seq = sim._seq
        fanout = 0
        if row is not None:
            for dst in dsts:
                delay = 0.0 if src == dst else row[dst]
                if jittered:
                    delay *= 1.0 + span * rand()
                _heappush(queue, (now + delay, seq, None, deliver, (src, dst, message)))
                seq += 1
                fanout += 1
        else:
            for dst in dsts:
                delay = 0.0 if src == dst else one_way(src, dst)
                if jittered:
                    delay *= 1.0 + span * rand()
                _heappush(queue, (now + delay, seq, None, deliver, (src, dst, message)))
                seq += 1
                fanout += 1
        sim._seq = seq
        if len(queue) > sim.max_queue_depth:
            sim.max_queue_depth = len(queue)
        if fanout:
            self.stats.record_multicast(message, size, fanout)

    # ------------------------------------------------------------------
    # Columnar plane: batched sends and drain loops
    # ------------------------------------------------------------------
    def _multicast_columnar(
        self, src: int, dsts: Iterable[int], message: Any, size: int
    ) -> None:
        """Pristine multicast on the columnar plane: merge the fanned-out
        rows into the spine instead of pushing ``fanout`` heap entries.

        The per-destination loop draws jitter in destination order and
        reserves the same consecutive seq numbers the object plane's
        multicast would have assigned, so each row keeps the object
        plane's exact ``(time, seq)`` key; merging by that key reproduces
        the heap's pop order (seqs are unique, so the order is total).

        Merging mid-drain is safe: every new key exceeds the key of the
        row currently being delivered (times are ``>= now``, seqs are
        fresh), and the spine's already-delivered prefix holds strictly
        smaller keys, so a whole-list sort leaves that prefix -- and the
        drain's index into it -- untouched.
        """
        one_way = self._one_way_delay
        jittered = self._jitter > 0.0
        span = self._jitter_span
        rand = self._jitter_random
        drows = self._delay_rows
        row = drows[src] if drows is not None else None
        if row is None:
            row_fn = self._delay_row_fn
            if row_fn is not None:
                row = row_fn(src)
        sim = self.sim
        now = sim.now
        first = sim._seq
        try:
            sized_fanout = len(dsts)  # type: ignore[arg-type]
        except TypeError:
            sized_fanout = -1  # generator: always the tuple-row path
        if sized_fanout >= self.block_fanout:
            self._multicast_block(
                src, dsts, message, size, row, now, first, jittered, span, rand
            )
            return
        seq = first
        new_rows = []
        append = new_rows.append
        if row is not None:
            for dst in dsts:
                delay = 0.0 if src == dst else row[dst]
                if jittered:
                    delay *= 1.0 + span * rand()
                append((now + delay, seq, src, dst, message))
                seq += 1
        else:
            for dst in dsts:
                delay = 0.0 if src == dst else one_way(src, dst)
                if jittered:
                    delay *= 1.0 + span * rand()
                append((now + delay, seq, src, dst, message))
                seq += 1
        sim._seq = seq
        fanout = seq - first
        if not fanout:
            return
        self.stats.record_multicast(message, size, fanout)
        new_rows.sort()
        spine = self._spine
        entries = spine.entries
        if not entries:
            entries.extend(new_rows)
        elif fanout < 8:
            # Small fanout (Kauri tree hops): per-row insertion beats
            # re-merging the whole spine.
            for r in new_rows:
                _insort(entries, r)
        else:
            # Two sorted runs; timsort merges them in one galloping pass.
            entries.extend(new_rows)
            entries.sort()
        t0 = new_rows[0][0]
        s0 = new_rows[0][1]
        armed = spine.armed
        if armed is None or t0 < armed[0] or (t0 == armed[0] and s0 < armed[1]):
            key = (t0, s0)
            spine.armed = key
            spine.live.add(key)
            queue = sim._queue
            _heappush(queue, (t0, s0, None, self._drain_spine, (t0, s0)))
            if len(queue) > sim.max_queue_depth:
                sim.max_queue_depth = len(queue)

    def _multicast_block(
        self, src, dsts, message, size, row, now, first, jittered, span, rand
    ) -> None:
        """Wide pristine multicast: park the fanout as one
        :class:`_SpineBlock` instead of merging tuple rows.

        Replaces the per-multicast whole-spine re-sort -- O(spine) per
        wide multicast, the n>=1024 wall-clock ceiling -- with an O(f
        log f) sort of this fanout alone, and the ~170-byte tuples with
        ~24-byte array rows.  Delays and jitter draws happen in
        destination order with the same ops as the tuple path, and seqs
        are the same consecutive allocations, so every ``(time, seq,
        src, dst)`` the drain reads back is byte-identical to the rows
        it replaces.
        """
        one_way = self._one_way_delay
        delays = []
        append = delays.append
        if row is not None:
            if jittered:
                for dst in dsts:
                    delay = 0.0 if src == dst else row[dst]
                    append(delay * (1.0 + span * rand()))
            else:
                for dst in dsts:
                    append(0.0 if src == dst else row[dst])
        elif jittered:
            for dst in dsts:
                delay = 0.0 if src == dst else one_way(src, dst)
                append(delay * (1.0 + span * rand()))
        else:
            for dst in dsts:
                append(0.0 if src == dst else one_way(src, dst))
        fanout = len(delays)
        if not fanout:
            return
        sim = self.sim
        sim._seq = first + fanout
        self.stats.record_multicast(message, size, fanout)
        # float64 elementwise add == the scalar ``now + delay`` bitwise;
        # seqs ascend in destination order, so a stable sort on times
        # alone yields exact ``(time, seq)`` order.
        times = now + np.array(delays, dtype=float)
        order = np.argsort(times, kind="stable")
        times = times[order]
        seqs = first + order.astype(np.int64)
        dsts_arr = np.fromiter(dsts, dtype=np.int64, count=fanout)[order]
        block = _SpineBlock(times, seqs, dsts_arr, src, message)
        t0 = times.item(0)
        s0 = seqs.item(0)
        spine = self._spine
        _heappush(spine.blocks, (t0, s0, block))
        armed = spine.armed
        if armed is None or t0 < armed[0] or (t0 == armed[0] and s0 < armed[1]):
            key = (t0, s0)
            spine.armed = key
            spine.live.add(key)
            queue = sim._queue
            _heappush(queue, (t0, s0, None, self._drain_spine, (t0, s0)))
            if len(queue) > sim.max_queue_depth:
                sim.max_queue_depth = len(queue)

    def _drain_spine(self, time: float, seq: int) -> None:
        """Cursor callback for the spine: deliver consecutive rows while
        their keys precede every other pending event, handing maximal
        same-destination same-class runs to batch handlers.

        A row is delivered only when no event with a smaller
        ``(time, seq)`` key exists anywhere (heap, horizon, or a parked
        block) -- at that point the object plane would have popped
        exactly this row next, so delivering it here preserves global
        event order, clock values and seq allocation bit-for-bit.
        ``sim.now`` is advanced to each row's arrival time before its
        handler runs.  When a foreign event intervenes, the cursor
        re-arms at the next undelivered key.

        The barrier (heap head key, capped by the horizon) is
        snapshotted once and revalidated only when delivering a row
        changed the heap head -- handlers push timers but never pop, so
        the head object's identity is a sufficient staleness check.  On
        the columnar plane handler *sends* go back into the spine, not
        the heap, so the snapshot usually survives the whole drain and
        rows inserted mid-drain are picked up in key order by the index
        walk: their fresh seqs place them after the row being delivered
        and before any undelivered row they precede.

        Under one barrier snapshot the drain *alternates* between the
        scalar spine and the block heap: scalar rows run up to the
        leading block's head key, then the leading block runs up to the
        next scalar key, and so on -- a strict two-way merge in
        ``(time, seq)`` order, so interleaving blocks changes nothing
        observable.  A scalar run trusts head identity on the block
        heap (its keys are exact between runs: any block that tightens
        the cap surfaces at ``blocks[0]``); a block run instead watches
        ``len(blocks)``/``len(entries)``, because its own heap key goes
        stale while rows are consumed, so a handler-pushed block or
        scalar insert can precede the remaining rows without ever
        reaching the heap top.
        """
        spine = self._spine
        key = (time, seq)
        live = spine.live
        live.discard(key)
        if spine.armed != key:
            return  # Stale cursor: an earlier drain already passed this key.
        entries = spine.entries
        blocks = spine.blocks
        sim = self.sim
        queue = sim._queue
        horizon = sim.horizon
        routes_get = self._routes.get
        handlers_get = self._handlers.get
        batch_routes_get = self._batch_routes.get
        stats = self._stats
        unresolved = _UNRESOLVED
        i = 0
        done = False
        while not done:
            # Barrier snapshot: clear cancelled timers at the head (the
            # run loop would discard them anyway; yielding to one wastes
            # a re-arm), then cap the head key by the horizon.
            while queue:
                head = queue[0]
                handle = head[2]
                if handle is None or not handle.cancelled:
                    break
                _heappop(queue)
            if queue:
                head = queue[0]
                bt = head[0]
                bs = head[1]
                if bt > horizon:
                    bt = horizon
                    bs = _INF
            else:
                head = None
                bt = horizon
                bs = _INF
            while True:
                # ---- scalar run: up to the leading block's head ----
                btop = blocks[0] if blocks else None
                sbt = bt
                sbs = bs
                capped = False
                if btop is not None:
                    t0 = btop[0]
                    if t0 < sbt or (t0 == sbt and btop[1] < sbs):
                        sbt = t0
                        sbs = btop[1]
                        capped = True
                # 0 = entries exhausted, 1 = hit the cap, 2 = heap head
                # moved (re-snapshot the barrier), 3 = block head moved
                # (re-derive the cap).
                stop = 0
                while i < len(entries):
                    if i >= 256:
                        # Compact the delivered prefix mid-drain.  A long
                        # drain otherwise keeps dead rows in front, which
                        # makes every mid-drain multicast merge (and every
                        # insort bisect) pay for rows that are already
                        # gone.  Only the in-flight suffix moves, so this
                        # is O(1) amortized per delivered row.
                        del entries[:i]
                        i = 0
                    row = entries[i]
                    t = row[0]
                    if t > sbt or (t == sbt and row[1] > sbs):
                        # The cap (block head, foreign event or horizon)
                        # comes first.
                        stop = 1
                        break
                    dst = row[3]
                    if not self._pristine:
                        # A fault landed while rows were in flight: fall
                        # back to per-message delivery-time checks (drops
                        # count exactly as on the object plane).
                        sim.now = t
                        self._deliver_bound(row[2], dst, row[4])
                        i += 1
                        if queue and queue[0] is not head:
                            stop = 2
                            break
                        if blocks and blocks[0] is not btop:
                            stop = 3
                            break
                        continue
                    message = row[4]
                    cls = message.__class__
                    batch_route = batch_routes_get(dst)
                    if batch_route is not None:
                        bh = batch_route.get(cls, unresolved)
                        if bh is unresolved:
                            endpoint = self._batch_endpoints.get(dst)
                            bh = (
                                getattr(
                                    endpoint, "handle_" + cls.__name__ + "Batch", None
                                )
                                if endpoint is not None
                                else None
                            )
                            batch_route[cls] = bh
                        if bh is not None:
                            # Maximal run of same-destination same-class
                            # rows inside the cap, handed over as one
                            # column.
                            j = i + 1
                            total = len(entries)
                            while j < total:
                                r2 = entries[j]
                                t2 = r2[0]
                                if (
                                    r2[3] != dst
                                    or t2 > sbt
                                    or (t2 == sbt and r2[1] > sbs)
                                    or r2[4].__class__ is not cls
                                ):
                                    break
                                j += 1
                            width = j - i
                            if width > 1:
                                sim.now = t
                                times, _seqs, srcs, _dsts, messages = zip(
                                    *entries[i:j]
                                )
                                consumed = bh(srcs, messages, times)
                                if consumed is None:
                                    consumed = width
                                elif consumed < 1:
                                    consumed = 1
                                elif consumed > width:
                                    consumed = width
                                stats.messages_delivered += consumed
                                i += consumed
                                if queue and queue[0] is not head:
                                    stop = 2
                                    break
                                if blocks and blocks[0] is not btop:
                                    stop = 3
                                    break
                                continue
                            # width == 1: the per-row handler below is
                            # cheaper than the column machinery, and every
                            # batched class has one (the object plane
                            # depends on it), with identical semantics by
                            # the batch-handler contract.
                    sim.now = t
                    route = routes_get(dst)
                    if route is not None:
                        handler = route.get(cls, unresolved)
                        if handler is not unresolved:
                            stats.messages_delivered += 1
                            if handler is not None:
                                handler(row[2], message)
                            i += 1
                            if queue and queue[0] is not head:
                                stop = 2
                                break
                            if blocks and blocks[0] is not btop:
                                stop = 3
                                break
                            continue
                    fallback = handlers_get(dst)
                    if fallback is None:
                        stats.messages_dropped += 1
                    else:
                        stats.messages_delivered += 1
                        fallback(row[2], message)
                    i += 1
                    if queue and queue[0] is not head:
                        stop = 2
                        break
                    if blocks and blocks[0] is not btop:
                        stop = 3
                        break
                if stop == 2:
                    break  # Re-snapshot the barrier.
                if stop == 3:
                    continue  # Re-derive the block cap.
                if stop == 1 and not capped:
                    done = True  # True barrier (foreign event/horizon).
                    break
                # Scalar rows are exhausted (stop 0) or the leading block
                # precedes the next row (stop 1, capped): run the block
                # if it still precedes the barrier.
                if btop is None:
                    done = True
                    break
                bt0 = btop[0]
                if bt0 > bt or (bt0 == bt and btop[1] > bs):
                    done = True
                    break
                # ---- block run: up to the next scalar key ----
                block = btop[2]
                btimes = block.times
                bseqs = block.seqs
                bdsts = block.dsts
                bsrc = block.src
                message = block.message
                cls = message.__class__
                pos = block.pos
                end = len(btimes)
                cbt = bt
                cbs = bs
                if i < len(entries):
                    r0 = entries[i]
                    rt = r0[0]
                    if rt < cbt or (rt == cbt and r0[1] < cbs):
                        cbt = rt
                        cbs = r0[1]
                # The block's heap key goes stale as rows are consumed,
                # so head identity cannot spot handler-pushed blocks or
                # scalar inserts; watch the container lengths instead
                # (handlers only ever add).
                nblocks = len(blocks)
                elen = len(entries)
                if nblocks > 1:
                    # Concurrent wide multicasts (PBFT all-to-all)
                    # interleave row-by-row: also stop at the runner-up
                    # block's head -- the smaller of the heap root's two
                    # children.
                    b1 = blocks[1]
                    if nblocks > 2:
                        b2 = blocks[2]
                        if b2[0] < b1[0] or (b2[0] == b1[0] and b2[1] < b1[1]):
                            b1 = b2
                    if b1[0] < cbt or (b1[0] == cbt and b1[1] < cbs):
                        cbt = b1[0]
                        cbs = b1[1]
                requeue = False
                while pos < end:
                    t = btimes.item(pos)
                    s = bseqs.item(pos)
                    if t > cbt or (t == cbt and s > cbs):
                        break
                    dst = bdsts.item(pos)
                    pos += 1
                    sim.now = t
                    if not self._pristine:
                        self._deliver_bound(bsrc, dst, message)
                    else:
                        # Per-row delivery: destinations within one
                        # multicast are distinct, so the batch scan
                        # would only ever find width-1 runs here.
                        delivered = False
                        route = routes_get(dst)
                        if route is not None:
                            handler = route.get(cls, unresolved)
                            if handler is not unresolved:
                                stats.messages_delivered += 1
                                if handler is not None:
                                    handler(bsrc, message)
                                delivered = True
                        if not delivered:
                            fallback = handlers_get(dst)
                            if fallback is None:
                                stats.messages_dropped += 1
                            else:
                                stats.messages_delivered += 1
                                fallback(bsrc, message)
                    if (
                        (queue and queue[0] is not head)
                        or len(blocks) != nblocks
                        or len(entries) != elen
                    ):
                        requeue = queue and queue[0] is not head
                        break
                if pos >= end:
                    _heappop(blocks)
                else:
                    # Re-key the heap entry at the first undelivered row.
                    block.pos = pos
                    _heapreplace(
                        blocks, (btimes.item(pos), bseqs.item(pos), block)
                    )
                if requeue:
                    break  # Re-snapshot the barrier.
                # Otherwise keep alternating under this snapshot.
        if i:
            del entries[:i]
        nkey = None
        if entries:
            r0 = entries[0]
            nkey = (r0[0], r0[1])
        if blocks:
            b0 = blocks[0]
            bkey = (b0[0], b0[1])
            if nkey is None or bkey < nkey:
                nkey = bkey
        if nkey is not None:
            spine.armed = nkey
            if nkey not in live:
                live.add(nkey)
                _heappush(
                    queue, (nkey[0], nkey[1], None, self._drain_spine, nkey)
                )
                if len(queue) > sim.max_queue_depth:
                    sim.max_queue_depth = len(queue)
        else:
            spine.armed = None

    # ------------------------------------------------------------------
    # Relaxed plane: structured-array sends and coalescing drain
    # ------------------------------------------------------------------
    def _multicast_fast(
        self, src: int, dsts: Iterable[int], message: Any, size: int
    ) -> None:
        """Pristine multicast on the relaxed plane: append the whole
        fanout as one vectorized segment of the structured column.

        Delays and jitter draws happen in destination order with the
        same ops as the exact planes, and seqs are the same consecutive
        allocations, so every row carries the object plane's exact
        ``(time, seq)`` key; only the delivery-side interleaving is
        relaxed.  The fanout shares one message-pool slot.  Zero-delay
        self copies (``broadcast(include_self=True)``) are delivered
        inline at send time rather than parked in the column -- they are
        the one row class that can arrive inside the current drain
        window, which would break the per-destination time order the
        window cap guarantees (see ``send``).
        """
        one_way = self._one_way_delay
        jittered = self._jitter > 0.0
        span = self._jitter_span
        rand = self._jitter_random
        drows = self._delay_rows
        row = drows[src] if drows is not None else None
        if row is None:
            row_fn = self._delay_row_fn
            if row_fn is not None:
                row = row_fn(src)
        if not isinstance(dsts, (list, tuple)):
            dsts = list(dsts)
        fanout = len(dsts)
        if not fanout:
            return
        dst_arr = np.asarray(dsts, dtype=np.uint32)
        self_mask = dst_arr == np.uint32(src)
        nself = int(np.count_nonzero(self_mask))
        if row is not None:
            # Vectorized delay build: gather from a float64 snapshot of
            # the provider's row (byte-capped cache -- rows are static
            # for the run), zero the self positions, then apply the
            # jitter multipliers.  The draws happen in the same
            # destination order and each element sees the same scalar
            # op sequence (span*r, 1.0+, delay*) as the exact planes'
            # per-dst loop, so the times are bit-identical.
            cache = self._delay_row_arrays
            arr = cache.get(src)
            if arr is None:
                arr = np.asarray(row, dtype=np.float64)
                if (len(cache) + 1) * arr.nbytes > _ROW_CACHE_BYTES:
                    cache.clear()
                cache[src] = arr
            delays = arr[dst_arr]
            if nself:
                delays[self_mask] = 0.0
            if jittered:
                draws = [rand() for _ in range(fanout)]
                delays *= 1.0 + span * np.asarray(draws, dtype=np.float64)
        else:
            dl = []
            append = dl.append
            if jittered:
                for dst in dsts:
                    delay = 0.0 if src == dst else one_way(src, dst)
                    append(delay * (1.0 + span * rand()))
            else:
                for dst in dsts:
                    append(0.0 if src == dst else one_way(src, dst))
            delays = np.asarray(dl, dtype=np.float64)
        sim = self.sim
        now = sim.now
        first = sim._seq
        sim._seq = first + fanout
        self.stats.record_multicast(message, size, fanout)
        fast = self._fast
        if first + fanout - fast.seq_base >= _FAST_SEQ_LIMIT:
            fast.rebase(first)
        times = now + delays
        if nself:
            keep = ~self_mask
            times_k = times[keep]
            dst_k = dst_arr[keep]
            seqs_k = np.arange(first, first + fanout, dtype=np.int64)[keep]
        else:
            times_k = times
            dst_k = dst_arr
            seqs_k = None
        fanout_k = fanout - nself
        if fanout_k:
            count = fast.count
            need = count + fanout_k
            if need > len(fast.times):
                fast.grow(need)
            fast.times[count:need] = times_k
            if seqs_k is None:
                rel = first - fast.seq_base
                fast.seqs[count:need] = np.arange(
                    rel, rel + fanout, dtype=np.uint32
                )
            else:
                fast.seqs[count:need] = (seqs_k - fast.seq_base).astype(
                    np.uint32
                )
            fast.srcs[count:need] = src
            fast.dsts[count:need] = dst_k
            pool = fast.pool
            fast.msgs[count:need] = len(pool)
            codes = self._cls_codes
            cls = message.__class__
            code = codes.get(cls)
            if code is None:
                code = codes[cls] = len(codes)
            fast.clss[count:need] = code
            pool.append(message)
            fast.count = need
            # argmin returns the first occurrence of the minimum, i.e.
            # the lowest seq among time ties -- exactly the earliest
            # (time, seq).
            kidx = int(np.argmin(times_k))
            t0 = times_k.item(kidx)
            s0 = first + kidx if seqs_k is None else int(seqs_k.item(kidx))
            armed = fast.armed
            if armed is None or t0 < armed[0] or (t0 == armed[0] and s0 < armed[1]):
                key = (t0, s0)
                fast.armed = key
                fast.live.add(key)
                queue = sim._queue
                _heappush(queue, (t0, s0, None, self._drain_fast, (t0, s0)))
                if len(queue) > sim.max_queue_depth:
                    sim.max_queue_depth = len(queue)
        for _ in range(nself):
            self._deliver_bound(src, src, message)

    def _resolve_fast_dispatch(self, dst: int, cls: type, code: int) -> tuple:
        """Resolve (and usually memoize) the relaxed drain's dispatch
        for one ``(dst, message class)`` pair.

        Returns ``(batch_handler, per_row_fn, counted)``:

        * ``batch_handler`` -- the ``handle_<Class>Batch`` method when
          ``dst`` registered a batch endpoint exposing one, else None.
        * ``per_row_fn`` -- the terminal handler from the node's live
          dispatch map when resolved, else its generic inbox, else None.
        * ``counted`` -- False only for unregistered destinations, whose
          rows count as dropped.

        The entry is cached under ``(code << 32) | dst`` (collision-free:
        dst is a u4 column value) and the cache is cleared by every
        ``register*``/``unregister`` call.  One transient case is served
        uncached: a node with a dispatch map that has not resolved this
        class yet.  Its inbox populates the live map on first dispatch,
        so memoizing here would pin the slow inbox path forever -- the
        next run re-resolves and picks up the terminal handler.
        """
        bh = None
        endpoint = self._batch_endpoints.get(dst)
        if endpoint is not None:
            bh = getattr(endpoint, "handle_" + cls.__name__ + "Batch", None)
        route = self._routes.get(dst)
        if route is not None:
            handler = route.get(cls, _UNRESOLVED)
            if handler is not _UNRESOLVED:
                ent = (bh, handler, True)
                self._fast_dispatch[(code << 32) | dst] = ent
                return ent
            fallback = self._handlers.get(dst)
            return (bh, fallback, fallback is not None)
        fallback = self._handlers.get(dst)
        ent = (bh, fallback, fallback is not None)
        self._fast_dispatch[(code << 32) | dst] = ent
        return ent

    def _drain_fast(self, time: float, seq: int) -> None:
        """Cursor callback for the relaxed plane: coalesce EVERY pending
        row that precedes the next timer barrier into destination-major
        batch deliveries.

        Each pass snapshots the barrier (next non-cancelled heap event,
        capped by the horizon), selects all rows with a smaller
        ``(time, seq)`` key, removes them from the column and delivers
        them grouped by destination -- within a destination in
        ``(time, seq)`` order, maximal same-class runs handed to the
        batch handler in one call (re-called on the remainder when it
        consumes partially; the relaxed plane drops the exact planes'
        stop-after-send rule, which is the coalescing win).  Handler
        sends land back in the column and are picked up by the next
        pass if they still precede the barrier.  No row is ever held
        past a barrier: passes repeat until nothing pending precedes
        it.  ``sim.now`` is set to each row's arrival time before its
        side effects, so it can step backwards across destination
        groups -- documented-equivalent, not bit-identical.

        When the delay provider exposes a positive ``delay_floor`` the
        pass window is additionally capped at ``earliest pending row +
        floor``.  Handler sends issued during a pass then always land
        at or past the window end, so each destination observes its
        rows in exact ``(time, seq)`` order and quorum crossings fire
        at the same instants as the exact planes; only cross-destination
        wall interleaving within a window (and same-instant tie order)
        stays relaxed.  With ``floor == 0.0`` (bare-callable providers)
        capping is disabled and only barrier-level equivalence holds.
        """
        fast = self._fast
        key = (time, seq)
        live = fast.live
        live.discard(key)
        if fast.armed != key:
            return  # Stale cursor: an earlier drain already passed this key.
        sim = self.sim
        queue = sim._queue
        horizon = sim.horizon
        dispatch_get = self._fast_dispatch.get
        resolve = self._resolve_fast_dispatch
        stats = self._stats
        floor = self._delay_floor
        while fast.count > fast.lo:
            # Barrier snapshot: clear cancelled timers at the head, then
            # cap the head key by the horizon (rows at exactly the
            # horizon pass the tie-break via the _INF barrier seq).
            while queue:
                head = queue[0]
                handle = head[2]
                if handle is None or not handle.cancelled:
                    break
                _heappop(queue)
            if queue:
                bt = queue[0][0]
                bs = queue[0][1]
                if bt > horizon:
                    bt = horizon
                    bs = _INF
            else:
                bt = horizon
                bs = _INF
            lo = fast.lo
            se = fast.sorted_end
            count = fast.count
            times = fast.times
            seqs = fast.seqs
            live_n = count - lo
            if count - se > (live_n >> 1) + 4096:
                # Fold the append tail into the sorted prefix once it
                # passes a fraction of the live region: amortized O(log)
                # sorts per row, so the per-pass work below never scans
                # the backlog -- only the tail and the delivered cut.
                morder = np.lexsort((seqs[lo:count], times[lo:count]))
                times[lo:count] = times[lo:count][morder]
                seqs[lo:count] = seqs[lo:count][morder]
                for col in (fast.srcs, fast.dsts, fast.msgs, fast.clss):
                    col[lo:count] = col[lo:count][morder]
                se = fast.sorted_end = count
            pn = se - lo
            tn = count - se
            ptimes = times[lo:se]
            ttimes = times[se:count]
            if floor > 0.0:
                # Window cap: never deliver past the earliest pending
                # row plus the provider's delay floor.  Any handler send
                # during this pass happens at >= the window start and
                # travels >= floor, so it lands at or past the window
                # end -- per-destination delivery therefore runs in
                # exact (time, seq) order (edge ties are safe: in-pass
                # arrivals at the window boundary carry strictly larger
                # seqs and go to a later pass).  The earliest pending
                # time is the prefix head (sorted) vs a scan of the
                # small tail.
                tmin = ptimes[0] if pn else _INF
                if tn:
                    tmin2 = ttimes.min()
                    if tmin2 < tmin:
                        tmin = tmin2
                window = float(tmin) + floor
                if window < bt:
                    bt = window
                    bs = _INF
            # Prefix cut: one searchsorted against the (time, seq)-sorted
            # prefix, extended across time == bt ties by relative seq
            # when the barrier seq is finite.
            if pn:
                if bs == _INF:
                    kcut = int(np.searchsorted(ptimes, bt, side="right"))
                else:
                    kcut = int(np.searchsorted(ptimes, bt, side="left"))
                    if kcut < pn and ptimes[kcut] == bt:
                        bs_rel = bs - fast.seq_base
                        pseqs = seqs[lo:se]
                        while (
                            kcut < pn
                            and ptimes[kcut] == bt
                            and int(pseqs[kcut]) < bs_rel
                        ):
                            kcut += 1
            else:
                kcut = 0
            # Tail cut: boolean mask over the unsorted tail only.
            nt = 0
            tsel = None
            if tn:
                tsel = ttimes < bt
                ties = ttimes == bt
                if ties.any():
                    tsel = tsel | (
                        ties & (seqs[se:count] < (bs - fast.seq_base))
                    )
                nt = int(np.count_nonzero(tsel))
            if not kcut and not nt:
                break
            # Row indices of this pass's batch (prefix cut + tail hits),
            # gathered per column; lexsort puts them into the total
            # (dst, time, seq) delivery order.
            if nt:
                tidx = np.flatnonzero(tsel) + se
                if kcut:
                    idx = np.concatenate(
                        (np.arange(lo, lo + kcut, dtype=np.int64), tidx)
                    )
                else:
                    idx = tidx
            else:
                idx = np.arange(lo, lo + kcut, dtype=np.int64)
            fast.lo = lo + kcut
            pool = fast.pool
            btimes = times[idx]
            bdsts = fast.dsts[idx]
            order = np.lexsort((seqs[idx], btimes, bdsts))
            sidx = idx[order]
            total = len(sidx)
            # Maximal same-destination same-class runs are found with one
            # vectorized boundary scan over the (dst, cls) columns; the
            # data columns are converted to Python lists once per pass so
            # the run loop below never pays per-row numpy scalar costs.
            dstcol = bdsts[order]
            clscol = fast.clss[sidx]
            if total > 1:
                change = (dstcol[1:] != dstcol[:-1]) | (
                    clscol[1:] != clscol[:-1]
                )
                edges = [0]
                edges.extend((np.flatnonzero(change) + 1).tolist())
                edges.append(total)
            else:
                edges = [0, total]
            bt_l = btimes[order].tolist()
            bd_l = dstcol.tolist()
            bs_l = fast.srcs[sidx].tolist()
            bm_l = fast.msgs[sidx].tolist()
            cc_l = clscol.tolist()
            if nt:
                # Swap-fill the selected tail holes from the tail's end
                # -- O(selected) instead of O(tail), legal because the
                # tail is unsorted so row order within it is free.  Only
                # after the batch columns above are gathered, since the
                # movers overwrite selected positions.  Handler sends
                # during the delivery below append after the new count.
                new_count = count - nt
                holes = tidx[tidx < new_count]
                if len(holes):
                    movers = (
                        np.flatnonzero(~tsel[new_count - se :]) + new_count
                    )
                    times[holes] = times[movers]
                    seqs[holes] = seqs[movers]
                    for col in (fast.srcs, fast.dsts, fast.msgs, fast.clss):
                        col[holes] = col[movers]
                fast.count = new_count
            # Run dispatch: one int-keyed cache lookup per (dst, cls)
            # run replaces the route/batch-route/getattr resolution
            # chain; stats accumulate in locals and flush once per pass.
            delivered = 0
            dropped = 0
            for ri in range(len(edges) - 1):
                r = edges[ri]
                e = edges[ri + 1]
                dst = bd_l[r]
                if not self._pristine:
                    # A fault landed while rows were in flight: per-row
                    # delivery-time checks, as on the exact planes.
                    for idx in range(r, e):
                        sim.now = bt_l[idx]
                        self._deliver_bound(bs_l[idx], dst, pool[bm_l[idx]])
                    continue
                width = e - r
                ent = dispatch_get((cc_l[r] << 32) | dst)
                if ent is None:
                    ent = resolve(dst, pool[bm_l[r]].__class__, cc_l[r])
                bh = ent[0]
                if bh is not None and width > 1:
                    srcs = bs_l[r:e]
                    messages = [pool[m] for m in bm_l[r:e]]
                    ts = bt_l[r:e]
                    start = 0
                    while start < width:
                        sim.now = ts[start]
                        if start:
                            consumed = bh(
                                srcs[start:], messages[start:], ts[start:]
                            )
                        else:
                            consumed = bh(srcs, messages, ts)
                        if consumed is None:
                            consumed = width - start
                        elif consumed < 1:
                            consumed = 1
                        elif consumed > width - start:
                            consumed = width - start
                        start += consumed
                    delivered += width
                    continue
                fn = ent[1]
                if fn is not None:
                    delivered += width
                    for idx in range(r, e):
                        sim.now = bt_l[idx]
                        fn(bs_l[idx], pool[bm_l[idx]])
                elif ent[2]:
                    delivered += width
                else:
                    dropped += width
            if delivered:
                stats.messages_delivered += delivered
            if dropped:
                stats.messages_dropped += dropped
        lo = fast.lo
        count = fast.count
        if count > lo:
            live_n = count - lo
            pool = fast.pool
            if len(pool) > 2 * live_n + 64:
                # Compact the message pool: delivered slots are dead but
                # keep their objects alive until remapped away.
                msgs = fast.msgs[lo:count]
                uniq, inverse = np.unique(msgs, return_inverse=True)
                fast.pool = [pool[m] for m in uniq.tolist()]
                msgs[:] = inverse.astype(np.uint32)
            if lo > live_n and lo > 4096:
                # Shift-to-front once the dead front dominates, bounding
                # buffer capacity at ~2x the live backlog.
                for col in (
                    fast.times, fast.seqs, fast.srcs, fast.dsts,
                    fast.msgs, fast.clss,
                ):
                    col[:live_n] = col[lo:count].copy()
                fast.lo = 0
                fast.sorted_end -= lo
                fast.count = live_n
                lo = 0
                count = live_n
            se = fast.sorted_end
            # Earliest pending (time, seq): the prefix head (sorted) vs
            # a min over the small tail.
            if lo < se:
                best_t = float(fast.times[lo])
                best_s = int(fast.seqs[lo])
            else:
                best_t = _INF
                best_s = -1
            if se < count:
                ttimes = fast.times[se:count]
                tmin = float(ttimes.min())
                if tmin <= best_t:
                    at_min = ttimes == tmin
                    smin = int(fast.seqs[se:count][at_min].min())
                    if tmin < best_t or smin < best_s:
                        best_t = tmin
                        best_s = smin
            nkey = (best_t, best_s + fast.seq_base)
            fast.armed = nkey
            if nkey not in live:
                live.add(nkey)
                _heappush(
                    queue, (nkey[0], nkey[1], None, self._drain_fast, nkey)
                )
                if len(queue) > sim.max_queue_depth:
                    sim.max_queue_depth = len(queue)
        else:
            fast.armed = None
            fast.pool.clear()
            fast.seq_base = sim._seq
            fast.lo = 0
            fast.sorted_end = 0
            fast.count = 0

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _make_deliver(self) -> Callable[[int, int, Any], None]:
        """Build the delivery callback with hot references as closure
        locals.  ``_routes``/``_handlers``/``stats`` are mutated in place
        and never rebound, so capturing them is safe; the mutable fault
        state (``_pristine``, down set, partition) is read through
        ``self`` so mid-run changes keep applying to in-flight messages.
        """
        routes_get = self._routes.get
        handlers_get = self._handlers.get
        stats = self.stats

        def _deliver(
            src: int, dst: int, message: Any, _self=self, _unresolved=_UNRESOLVED
        ) -> None:
            if not _self._pristine and (
                dst in _self._down
                or src in _self._down
                or _self._partitioned(src, dst)
            ):
                stats.messages_dropped += 1
                return
            route = routes_get(dst)
            if route is not None:
                handler = route.get(message.__class__, _unresolved)
                if handler is not _unresolved:
                    stats.messages_delivered += 1
                    if handler is not None:
                        handler(src, message)
                    return
            inbox = handlers_get(dst)
            if inbox is None:
                stats.messages_dropped += 1
                return
            stats.messages_delivered += 1
            inbox(src, message)

        return _deliver

    def _deliver(self, src: int, dst: int, message: Any) -> None:
        """Deliver one message now (the scheduled path uses the prebuilt
        closure; this method is the equivalent public-ish entry point)."""
        self._deliver_bound(src, dst, message)
