"""Simulated message network with per-link latencies.

Messages between registered nodes are delivered as simulator events after a
one-way delay drawn from a latency provider (usually a
:class:`repro.net.latency_model.LatencyModel` matrix).  Faults are injected
through *interceptors*: callables that may drop, delay or rewrite a message
before it is scheduled for delivery.  This is how the Byzantine behaviours
in :mod:`repro.faults` manipulate traffic without touching protocol code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional

from repro.sim.engine import Simulator

# An interceptor receives (src, dst, message, delay) and returns either
# None (drop the message) or a (message, delay) pair to use instead.
Interceptor = Callable[[int, int, Any, float], Optional[tuple]]


@dataclass
class NetworkStats:
    """Counters kept by the network for overhead accounting (Fig. 13).

    ``messages_sent``/``bytes_sent``/``per_type_bytes`` count only traffic
    actually put on the wire: a message dropped at send time (down node,
    partition, interceptor drop) increments ``messages_dropped`` alone, so
    fault scenarios do not inflate the overhead accounting.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    per_type_bytes: Dict[str, int] = field(default_factory=dict)

    def record_send(self, message: Any, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        kind = type(message).__name__
        self.per_type_bytes[kind] = self.per_type_bytes.get(kind, 0) + size


class Network:
    """Point-to-point network delivering messages over simulated links.

    Parameters
    ----------
    sim:
        The owning simulator.
    one_way_delay:
        Callable ``(src, dst) -> seconds`` giving the one-way link delay.
    jitter:
        Fractional uniform jitter applied to every delivery; a value of
        0.05 means each delay is multiplied by ``uniform(1.0, 1.05)``.
        Jitter draws come from a dedicated generator so enabling or
        disabling it does not perturb other random streams.
    """

    def __init__(
        self,
        sim: Simulator,
        one_way_delay: Callable[[int, int], float],
        jitter: float = 0.0,
    ):
        self.sim = sim
        self.one_way_delay = one_way_delay
        self.jitter = jitter
        self.stats = NetworkStats()
        self._handlers: Dict[int, Callable[[int, Any], None]] = {}
        self._interceptors: list[Interceptor] = []
        self._down: set[int] = set()
        #: node id -> partition group; nodes in different groups cannot
        #: exchange messages.  Nodes absent from the map (e.g. clients)
        #: keep full connectivity.
        self._partition_group: Dict[int, int] = {}
        #: Incremented by every partition(); lets a scheduled heal detect
        #: that a newer partition superseded the one it belongs to.
        self._partition_epoch = 0
        self._jitter_rng = sim.derive_rng("network-jitter")

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def register(self, node_id: int, handler: Callable[[int, Any], None]) -> None:
        """Register ``handler(src, message)`` as the inbox of ``node_id``."""
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)

    def set_down(self, node_id: int, down: bool = True) -> None:
        """Crash (or revive) a node: messages to and from it are dropped."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def is_down(self, node_id: int) -> bool:
        return node_id in self._down

    def partition(self, groups: Iterable[Iterable[int]]) -> int:
        """Split the network into isolated ``groups`` of nodes.

        Links inside a group keep working; messages between nodes of
        different groups are dropped -- at send time for new traffic and
        at delivery time for messages already in flight, mirroring the
        node-down semantics.  Unlike :meth:`set_down` the nodes stay
        alive: they keep processing timers and intra-group traffic, which
        is what distinguishes a partition from a crash.

        Nodes not named in any group (clients, late joiners) retain full
        connectivity.  Calling :meth:`partition` again replaces the
        previous partition; :meth:`heal` removes it.

        Returns an epoch token: pass it to :meth:`heal` so a heal
        scheduled for *this* partition becomes a no-op if a newer
        partition has replaced it in the meantime.
        """
        mapping: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                if node in mapping:
                    raise ValueError(f"node {node} appears in two partition groups")
                mapping[node] = index
        self._partition_group = mapping
        self._partition_epoch += 1
        return self._partition_epoch

    def heal(self, epoch: Optional[int] = None) -> None:
        """Remove the current partition; all links work again.

        With ``epoch`` (from :meth:`partition`), only heal if that
        partition is still the active one -- a later partition survives
        an earlier partition's scheduled heal.
        """
        if epoch is not None and epoch != self._partition_epoch:
            return
        self._partition_group = {}

    def reachable(self, src: int, dst: int) -> bool:
        """Can a message currently flow ``src`` -> ``dst``?"""
        if src in self._down or dst in self._down:
            return False
        return not self._partitioned(src, dst)

    def _partitioned(self, a: int, b: int) -> bool:
        group_a = self._partition_group.get(a)
        group_b = self._partition_group.get(b)
        return group_a is not None and group_b is not None and group_a != group_b

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Install a fault-injection hook; interceptors run in order."""
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: Any, size: int = 0) -> None:
        """Send ``message`` from ``src`` to ``dst`` after the link delay.

        ``size`` is the serialized size in bytes, used only for statistics.
        Self-delivery is supported with zero latency (plus jitter) because
        protocol code treats the local replica uniformly.

        Only messages that actually reach the wire are counted as sent;
        send-time drops (down endpoint, partition, interceptor) count as
        dropped instead.
        """
        if src in self._down or dst in self._down or self._partitioned(src, dst):
            self.stats.messages_dropped += 1
            return
        delay = 0.0 if src == dst else self.one_way_delay(src, dst)
        if self.jitter > 0.0:
            delay *= self._jitter_rng.uniform(1.0, 1.0 + self.jitter)
        for interceptor in self._interceptors:
            result = interceptor(src, dst, message, delay)
            if result is None:
                self.stats.messages_dropped += 1
                return
            message, delay = result
        self.stats.record_send(message, size)
        self.sim.schedule(delay, self._deliver, src, dst, message)

    def multicast(self, src: int, dsts: Iterable[int], message: Any, size: int = 0) -> None:
        """Send the same message to every destination (excluding none)."""
        for dst in dsts:
            self.send(src, dst, message, size)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver(self, src: int, dst: int, message: Any) -> None:
        if dst in self._down or src in self._down or self._partitioned(src, dst):
            self.stats.messages_dropped += 1
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        handler(src, message)
