"""Simulated message network with per-link latencies.

Messages between registered nodes are delivered as simulator events after a
one-way delay drawn from a latency provider (usually a
:class:`repro.net.latency_model.LatencyModel` matrix).  Faults are injected
through *interceptors*: callables that may drop, delay or rewrite a message
before it is scheduled for delivery.  This is how the Byzantine behaviours
in :mod:`repro.faults` manipulate traffic without touching protocol code.

Fast path: a network with no interceptors, no down nodes and no active
partition is *pristine*; sends and deliveries then skip every fault check.
The ``_pristine`` flag is recomputed on each topology/interceptor
mutation, so installing a fault mid-run transparently re-enables the
checks -- including for messages already in flight, whose delivery
re-validates against the fabric state at delivery time, as before.  The
fast path performs exactly the same jitter draws in the same order as
the checked path, so seeded runs are bit-identical either way.

Message planes
--------------
The network supports two delivery planes (``plane=`` constructor arg):

``object``
    The historical path: one heap entry per message, one delivery
    callback per message.

``columnar``
    The batched path: every pristine delivery -- unicast rows and the
    fanned-out rows of a multicast alike -- lands in ONE globally
    sorted *spine* of ``(arrival_time, seq, src, dst, message)``
    records with a single armed heap *cursor* at its head.  The event
    heap then carries only timers and the cursor, so when the cursor
    fires, a drain loop delivers long runs of consecutive rows while
    their ``(time, seq)`` keys precede every other pending event (and
    the run horizon), handing maximal same-destination same-class runs
    to per-node batch handlers (``handle_<Class>Batch``).  Every row
    keeps exactly the ``(time, seq)`` key the object plane would have
    assigned -- the same jitter draws in the same order, the same
    consecutive seq numbers -- so delivering rows in spine order *is*
    the object plane's heap pop order and seeded runs are bit-identical
    across planes.  The moment a fault makes the network non-pristine,
    new sends take the object path and in-flight rows drain one message
    at a time through the same delivery-time checks as the object
    plane.
"""

from __future__ import annotations

from bisect import insort as _insort
from heapq import (
    heappop as _heappop,
    heappush as _heappush,
    heapreplace as _heapreplace,
)
from typing import Any, Callable, Dict, Iterable, Optional

import numpy as np

from repro.sim.engine import Simulator

#: Valid values for the ``plane`` knob as seen by scenario plumbing.  The
#: network itself only builds "object" or "columnar"; "check" is resolved
#: by the experiment runner into one run of each plane plus a state-trace
#: comparison (mirroring ``check_score``/``check_rebuild``).
MESSAGE_PLANES = ("object", "columnar", "check")

# An interceptor receives (src, dst, message, delay) and returns either
# None (drop the message) or a (message, delay) pair to use instead.
Interceptor = Callable[[int, int, Any, float], Optional[tuple]]

#: Sentinel distinguishing "class not yet resolved" from "resolved to no
#: handler" in a registered dispatch cache (see Network.register_dispatch).
_UNRESOLVED = object()

#: Barrier seq used when the horizon (not a heap event) bounds a drain:
#: rows at exactly the horizon time always pass the tie-break.
_INF = float("inf")


class _SpineBlock:
    """One wide multicast's fanned-out rows in columnar array form.

    The per-row tuples of the scalar spine cost ~170 bytes each; at
    n=4096 a single PBFT broadcast fans out 4095 rows, and the in-flight
    population reaches tens of millions of rows -- multiple GB as
    tuples.  A block keeps the whole fanout as three parallel arrays
    (~24 bytes/row): arrival times (float64), seq numbers (int64) and
    destinations (int64), sorted by ``(time, seq)``; ``src`` and the
    shared ``message`` are stored once.  ``pos`` is the drain cursor
    into the sorted arrays.

    Every value is byte-identical to the tuples it replaces: times are
    ``now + delay`` float64 adds (numpy elementwise == scalar IEEE),
    seqs are the same consecutive allocations, and the stable argsort
    over times reproduces ``(time, seq)`` order because seqs ascend in
    input order.
    """

    __slots__ = ("times", "seqs", "dsts", "src", "message", "pos")

    def __init__(self, times, seqs, dsts, src, message):
        self.times = times
        self.seqs = seqs
        self.dsts = dsts
        self.src = src
        self.message = message
        self.pos = 0


class _Spine:
    """The single global column of pending pristine deliveries.

    ``entries`` is a list of ``(arrival_time, seq, src, dst, message)``
    rows kept sorted by ``(time, seq)`` (seqs are unique, so sort
    comparisons never reach ``src``).  Keeping *all* destinations merged
    in one column -- rather than one column per destination -- is what
    makes the drain loop long: the event heap holds only timers plus one
    cursor for the spine head, so interleaved traffic to different
    destinations no longer breaks a drain into per-row cursor hops.

    ``blocks`` is a heap of ``(head_time, head_seq, _SpineBlock)``
    keyed by each block's first undelivered row; wide multicasts park
    their fanout here instead of merging thousands of tuples into
    ``entries`` (the per-multicast whole-spine re-sort was the n=4096
    wall-clock ceiling).  ``(time, seq)`` keys are globally unique, so
    heap comparisons never reach the block object.

    ``armed`` is the key of the row the live heap cursor is responsible
    for (``None`` when empty); ``live`` holds the keys of every cursor
    currently in the heap, so a drain that re-arms at a key whose cursor
    is still queued does not push a duplicate (two heap tuples with
    equal ``(time, seq)`` would make the heap compare callbacks).  A
    cursor that fires when ``armed`` moved on is stale and returns
    immediately.
    """

    __slots__ = ("entries", "armed", "live", "blocks")

    def __init__(self):
        self.entries: list = []
        self.armed: Optional[tuple] = None
        self.live: set = set()
        self.blocks: list = []

    def __getstate__(self):
        return (self.entries, self.armed, self.live, self.blocks)

    def __setstate__(self, state):
        if len(state) == 3:
            # Pre-block checkpoint: no block heap yet.
            self.entries, self.armed, self.live = state
            self.blocks = []
        else:
            self.entries, self.armed, self.live, self.blocks = state


class NetworkStats:
    """Counters kept by the network for overhead accounting (Fig. 13).

    ``messages_sent``/``bytes_sent``/``per_type_bytes`` count only traffic
    actually put on the wire: a message dropped at send time (down node,
    partition, interceptor drop) increments ``messages_dropped`` alone, so
    fault scenarios do not inflate the overhead accounting.
    ``messages_multicast`` counts batched :meth:`Network.multicast` calls
    (each of which still counts one ``messages_sent`` per destination).

    Representation: the send path bumps ONE class-keyed ``[count, bytes]``
    accumulator per message; the public totals (``messages_sent``,
    ``bytes_sent``) and the name-keyed ``per_type_bytes`` dict are
    materialized lazily on read.  This replaces the old per-send
    ``type(message).__name__`` string derivation (the satellite fix: the
    name is now derived once per *type* at read time, never on the send
    path) and keeps the per-message cost at a single dict operation.
    """

    __slots__ = (
        "messages_delivered",
        "messages_dropped",
        "messages_multicast",
        "_per_class",
    )

    def __init__(self) -> None:
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_multicast = 0
        #: message class -> [messages, bytes], in first-send order.
        self._per_class: Dict[type, list] = {}

    @property
    def messages_sent(self) -> int:
        return sum(entry[0] for entry in self._per_class.values())

    @property
    def bytes_sent(self) -> int:
        return sum(entry[1] for entry in self._per_class.values())

    @property
    def per_type_bytes(self) -> Dict[str, int]:
        """Bytes per message-type name, in first-send order.

        Materialized on access; distinct classes sharing a ``__name__``
        are summed, matching the historical name-keyed accounting.
        """
        out: Dict[str, int] = {}
        for cls, entry in self._per_class.items():
            name = cls.__name__
            out[name] = out.get(name, 0) + entry[1]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkStats(sent={self.messages_sent}, "
            f"delivered={self.messages_delivered}, "
            f"dropped={self.messages_dropped}, "
            f"multicast={self.messages_multicast}, bytes={self.bytes_sent})"
        )

    def record_send(self, message: Any, size: int) -> None:
        per_class = self._per_class
        cls = message.__class__
        entry = per_class.get(cls)
        if entry is None:
            per_class[cls] = [1, size]
        else:
            entry[0] += 1
            entry[1] += size

    def record_multicast(self, message: Any, size: int, fanout: int) -> None:
        """Batched equivalent of ``fanout`` :meth:`record_send` calls."""
        per_class = self._per_class
        cls = message.__class__
        entry = per_class.get(cls)
        if entry is None:
            per_class[cls] = [fanout, size * fanout]
        else:
            entry[0] += fanout
            entry[1] += size * fanout


class Network:
    """Point-to-point network delivering messages over simulated links.

    Parameters
    ----------
    sim:
        The owning simulator.
    one_way_delay:
        Callable ``(src, dst) -> seconds`` giving the one-way link delay.
    jitter:
        Fractional uniform jitter applied to every delivery; a value of
        0.05 means each delay is multiplied by ``uniform(1.0, 1.05)``.
        Jitter draws come from a dedicated generator so enabling or
        disabling it does not perturb other random streams.
    plane:
        ``"object"`` (default) or ``"columnar"`` -- see the module
        docstring.  Both planes are bit-identical for seeded runs; the
        columnar plane batches pristine steady-state traffic.
    """

    #: Pristine columnar multicasts with at least this fanout go into a
    #: :class:`_SpineBlock` instead of merging tuple rows into the spine.
    #: Class-level so tests can lower it (per instance or globally) to
    #: exercise the block path at small n.
    block_fanout: int = 256

    def __init__(
        self,
        sim: Simulator,
        one_way_delay: Callable[[int, int], float],
        jitter: float = 0.0,
        plane: str = "object",
    ):
        if plane not in ("object", "columnar"):
            raise ValueError(
                f"unknown message plane {plane!r}; the network builds "
                "'object' or 'columnar' ('check' is resolved by the runner)"
            )
        self.sim = sim
        self.plane = plane
        self._columnar = plane == "columnar"
        self._delay_rows: Optional[list] = None
        self._delay_row_fn: Optional[Callable[[int], Optional[list]]] = None
        self.one_way_delay = one_way_delay
        self.jitter = jitter
        self._stats = NetworkStats()
        #: Global sorted column of pending columnar deliveries.
        self._spine = _Spine()
        #: node id -> object probed for ``handle_<Class>Batch`` methods.
        self._batch_endpoints: Dict[int, Any] = {}
        #: node id -> class -> batch handler (or None), lazily resolved.
        self._batch_routes: Dict[int, Dict[type, Optional[Callable]]] = {}
        self._handlers: Dict[int, Callable[[int, Any], None]] = {}
        #: node id -> its class->bound-handler cache (see
        #: :meth:`register_dispatch`); lets delivery call the terminal
        #: handler directly, skipping the generic inbox dispatch frame.
        self._routes: Dict[int, Dict[type, Optional[Callable]]] = {}
        self._interceptors: list[Interceptor] = []
        self._down: set[int] = set()
        #: node id -> partition group; nodes in different groups cannot
        #: exchange messages.  Nodes absent from the map (e.g. clients)
        #: keep full connectivity.
        self._partition_group: Dict[int, int] = {}
        #: Incremented by every partition(); lets a scheduled heal detect
        #: that a newer partition superseded the one it belongs to.
        self._partition_epoch = 0
        #: True while no interceptor, down node or partition exists; the
        #: send/deliver fast path keys off this single flag.
        self._pristine = True
        self._jitter_rng = sim.derive_rng("network-jitter")
        self._jitter_random = self._jitter_rng.random
        # Pre-bound hot-path callables and references: attribute and
        # descriptor lookups cost real time at one send + one delivery per
        # simulated message.  The delivery callback is closure-compiled so
        # the stable references (routes, handlers, stats) are locals.
        self._post = sim.post
        self._deliver_bound = self._make_deliver()
        self._stats_per_class = self.stats._per_class

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Drop the derived hot-path fields; they are deterministic
        functions of the rest and the delivery closure cannot pickle.
        (Queued heap entries referencing ``_deliver_bound`` are handled
        by the checkpoint module's persistent-id hooks.)

        Everything else round-trips as-is -- audited per field:

        * ``_pristine`` pickles verbatim and stays consistent because the
          inputs it is derived from (``_interceptors``, ``_down``,
          ``_partition_group``) pickle in the same snapshot; a resume
          therefore re-checks in-flight deliveries exactly as the
          uninterrupted run would.
        * ``_stats_per_class`` is re-pointed at the restored ``_stats``
          accumulator in ``__setstate__`` -- it must never be pickled, or
          the copy would split the send accounting from ``stats``.
        * ``_delay_rows`` / ``_delay_row_fn`` are re-derived from the
          restored provider so a provider without a ``rows`` matrix (or
          ``row()`` view) never resurrects a stale one.
        * The columnar state (``_spine``, ``_batch_endpoints``,
          ``_batch_routes``) pickles verbatim: spine rows hold only
          plain values and messages, and the cached batch handlers are
          bound methods of replicas already in the checkpoint graph, so
          they rebind to the restored replicas on load.  The drain
          callback queued in the heap is a plain bound method
          (``_drain_spine``) and needs no persistent-id treatment.
        """
        state = self.__dict__.copy()
        for key in (
            "_deliver_bound",
            "_post",
            "_stats_per_class",
            "_delay_rows",
            "_delay_row_fn",
            "_jitter_random",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._post = self.sim.post
        self._jitter_random = self._jitter_rng.random
        self._delay_rows = getattr(self._one_way_delay, "rows", None)
        self._delay_row_fn = getattr(self._one_way_delay, "row", None)
        self._deliver_bound = self._make_deliver()
        self._stats_per_class = self._stats._per_class

    # ------------------------------------------------------------------
    # Stats, delay provider and jitter
    # ------------------------------------------------------------------
    @property
    def stats(self) -> NetworkStats:
        """The network's counters.  Read-only by design: the hot paths
        hold direct references into this object (``_stats_per_class``,
        the delivery closure), so swapping it out would silently split
        the accounting -- attempting to assign raises instead."""
        return self._stats

    @property
    def one_way_delay(self) -> Callable[[int, int], float]:
        return self._one_way_delay

    @one_way_delay.setter
    def one_way_delay(self, value: Callable[[int, int], float]) -> None:
        self._one_way_delay = value
        # Providers that expose their full matrix (Deployment.one_way)
        # let the send paths index a plain list instead of calling out.
        self._delay_rows = getattr(value, "rows", None)
        # Providers without an eager matrix may still serve one row at a
        # time (``row(src) -> list | None``): the hierarchical substrate
        # and the lazy dense provider synthesize rows on demand, and the
        # client-site router forwards replica rows while answering None
        # for client sources (which need its scalar mapping).
        self._delay_row_fn = getattr(value, "row", None)

    @property
    def jitter(self) -> float:
        return self._jitter

    @jitter.setter
    def jitter(self, value: float) -> None:
        self._jitter = value
        # Matches random.Random.uniform(1.0, 1.0 + jitter) bit-for-bit:
        # uniform(a, b) computes a + (b - a) * random(), so the span must
        # be the rounded difference, not the raw jitter value.
        self._jitter_span = (1.0 + value) - 1.0

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def _refresh_fast_path(self) -> None:
        self._pristine = not (
            self._interceptors or self._down or self._partition_group
        )

    def register(self, node_id: int, handler: Callable[[int, Any], None]) -> None:
        """Register ``handler(src, message)`` as the inbox of ``node_id``."""
        self._handlers[node_id] = handler

    def register_dispatch(
        self, node_id: int, dispatch: Dict[type, Optional[Callable]]
    ) -> None:
        """Opt-in delivery fast path for ``node_id``.

        ``dispatch`` is a *live* message-class -> bound-handler mapping
        (``None`` meaning "no handler for this class") that the node's
        inbox keeps populated as it resolves classes.  Delivery consults
        it first and calls the terminal handler directly; unknown classes
        fall back to the registered inbox, which resolves and caches them.
        Counting semantics are identical either way: a delivery to a
        registered node counts as delivered even when the class resolves
        to no handler, exactly as the generic inbox behaves.
        """
        self._routes[node_id] = dispatch

    def register_batch_endpoint(self, node_id: int, endpoint: Any) -> None:
        """Columnar-plane opt-in: deliver same-class runs in bulk.

        ``endpoint`` (usually the replica object) is probed lazily for
        ``handle_<ClassName>Batch(srcs, messages, times)`` methods; when
        one exists, the spine drain hands it a maximal run of *two or
        more* consecutive same-class rows bound for this node instead of
        delivering them one at a time.  Single-row runs keep the
        ordinary per-row delivery: a batched class must therefore retain
        an equivalent per-row handler (the object plane needs one
        anyway, and cross-plane bit-identity already demands the two be
        indistinguishable).

        Batch-handler contract (load-bearing for bit-identity):

        * Rows must be processed in order, with ``sim.now`` set to
          ``times[k]`` before row ``k``'s side effects (the drain sets it
          to ``times[0]`` before the call).
        * The handler must return the number of rows consumed, and it
          must stop -- returning ``k + 1`` -- as soon as processing row
          ``k`` sends a message or schedules an event, because those side
          effects may now precede row ``k + 1`` in global event order.
          Rows that only mutate local state may be consumed freely.
        * Returning ``None`` means "all rows consumed" (valid only for
          handlers whose rows never send or schedule).
        """
        self._batch_endpoints[node_id] = endpoint
        self._batch_routes[node_id] = {}

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)
        self._routes.pop(node_id, None)
        self._batch_endpoints.pop(node_id, None)
        self._batch_routes.pop(node_id, None)

    def set_down(self, node_id: int, down: bool = True) -> None:
        """Crash (or revive) a node: messages to and from it are dropped."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)
        self._refresh_fast_path()

    def is_down(self, node_id: int) -> bool:
        return node_id in self._down

    def partition(self, groups: Iterable[Iterable[int]]) -> int:
        """Split the network into isolated ``groups`` of nodes.

        Links inside a group keep working; messages between nodes of
        different groups are dropped -- at send time for new traffic and
        at delivery time for messages already in flight, mirroring the
        node-down semantics.  Unlike :meth:`set_down` the nodes stay
        alive: they keep processing timers and intra-group traffic, which
        is what distinguishes a partition from a crash.

        Nodes not named in any group (clients, late joiners) retain full
        connectivity.  Calling :meth:`partition` again replaces the
        previous partition; :meth:`heal` removes it.

        Returns an epoch token: pass it to :meth:`heal` so a heal
        scheduled for *this* partition becomes a no-op if a newer
        partition has replaced it in the meantime.
        """
        mapping: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                if node in mapping:
                    raise ValueError(f"node {node} appears in two partition groups")
                mapping[node] = index
        self._partition_group = mapping
        self._partition_epoch += 1
        self._refresh_fast_path()
        return self._partition_epoch

    def heal(self, epoch: Optional[int] = None) -> None:
        """Remove the current partition; all links work again.

        With ``epoch`` (from :meth:`partition`), only heal if that
        partition is still the active one -- a later partition survives
        an earlier partition's scheduled heal.
        """
        if epoch is not None and epoch != self._partition_epoch:
            return
        self._partition_group = {}
        self._refresh_fast_path()

    def reachable(self, src: int, dst: int) -> bool:
        """Can a message currently flow ``src`` -> ``dst``?"""
        if src in self._down or dst in self._down:
            return False
        return not self._partitioned(src, dst)

    def _partitioned(self, a: int, b: int) -> bool:
        group_a = self._partition_group.get(a)
        group_b = self._partition_group.get(b)
        return group_a is not None and group_b is not None and group_a != group_b

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Install a fault-injection hook; interceptors run in order."""
        self._interceptors.append(interceptor)
        self._refresh_fast_path()

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)
        self._refresh_fast_path()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: Any, size: int = 0) -> None:
        """Send ``message`` from ``src`` to ``dst`` after the link delay.

        ``size`` is the serialized size in bytes, used only for statistics.
        Self-delivery is supported with zero latency (plus jitter) because
        protocol code treats the local replica uniformly.

        Only messages that actually reach the wire are counted as sent;
        send-time drops (down endpoint, partition, interceptor) count as
        dropped instead.
        """
        if self._pristine:
            if self._columnar:
                # Columnar pristine unicast: insert one row into the
                # global spine instead of pushing a heap entry.  Delay,
                # jitter draw, stats bump and seq allocation are
                # identical (same values, same order) to the object
                # branch below, so the row carries exactly the
                # ``(time, seq)`` key the object plane would have used.
                # Inlined rather than a helper: one call frame per
                # message is measurable on the steady-state path.
                if src == dst:
                    delay = 0.0
                else:
                    rows = self._delay_rows
                    delay = (
                        rows[src][dst] if rows is not None
                        else self._one_way_delay(src, dst)
                    )
                if self._jitter > 0.0:
                    delay *= 1.0 + self._jitter_span * self._jitter_random()
                per_class = self._stats_per_class
                cls = message.__class__
                entry = per_class.get(cls)
                if entry is None:
                    per_class[cls] = [1, size]
                else:
                    entry[0] += 1
                    entry[1] += size
                sim = self.sim
                seq = sim._seq
                sim._seq = seq + 1
                time = sim.now + delay
                spine = self._spine
                _insort(spine.entries, (time, seq, src, dst, message))
                armed = spine.armed
                if armed is None or time < armed[0] or (
                    time == armed[0] and seq < armed[1]
                ):
                    key = (time, seq)
                    spine.armed = key
                    spine.live.add(key)
                    queue = sim._queue
                    _heappush(
                        queue, (time, seq, None, self._drain_spine, (time, seq))
                    )
                    if len(queue) > sim.max_queue_depth:
                        sim.max_queue_depth = len(queue)
                return
            if src == dst:
                delay = 0.0
            else:
                rows = self._delay_rows
                delay = (
                    rows[src][dst] if rows is not None
                    else self._one_way_delay(src, dst)
                )
            if self._jitter > 0.0:
                delay *= 1.0 + self._jitter_span * self._jitter_random()
            # record_send(), inlined: one send per protocol message makes
            # even the method call measurable.
            per_class = self._stats_per_class
            cls = message.__class__
            entry = per_class.get(cls)
            if entry is None:
                per_class[cls] = [1, size]
            else:
                entry[0] += 1
                entry[1] += size
            # Simulator.post(), inlined (same entry shape and ordering):
            # one frame per simulated message is measurable too.
            sim = self.sim
            seq = sim._seq
            sim._seq = seq + 1
            queue = sim._queue
            _heappush(
                queue,
                (sim.now + delay, seq, None, self._deliver_bound, (src, dst, message)),
            )
            if len(queue) > sim.max_queue_depth:
                sim.max_queue_depth = len(queue)
            return
        if src in self._down or dst in self._down or self._partitioned(src, dst):
            self.stats.messages_dropped += 1
            return
        delay = 0.0 if src == dst else self.one_way_delay(src, dst)
        if self._jitter > 0.0:
            delay *= 1.0 + self._jitter_span * self._jitter_random()
        for interceptor in self._interceptors:
            result = interceptor(src, dst, message, delay)
            if result is None:
                self.stats.messages_dropped += 1
                return
            message, delay = result
        self.stats.record_send(message, size)
        self._post(delay, self._deliver_bound, (src, dst, message))

    def multicast(self, src: int, dsts: Iterable[int], message: Any, size: int = 0) -> None:
        """Send the same message to every destination, as one batch.

        On a pristine network the per-destination fault checks and stats
        bookkeeping are hoisted out of the loop; per-destination delays and
        jitter draws are identical (same values, same RNG order) to a loop
        of :meth:`send` calls, so the batch is purely a constant-factor
        optimisation.  On a faulted network it degrades to exactly that
        loop.
        """
        self.stats.messages_multicast += 1
        if not self._pristine:
            for dst in dsts:
                self.send(src, dst, message, size)
            return
        if self._columnar:
            self._multicast_columnar(src, dsts, message, size)
            return
        one_way = self._one_way_delay
        jittered = self._jitter > 0.0
        span = self._jitter_span
        rand = self._jitter_random
        deliver = self._deliver_bound
        # When the delay provider exposes its matrix (Deployment.one_way
        # does), index the row directly instead of calling per destination.
        # Row-serving providers (hierarchical substrate, lazy dense,
        # client-site router) answer one row at a time -- or None, which
        # falls back to the scalar loop.
        rows = self._delay_rows
        row = rows[src] if rows is not None else None
        if row is None:
            row_fn = self._delay_row_fn
            if row_fn is not None:
                row = row_fn(src)
        # Simulator.post(), inlined and hoisted: ``now`` is constant for
        # the whole batch and the entries keep consecutive seq numbers
        # (nothing else can push while this loop runs), so ordering is
        # identical to a loop of send() calls.
        sim = self.sim
        now = sim.now
        queue = sim._queue
        seq = sim._seq
        fanout = 0
        if row is not None:
            for dst in dsts:
                delay = 0.0 if src == dst else row[dst]
                if jittered:
                    delay *= 1.0 + span * rand()
                _heappush(queue, (now + delay, seq, None, deliver, (src, dst, message)))
                seq += 1
                fanout += 1
        else:
            for dst in dsts:
                delay = 0.0 if src == dst else one_way(src, dst)
                if jittered:
                    delay *= 1.0 + span * rand()
                _heappush(queue, (now + delay, seq, None, deliver, (src, dst, message)))
                seq += 1
                fanout += 1
        sim._seq = seq
        if len(queue) > sim.max_queue_depth:
            sim.max_queue_depth = len(queue)
        if fanout:
            self.stats.record_multicast(message, size, fanout)

    # ------------------------------------------------------------------
    # Columnar plane: batched sends and drain loops
    # ------------------------------------------------------------------
    def _multicast_columnar(
        self, src: int, dsts: Iterable[int], message: Any, size: int
    ) -> None:
        """Pristine multicast on the columnar plane: merge the fanned-out
        rows into the spine instead of pushing ``fanout`` heap entries.

        The per-destination loop draws jitter in destination order and
        reserves the same consecutive seq numbers the object plane's
        multicast would have assigned, so each row keeps the object
        plane's exact ``(time, seq)`` key; merging by that key reproduces
        the heap's pop order (seqs are unique, so the order is total).

        Merging mid-drain is safe: every new key exceeds the key of the
        row currently being delivered (times are ``>= now``, seqs are
        fresh), and the spine's already-delivered prefix holds strictly
        smaller keys, so a whole-list sort leaves that prefix -- and the
        drain's index into it -- untouched.
        """
        one_way = self._one_way_delay
        jittered = self._jitter > 0.0
        span = self._jitter_span
        rand = self._jitter_random
        drows = self._delay_rows
        row = drows[src] if drows is not None else None
        if row is None:
            row_fn = self._delay_row_fn
            if row_fn is not None:
                row = row_fn(src)
        sim = self.sim
        now = sim.now
        first = sim._seq
        try:
            sized_fanout = len(dsts)  # type: ignore[arg-type]
        except TypeError:
            sized_fanout = -1  # generator: always the tuple-row path
        if sized_fanout >= self.block_fanout:
            self._multicast_block(
                src, dsts, message, size, row, now, first, jittered, span, rand
            )
            return
        seq = first
        new_rows = []
        append = new_rows.append
        if row is not None:
            for dst in dsts:
                delay = 0.0 if src == dst else row[dst]
                if jittered:
                    delay *= 1.0 + span * rand()
                append((now + delay, seq, src, dst, message))
                seq += 1
        else:
            for dst in dsts:
                delay = 0.0 if src == dst else one_way(src, dst)
                if jittered:
                    delay *= 1.0 + span * rand()
                append((now + delay, seq, src, dst, message))
                seq += 1
        sim._seq = seq
        fanout = seq - first
        if not fanout:
            return
        self.stats.record_multicast(message, size, fanout)
        new_rows.sort()
        spine = self._spine
        entries = spine.entries
        if not entries:
            entries.extend(new_rows)
        elif fanout < 8:
            # Small fanout (Kauri tree hops): per-row insertion beats
            # re-merging the whole spine.
            for r in new_rows:
                _insort(entries, r)
        else:
            # Two sorted runs; timsort merges them in one galloping pass.
            entries.extend(new_rows)
            entries.sort()
        t0 = new_rows[0][0]
        s0 = new_rows[0][1]
        armed = spine.armed
        if armed is None or t0 < armed[0] or (t0 == armed[0] and s0 < armed[1]):
            key = (t0, s0)
            spine.armed = key
            spine.live.add(key)
            queue = sim._queue
            _heappush(queue, (t0, s0, None, self._drain_spine, (t0, s0)))
            if len(queue) > sim.max_queue_depth:
                sim.max_queue_depth = len(queue)

    def _multicast_block(
        self, src, dsts, message, size, row, now, first, jittered, span, rand
    ) -> None:
        """Wide pristine multicast: park the fanout as one
        :class:`_SpineBlock` instead of merging tuple rows.

        Replaces the per-multicast whole-spine re-sort -- O(spine) per
        wide multicast, the n>=1024 wall-clock ceiling -- with an O(f
        log f) sort of this fanout alone, and the ~170-byte tuples with
        ~24-byte array rows.  Delays and jitter draws happen in
        destination order with the same ops as the tuple path, and seqs
        are the same consecutive allocations, so every ``(time, seq,
        src, dst)`` the drain reads back is byte-identical to the rows
        it replaces.
        """
        one_way = self._one_way_delay
        delays = []
        append = delays.append
        if row is not None:
            if jittered:
                for dst in dsts:
                    delay = 0.0 if src == dst else row[dst]
                    append(delay * (1.0 + span * rand()))
            else:
                for dst in dsts:
                    append(0.0 if src == dst else row[dst])
        elif jittered:
            for dst in dsts:
                delay = 0.0 if src == dst else one_way(src, dst)
                append(delay * (1.0 + span * rand()))
        else:
            for dst in dsts:
                append(0.0 if src == dst else one_way(src, dst))
        fanout = len(delays)
        if not fanout:
            return
        sim = self.sim
        sim._seq = first + fanout
        self.stats.record_multicast(message, size, fanout)
        # float64 elementwise add == the scalar ``now + delay`` bitwise;
        # seqs ascend in destination order, so a stable sort on times
        # alone yields exact ``(time, seq)`` order.
        times = now + np.array(delays, dtype=float)
        order = np.argsort(times, kind="stable")
        times = times[order]
        seqs = first + order.astype(np.int64)
        dsts_arr = np.fromiter(dsts, dtype=np.int64, count=fanout)[order]
        block = _SpineBlock(times, seqs, dsts_arr, src, message)
        t0 = times.item(0)
        s0 = seqs.item(0)
        spine = self._spine
        _heappush(spine.blocks, (t0, s0, block))
        armed = spine.armed
        if armed is None or t0 < armed[0] or (t0 == armed[0] and s0 < armed[1]):
            key = (t0, s0)
            spine.armed = key
            spine.live.add(key)
            queue = sim._queue
            _heappush(queue, (t0, s0, None, self._drain_spine, (t0, s0)))
            if len(queue) > sim.max_queue_depth:
                sim.max_queue_depth = len(queue)

    def _drain_spine(self, time: float, seq: int) -> None:
        """Cursor callback for the spine: deliver consecutive rows while
        their keys precede every other pending event, handing maximal
        same-destination same-class runs to batch handlers.

        A row is delivered only when no event with a smaller
        ``(time, seq)`` key exists anywhere (heap, horizon, or a parked
        block) -- at that point the object plane would have popped
        exactly this row next, so delivering it here preserves global
        event order, clock values and seq allocation bit-for-bit.
        ``sim.now`` is advanced to each row's arrival time before its
        handler runs.  When a foreign event intervenes, the cursor
        re-arms at the next undelivered key.

        The barrier (heap head key, capped by the horizon) is
        snapshotted once and revalidated only when delivering a row
        changed the heap head -- handlers push timers but never pop, so
        the head object's identity is a sufficient staleness check.  On
        the columnar plane handler *sends* go back into the spine, not
        the heap, so the snapshot usually survives the whole drain and
        rows inserted mid-drain are picked up in key order by the index
        walk: their fresh seqs place them after the row being delivered
        and before any undelivered row they precede.

        Under one barrier snapshot the drain *alternates* between the
        scalar spine and the block heap: scalar rows run up to the
        leading block's head key, then the leading block runs up to the
        next scalar key, and so on -- a strict two-way merge in
        ``(time, seq)`` order, so interleaving blocks changes nothing
        observable.  A scalar run trusts head identity on the block
        heap (its keys are exact between runs: any block that tightens
        the cap surfaces at ``blocks[0]``); a block run instead watches
        ``len(blocks)``/``len(entries)``, because its own heap key goes
        stale while rows are consumed, so a handler-pushed block or
        scalar insert can precede the remaining rows without ever
        reaching the heap top.
        """
        spine = self._spine
        key = (time, seq)
        live = spine.live
        live.discard(key)
        if spine.armed != key:
            return  # Stale cursor: an earlier drain already passed this key.
        entries = spine.entries
        blocks = spine.blocks
        sim = self.sim
        queue = sim._queue
        horizon = sim.horizon
        routes_get = self._routes.get
        handlers_get = self._handlers.get
        batch_routes_get = self._batch_routes.get
        stats = self._stats
        unresolved = _UNRESOLVED
        i = 0
        done = False
        while not done:
            # Barrier snapshot: clear cancelled timers at the head (the
            # run loop would discard them anyway; yielding to one wastes
            # a re-arm), then cap the head key by the horizon.
            while queue:
                head = queue[0]
                handle = head[2]
                if handle is None or not handle.cancelled:
                    break
                _heappop(queue)
            if queue:
                head = queue[0]
                bt = head[0]
                bs = head[1]
                if bt > horizon:
                    bt = horizon
                    bs = _INF
            else:
                head = None
                bt = horizon
                bs = _INF
            while True:
                # ---- scalar run: up to the leading block's head ----
                btop = blocks[0] if blocks else None
                sbt = bt
                sbs = bs
                capped = False
                if btop is not None:
                    t0 = btop[0]
                    if t0 < sbt or (t0 == sbt and btop[1] < sbs):
                        sbt = t0
                        sbs = btop[1]
                        capped = True
                # 0 = entries exhausted, 1 = hit the cap, 2 = heap head
                # moved (re-snapshot the barrier), 3 = block head moved
                # (re-derive the cap).
                stop = 0
                while i < len(entries):
                    if i >= 256:
                        # Compact the delivered prefix mid-drain.  A long
                        # drain otherwise keeps dead rows in front, which
                        # makes every mid-drain multicast merge (and every
                        # insort bisect) pay for rows that are already
                        # gone.  Only the in-flight suffix moves, so this
                        # is O(1) amortized per delivered row.
                        del entries[:i]
                        i = 0
                    row = entries[i]
                    t = row[0]
                    if t > sbt or (t == sbt and row[1] > sbs):
                        # The cap (block head, foreign event or horizon)
                        # comes first.
                        stop = 1
                        break
                    dst = row[3]
                    if not self._pristine:
                        # A fault landed while rows were in flight: fall
                        # back to per-message delivery-time checks (drops
                        # count exactly as on the object plane).
                        sim.now = t
                        self._deliver_bound(row[2], dst, row[4])
                        i += 1
                        if queue and queue[0] is not head:
                            stop = 2
                            break
                        if blocks and blocks[0] is not btop:
                            stop = 3
                            break
                        continue
                    message = row[4]
                    cls = message.__class__
                    batch_route = batch_routes_get(dst)
                    if batch_route is not None:
                        bh = batch_route.get(cls, unresolved)
                        if bh is unresolved:
                            endpoint = self._batch_endpoints.get(dst)
                            bh = (
                                getattr(
                                    endpoint, "handle_" + cls.__name__ + "Batch", None
                                )
                                if endpoint is not None
                                else None
                            )
                            batch_route[cls] = bh
                        if bh is not None:
                            # Maximal run of same-destination same-class
                            # rows inside the cap, handed over as one
                            # column.
                            j = i + 1
                            total = len(entries)
                            while j < total:
                                r2 = entries[j]
                                t2 = r2[0]
                                if (
                                    r2[3] != dst
                                    or t2 > sbt
                                    or (t2 == sbt and r2[1] > sbs)
                                    or r2[4].__class__ is not cls
                                ):
                                    break
                                j += 1
                            width = j - i
                            if width > 1:
                                sim.now = t
                                times, _seqs, srcs, _dsts, messages = zip(
                                    *entries[i:j]
                                )
                                consumed = bh(srcs, messages, times)
                                if consumed is None:
                                    consumed = width
                                elif consumed < 1:
                                    consumed = 1
                                elif consumed > width:
                                    consumed = width
                                stats.messages_delivered += consumed
                                i += consumed
                                if queue and queue[0] is not head:
                                    stop = 2
                                    break
                                if blocks and blocks[0] is not btop:
                                    stop = 3
                                    break
                                continue
                            # width == 1: the per-row handler below is
                            # cheaper than the column machinery, and every
                            # batched class has one (the object plane
                            # depends on it), with identical semantics by
                            # the batch-handler contract.
                    sim.now = t
                    route = routes_get(dst)
                    if route is not None:
                        handler = route.get(cls, unresolved)
                        if handler is not unresolved:
                            stats.messages_delivered += 1
                            if handler is not None:
                                handler(row[2], message)
                            i += 1
                            if queue and queue[0] is not head:
                                stop = 2
                                break
                            if blocks and blocks[0] is not btop:
                                stop = 3
                                break
                            continue
                    fallback = handlers_get(dst)
                    if fallback is None:
                        stats.messages_dropped += 1
                    else:
                        stats.messages_delivered += 1
                        fallback(row[2], message)
                    i += 1
                    if queue and queue[0] is not head:
                        stop = 2
                        break
                    if blocks and blocks[0] is not btop:
                        stop = 3
                        break
                if stop == 2:
                    break  # Re-snapshot the barrier.
                if stop == 3:
                    continue  # Re-derive the block cap.
                if stop == 1 and not capped:
                    done = True  # True barrier (foreign event/horizon).
                    break
                # Scalar rows are exhausted (stop 0) or the leading block
                # precedes the next row (stop 1, capped): run the block
                # if it still precedes the barrier.
                if btop is None:
                    done = True
                    break
                bt0 = btop[0]
                if bt0 > bt or (bt0 == bt and btop[1] > bs):
                    done = True
                    break
                # ---- block run: up to the next scalar key ----
                block = btop[2]
                btimes = block.times
                bseqs = block.seqs
                bdsts = block.dsts
                bsrc = block.src
                message = block.message
                cls = message.__class__
                pos = block.pos
                end = len(btimes)
                cbt = bt
                cbs = bs
                if i < len(entries):
                    r0 = entries[i]
                    rt = r0[0]
                    if rt < cbt or (rt == cbt and r0[1] < cbs):
                        cbt = rt
                        cbs = r0[1]
                # The block's heap key goes stale as rows are consumed,
                # so head identity cannot spot handler-pushed blocks or
                # scalar inserts; watch the container lengths instead
                # (handlers only ever add).
                nblocks = len(blocks)
                elen = len(entries)
                if nblocks > 1:
                    # Concurrent wide multicasts (PBFT all-to-all)
                    # interleave row-by-row: also stop at the runner-up
                    # block's head -- the smaller of the heap root's two
                    # children.
                    b1 = blocks[1]
                    if nblocks > 2:
                        b2 = blocks[2]
                        if b2[0] < b1[0] or (b2[0] == b1[0] and b2[1] < b1[1]):
                            b1 = b2
                    if b1[0] < cbt or (b1[0] == cbt and b1[1] < cbs):
                        cbt = b1[0]
                        cbs = b1[1]
                requeue = False
                while pos < end:
                    t = btimes.item(pos)
                    s = bseqs.item(pos)
                    if t > cbt or (t == cbt and s > cbs):
                        break
                    dst = bdsts.item(pos)
                    pos += 1
                    sim.now = t
                    if not self._pristine:
                        self._deliver_bound(bsrc, dst, message)
                    else:
                        # Per-row delivery: destinations within one
                        # multicast are distinct, so the batch scan
                        # would only ever find width-1 runs here.
                        delivered = False
                        route = routes_get(dst)
                        if route is not None:
                            handler = route.get(cls, unresolved)
                            if handler is not unresolved:
                                stats.messages_delivered += 1
                                if handler is not None:
                                    handler(bsrc, message)
                                delivered = True
                        if not delivered:
                            fallback = handlers_get(dst)
                            if fallback is None:
                                stats.messages_dropped += 1
                            else:
                                stats.messages_delivered += 1
                                fallback(bsrc, message)
                    if (
                        (queue and queue[0] is not head)
                        or len(blocks) != nblocks
                        or len(entries) != elen
                    ):
                        requeue = queue and queue[0] is not head
                        break
                if pos >= end:
                    _heappop(blocks)
                else:
                    # Re-key the heap entry at the first undelivered row.
                    block.pos = pos
                    _heapreplace(
                        blocks, (btimes.item(pos), bseqs.item(pos), block)
                    )
                if requeue:
                    break  # Re-snapshot the barrier.
                # Otherwise keep alternating under this snapshot.
        if i:
            del entries[:i]
        nkey = None
        if entries:
            r0 = entries[0]
            nkey = (r0[0], r0[1])
        if blocks:
            b0 = blocks[0]
            bkey = (b0[0], b0[1])
            if nkey is None or bkey < nkey:
                nkey = bkey
        if nkey is not None:
            spine.armed = nkey
            if nkey not in live:
                live.add(nkey)
                _heappush(
                    queue, (nkey[0], nkey[1], None, self._drain_spine, nkey)
                )
                if len(queue) > sim.max_queue_depth:
                    sim.max_queue_depth = len(queue)
        else:
            spine.armed = None

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _make_deliver(self) -> Callable[[int, int, Any], None]:
        """Build the delivery callback with hot references as closure
        locals.  ``_routes``/``_handlers``/``stats`` are mutated in place
        and never rebound, so capturing them is safe; the mutable fault
        state (``_pristine``, down set, partition) is read through
        ``self`` so mid-run changes keep applying to in-flight messages.
        """
        routes_get = self._routes.get
        handlers_get = self._handlers.get
        stats = self.stats

        def _deliver(
            src: int, dst: int, message: Any, _self=self, _unresolved=_UNRESOLVED
        ) -> None:
            if not _self._pristine and (
                dst in _self._down
                or src in _self._down
                or _self._partitioned(src, dst)
            ):
                stats.messages_dropped += 1
                return
            route = routes_get(dst)
            if route is not None:
                handler = route.get(message.__class__, _unresolved)
                if handler is not _unresolved:
                    stats.messages_delivered += 1
                    if handler is not None:
                        handler(src, message)
                    return
            inbox = handlers_get(dst)
            if inbox is None:
                stats.messages_dropped += 1
                return
            stats.messages_delivered += 1
            inbox(src, message)

        return _deliver

    def _deliver(self, src: int, dst: int, message: Any) -> None:
        """Deliver one message now (the scheduled path uses the prebuilt
        closure; this method is the equivalent public-ish entry point)."""
        self._deliver_bound(src, dst, message)
