"""Discrete-event simulation engine.

A :class:`Simulator` owns a virtual clock and a priority queue of events.
Events are callbacks scheduled at absolute virtual times; ties are broken
by insertion order so runs are fully deterministic.  Timers can be
cancelled through the :class:`EventHandle` returned by ``schedule``.

Hot-path notes
--------------
The queue stores ``(time, seq, handle, callback, args)`` tuples so heap
sift comparisons run at C speed on the ``(time, seq)`` prefix -- ``seq``
is unique, so later elements are never compared.  ``handle`` is ``None``
for events posted through :meth:`Simulator.post`, the non-cancellable
fast path used by the network for message deliveries: it skips the
:class:`EventHandle` allocation entirely.  Ordering semantics (time,
then insertion order) are identical for both kinds of entry.
"""

from __future__ import annotations

import gc
import random
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class SimClock:
    """Picklable ``now_fn``: calling it reads ``sim.now``.

    The fault adversaries take a ``now_fn`` clock; a ``lambda: sim.now``
    would pin the whole checkpointed object graph on an unpicklable
    closure, so windowed faults use this instead.
    """

    __slots__ = ("sim",)

    def __init__(self, sim: "Simulator"):
        self.sim = sim

    def __call__(self) -> float:
        return self.sim.now


class EventHandle:
    """Cancellable handle for a scheduled event."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped by the run loop."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random generator.  All stochastic
        behaviour in a simulation (jitter, fault timing, annealing inside
        sensors) must draw from ``self.rng`` or a generator derived from it
        so repeated runs are bit-identical.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        #: Heap of ``(time, seq, handle_or_None, callback, args)``.
        self._queue: list[tuple] = []
        self._seq = 0
        self._running = False
        self.events_processed = 0
        #: High-water mark of the event queue (pending + cancelled), for
        #: the ``repro bench`` peak-queue-depth metric.
        self.max_queue_depth = 0
        #: The active run()'s time horizon (``inf`` outside run()).  Event
        #: callbacks that expand into multiple deliveries -- the columnar
        #: network's drain loops -- read this so they never deliver past
        #: the point where run() itself would have stopped.
        self.horizon = float("inf")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} before now={self.now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args)
        queue = self._queue
        _heappush(queue, (time, seq, handle, callback, args))
        if len(queue) > self.max_queue_depth:
            self.max_queue_depth = len(queue)
        return handle

    def post(self, delay: float, callback: Callable[..., None], args: tuple = ()) -> None:
        """Schedule a *non-cancellable* event ``delay`` seconds from now.

        The no-handle fast path for high-volume events that are never
        cancelled (message deliveries): same ordering semantics as
        :meth:`schedule`, without allocating an :class:`EventHandle`.
        ``delay`` must be non-negative; callers on the hot path guarantee
        that by construction (link delays and jitter are >= 0).
        """
        if delay < 0:
            raise SimulationError(f"cannot post {delay:.6f}s in the past")
        seq = self._seq
        self._seq = seq + 1
        queue = self._queue
        _heappush(queue, (self.now + delay, seq, None, callback, args))
        if len(queue) > self.max_queue_depth:
            self.max_queue_depth = len(queue)

    def derive_rng(self, label: str) -> random.Random:
        """Return a new generator deterministically derived from the seed.

        Components that need private randomness (per-replica sensors, fault
        injectors) use this so their draws do not perturb each other.
        """
        return random.Random(f"{self.rng.random()}:{label}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next_pending(self) -> Optional[tuple]:
        """Drop cancelled heads and return the next live entry (unpopped)."""
        queue = self._queue
        while queue:
            head = queue[0]
            handle = head[2]
            if handle is not None and handle.cancelled:
                _heappop(queue)
                continue
            return head
        return None

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        head = self._next_pending()
        if head is None:
            return False
        _heappop(self._queue)
        self.now = head[0]
        self.events_processed += 1
        head[3](*head[4])
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        ``until`` is an absolute virtual time; events scheduled exactly at
        ``until`` are executed.  When the run stops because of ``until``,
        the clock is advanced to ``until`` so subsequent ``schedule`` calls
        are relative to the horizon.  ``max_events`` counts events actually
        executed (cancelled entries never count), so the budget matches the
        growth of :attr:`events_processed` exactly.
        """
        self._running = True
        executed = self.events_processed
        budget = executed + max_events if max_events is not None else None
        horizon = float("inf") if until is None else until
        self.horizon = horizon
        stopped_by_budget = False
        queue = self._queue
        pop = _heappop
        # Pause the cyclic collector for the duration of the loop: event
        # turnover is dominated by acyclic tuples and messages that
        # refcounting frees immediately, so generational scans only add
        # jitter.  Restored on every exit path.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            # Inlined event loop (no step()/_next_pending() calls): it runs
            # once per simulated event.  The semantics match step().
            # ``executed`` shadows events_processed inside the loop and is
            # synced on every exit path; callbacks must not read
            # events_processed mid-run (none do -- it is a post-run metric).
            while queue:
                head = queue[0]
                handle = head[2]
                if handle is not None and handle.cancelled:
                    pop(queue)
                    continue
                time = head[0]
                if time > horizon:
                    break
                if budget is not None and executed >= budget:
                    stopped_by_budget = True
                    break
                pop(queue)
                self.now = time
                executed += 1
                head[3](*head[4])
        finally:
            self._running = False
            self.events_processed = executed
            self.horizon = float("inf")
            if gc_was_enabled:
                gc.enable()
        # A budget stop may leave live events before the horizon; jumping
        # the clock over them would let later runs move time backwards.
        if until is not None and not stopped_by_budget and self.now < until:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(
            1
            for entry in self._queue
            if entry[2] is None or not entry[2].cancelled
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending})"
