"""Discrete-event simulation engine.

A :class:`Simulator` owns a virtual clock and a priority queue of events.
Events are callbacks scheduled at absolute virtual times; ties are broken
by insertion order so runs are fully deterministic.  Timers can be
cancelled through the :class:`EventHandle` returned by ``schedule``.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class EventHandle:
    """Cancellable handle for a scheduled event."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped by the run loop."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random generator.  All stochastic
        behaviour in a simulation (jitter, fault timing, annealing inside
        sensors) must draw from ``self.rng`` or a generator derived from it
        so repeated runs are bit-identical.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._queue: list[EventHandle] = []
        self._seq = 0
        self._running = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} before now={self.now:.6f}"
            )
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def derive_rng(self, label: str) -> random.Random:
        """Return a new generator deterministically derived from the seed.

        Components that need private randomness (per-replica sensors, fault
        injectors) use this so their draws do not perturb each other.
        """
        return random.Random(f"{self.rng.random()}:{label}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next_pending(self) -> Optional[EventHandle]:
        """Drop cancelled heads and return the next live event (unpopped)."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        handle = self._next_pending()
        if handle is None:
            return False
        heapq.heappop(self._queue)
        self.now = handle.time
        self.events_processed += 1
        handle.callback(*handle.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        ``until`` is an absolute virtual time; events scheduled exactly at
        ``until`` are executed.  When the run stops because of ``until``,
        the clock is advanced to ``until`` so subsequent ``schedule`` calls
        are relative to the horizon.  ``max_events`` counts events actually
        executed (cancelled entries never count), so the budget matches the
        growth of :attr:`events_processed` exactly.
        """
        self._running = True
        budget = self.events_processed + max_events if max_events is not None else None
        stopped_by_budget = False
        try:
            while True:
                nxt = self._next_pending()
                if nxt is None:
                    break
                if until is not None and nxt.time > until:
                    break
                if budget is not None and self.events_processed >= budget:
                    stopped_by_budget = True
                    break
                self.step()
        finally:
            self._running = False
        # A budget stop may leave live events before the horizon; jumping
        # the clock over them would let later runs move time backwards.
        if until is not None and not stopped_by_budget and self.now < until:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for handle in self._queue if not handle.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending})"
