"""Deterministic discrete-event simulation substrate.

The paper evaluates OptiLog on a 30-machine cluster with an in-process
latency emulator (and the Phantom simulator for OptiAware).  This package
replaces that testbed with a single-process, deterministic discrete-event
simulator: virtual time, an event queue, cancellable timers and a message
network whose per-link delays come from :mod:`repro.net`.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import Network, NetworkStats

__all__ = ["EventHandle", "Network", "NetworkStats", "Simulator"]
