"""Aware's score function (§5, Example C.1).

Aware scores a (leader, weights) configuration by predicting the round
duration from the latency matrix: Propose fan-out, Write exchange, Accept
exchange, with the *fastest weighted quorum* at every collection point.
Appendix C notes this is exactly the ``d_rnd`` derived from timeout
requirements TR1-TR3, so the implementation delegates to
:class:`repro.core.timeouts.PbftTimeouts`.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Optional

import numpy as np

from repro.aware.weights import WeightConfiguration
from repro.core.timeouts import PbftTimeouts, weighted_round_duration


def weight_config_round_duration(
    latency: np.ndarray, configuration: WeightConfiguration
) -> float:
    """Predicted ``d_rnd`` for a weighted configuration (lower is better).

    Runs the vectorized :func:`weighted_round_duration` over the cached
    weight vector -- the search layer calls this per candidate, so no
    per-evaluation ``PbftTimeouts``/dict construction.
    """
    return weighted_round_duration(
        latency,
        configuration.leader,
        configuration.weight_vector(),
        configuration.quorum_weight,
    )


def weight_config_round_duration_scalar(
    latency: np.ndarray, configuration: WeightConfiguration
) -> float:
    """Reference implementation: the per-dict :class:`PbftTimeouts` scan."""
    timeouts = PbftTimeouts(
        latency,
        leader=configuration.leader,
        weights=configuration.weights(),
        quorum_weight=configuration.quorum_weight,
    )
    return timeouts.round_duration_scalar()


def aware_score(
    latency: np.ndarray,
    configuration: WeightConfiguration,
    candidates: Optional[FrozenSet[int]] = None,
) -> float:
    """Aware's score, optionally enforcing OptiAware's candidate rule.

    When ``candidates`` is given (OptiAware), configurations assigning a
    special role (leader or Vmax) to a non-candidate are infeasible and
    score ``inf``; this is how suspicions steer the search away from
    misbehaving replicas.
    """
    if candidates is not None and not (
        configuration.special_replicas() <= candidates
    ):
        return math.inf
    return weight_config_round_duration(latency, configuration)
