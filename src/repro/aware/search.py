"""Configuration search for Aware/OptiAware.

Two strategies, both restricted to a candidate set:

* :func:`exhaustive_weight_search` -- for every candidate leader, greedily
  assign Vmax to the replicas whose Writes reach the rest fastest, then
  keep the best-scoring assignment.  Deterministic; practical for
  PBFT-scale systems (n ≤ ~100).
* :func:`annealed_weight_search` -- simulated annealing over
  (leader, Vmax) with candidate-respecting swap mutations, for larger
  search spaces and for the non-deterministic search mode of §4.2.4.

Both run on the vectorized score path
(:func:`repro.core.timeouts.weighted_round_duration`); the annealer
additionally keeps its (leader, Vmax) state incrementally -- the weight
vector is updated in place per mutation and the Vmax membership lists
are maintained sorted, so no per-mutation ``WeightConfiguration``,
``weights()`` dict or ``sorted(vmax)`` allocation survives on the hot
path.  Search results are bit-identical to the full-scoring reference
(``incremental=False``) under the same seed.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left, insort
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.aware.score import weight_config_round_duration
from repro.aware.weights import WeightConfiguration, WheatParameters
from repro.core.timeouts import weighted_round_duration
from repro.optimize.annealing import (
    AnnealingSchedule,
    IncrementalSearch,
    anneal,
    anneal_incremental,
)


def _centrality_order(latency: np.ndarray, members: List[int]) -> List[int]:
    """Members sorted by mean link latency to the others (most central
    first); deterministic tiebreak by id."""
    count = len(members)
    if count <= 1:
        return list(members)
    index = np.fromiter(members, dtype=np.intp, count=count)
    block = np.asarray(latency, dtype=float)[np.ix_(index, index)]
    # Row-major off-diagonal view: row j holds exactly the latencies the
    # scalar loop would collect for member j, in the same order.
    off_diagonal = block[~np.eye(count, dtype=bool)].reshape(count, count - 1)
    means = off_diagonal.mean(axis=1)
    ranked = sorted(
        range(count), key=lambda position: (float(means[position]), members[position])
    )
    return [members[position] for position in ranked]


def exhaustive_weight_search(
    latency: np.ndarray,
    n: int,
    f: int,
    candidates: Optional[FrozenSet[int]] = None,
) -> Optional[WeightConfiguration]:
    """Best configuration over all candidate leaders with greedy Vmax.

    For each leader, Vmax goes to the ``2f`` candidates closest (mean
    latency) to the whole membership -- the replicas whose votes complete
    quorums earliest.  Returns None if fewer candidates than special
    roles exist.
    """
    params = WheatParameters(n, f)
    pool = sorted(candidates) if candidates is not None else list(range(n))
    if len(pool) < params.vmax_count or not pool:
        return None
    ordered = _centrality_order(latency, pool)
    # The greedy Vmax set is leader-independent: hoisted out of the
    # per-leader loop, along with its weight vector.
    vmax = frozenset(ordered[: params.vmax_count])
    weight_vector = np.full(n, params.vmin, dtype=float)
    weight_vector[sorted(vmax)] = params.vmax
    quorum_weight = params.quorum_weight
    best_leader: Optional[int] = None
    best_score = math.inf
    for leader in pool:
        score = weighted_round_duration(latency, leader, weight_vector, quorum_weight)
        if score < best_score:
            best_leader = leader
            best_score = score
    if best_leader is None:
        return None
    return WeightConfiguration(n=n, f=f, leader=best_leader, vmax_replicas=vmax)


class _WeightAnnealState(IncrementalSearch[WeightConfiguration]):
    """Incremental (leader, Vmax) state for :func:`annealed_weight_search`.

    The weight vector mutates in place (two entries per Vmax swap) and is
    restored on reject; the sorted Vmax/outside membership lists the
    mutation draws sample from are maintained by bisection on accept, so
    the per-iteration cost is the vectorized score plus O(|Vmax|) list
    surgery -- no re-sorting, no configuration objects.
    """

    def __init__(
        self,
        latency: np.ndarray,
        n: int,
        f: int,
        params: WheatParameters,
        pool: List[int],
        leader: int,
        vmax: FrozenSet[int],
    ):
        self.latency = latency
        self.n = n
        self.f = f
        self.pool = pool
        self.quorum_weight = params.quorum_weight
        self.vmax_value = params.vmax
        self.vmin_value = params.vmin
        self.leader = leader
        self.vmax_sorted = sorted(vmax)
        vmax_set = set(vmax)
        self.outside = [replica for replica in pool if replica not in vmax_set]
        vector = np.full(n, params.vmin, dtype=float)
        vector[self.vmax_sorted] = params.vmax
        self.weight_vector = vector

    def initial_score(self) -> float:
        return weighted_round_duration(
            self.latency, self.leader, self.weight_vector, self.quorum_weight
        )

    def propose(self, rng: random.Random) -> Optional[Tuple]:
        if rng.random() < 0.3:
            return ("leader", rng.choice(self.pool))
        if not self.outside:
            return None  # candidate == current (the full path re-scores it)
        removed = rng.choice(self.vmax_sorted)
        added = rng.choice(self.outside)
        return ("swap", removed, added)

    def delta_score(self, mutation: Tuple) -> float:
        if mutation[0] == "leader":
            return weighted_round_duration(
                self.latency, mutation[1], self.weight_vector, self.quorum_weight
            )
        _, removed, added = mutation
        vector = self.weight_vector
        vector[removed] = self.vmin_value
        vector[added] = self.vmax_value
        return weighted_round_duration(
            self.latency, self.leader, vector, self.quorum_weight
        )

    def apply(self, mutation: Tuple) -> None:
        if mutation[0] == "leader":
            self.leader = mutation[1]
            return
        _, removed, added = mutation
        self.vmax_sorted.pop(bisect_left(self.vmax_sorted, removed))
        insort(self.vmax_sorted, added)
        self.outside.pop(bisect_left(self.outside, added))
        insort(self.outside, removed)

    def revert(self, mutation: Tuple) -> None:
        if mutation[0] == "swap":
            _, removed, added = mutation
            vector = self.weight_vector
            vector[removed] = self.vmax_value
            vector[added] = self.vmin_value

    def snapshot(self) -> WeightConfiguration:
        return WeightConfiguration(
            n=self.n,
            f=self.f,
            leader=self.leader,
            vmax_replicas=frozenset(self.vmax_sorted),
        )


def annealed_weight_search(
    latency: np.ndarray,
    n: int,
    f: int,
    candidates: Optional[FrozenSet[int]] = None,
    rng: Optional[random.Random] = None,
    schedule: Optional[AnnealingSchedule] = None,
    incremental: bool = True,
) -> Optional[WeightConfiguration]:
    """Simulated-annealing search over (leader, Vmax) assignments.

    Mutations swap a Vmax holder with a non-holder, or move the leader
    role; special roles are only ever assigned within ``candidates``
    (§4.2.4's mutate rule).  ``incremental=False`` selects the
    full-scoring reference path (a fresh :class:`WeightConfiguration`
    per mutation), kept for the equivalence tests.
    """
    params = WheatParameters(n, f)
    rng = rng or random.Random(0)
    pool = sorted(candidates) if candidates is not None else list(range(n))
    if len(pool) < params.vmax_count:
        return None

    schedule = schedule or AnnealingSchedule(iterations=2000, initial_temperature=0.05)
    initial_vmax = frozenset(rng.sample(pool, params.vmax_count))
    initial_leader = rng.choice(pool)

    if incremental:
        state = _WeightAnnealState(
            latency, n, f, params, pool, initial_leader, initial_vmax
        )
        return anneal_incremental(state, rng, schedule).best_state

    def score(configuration: WeightConfiguration) -> float:
        return weight_config_round_duration(latency, configuration)

    def mutate(
        configuration: WeightConfiguration, mutation_rng: random.Random
    ) -> WeightConfiguration:
        vmax = set(configuration.vmax_replicas)
        leader = configuration.leader
        if mutation_rng.random() < 0.3:
            leader = mutation_rng.choice(pool)
        else:
            outside = [replica for replica in pool if replica not in vmax]
            if outside:
                vmax.discard(mutation_rng.choice(sorted(vmax)))
                vmax.add(mutation_rng.choice(outside))
        return WeightConfiguration(
            n=n, f=f, leader=leader, vmax_replicas=frozenset(vmax)
        )

    initial = WeightConfiguration(
        n=n, f=f, leader=initial_leader, vmax_replicas=initial_vmax
    )
    result = anneal(initial, score, mutate, rng, schedule)
    return result.best_state
