"""Configuration search for Aware/OptiAware.

Two strategies, both restricted to a candidate set:

* :func:`exhaustive_weight_search` -- for every candidate leader, greedily
  assign Vmax to the replicas whose Writes reach the rest fastest, then
  keep the best-scoring assignment.  Deterministic; practical for
  PBFT-scale systems (n ≤ ~100).
* :func:`annealed_weight_search` -- simulated annealing over
  (leader, Vmax) with candidate-respecting swap mutations, for larger
  search spaces and for the non-deterministic search mode of §4.2.4.
"""

from __future__ import annotations

import math
import random
from typing import FrozenSet, Optional

import numpy as np

from repro.aware.score import weight_config_round_duration
from repro.aware.weights import WeightConfiguration, WheatParameters
from repro.optimize.annealing import AnnealingSchedule, anneal


def _centrality_order(latency: np.ndarray, members: list[int]) -> list[int]:
    """Members sorted by mean link latency to the others (most central
    first); deterministic tiebreak by id."""
    def mean_latency(replica: int) -> float:
        others = [latency[replica, other] for other in members if other != replica]
        return float(np.mean(others)) if others else 0.0

    return sorted(members, key=lambda replica: (mean_latency(replica), replica))


def exhaustive_weight_search(
    latency: np.ndarray,
    n: int,
    f: int,
    candidates: Optional[FrozenSet[int]] = None,
) -> Optional[WeightConfiguration]:
    """Best configuration over all candidate leaders with greedy Vmax.

    For each leader, Vmax goes to the ``2f`` candidates closest (mean
    latency) to the whole membership -- the replicas whose votes complete
    quorums earliest.  Returns None if fewer candidates than special
    roles exist.
    """
    params = WheatParameters(n, f)
    pool = sorted(candidates) if candidates is not None else list(range(n))
    if len(pool) < params.vmax_count or not pool:
        return None
    ordered = _centrality_order(latency, pool)
    best: Optional[WeightConfiguration] = None
    best_score = math.inf
    for leader in pool:
        vmax = frozenset(ordered[: params.vmax_count])
        configuration = WeightConfiguration(
            n=n, f=f, leader=leader, vmax_replicas=vmax
        )
        score = weight_config_round_duration(latency, configuration)
        if score < best_score or (
            score == best_score and best is not None and leader < best.leader
        ):
            best = configuration
            best_score = score
    return best


def annealed_weight_search(
    latency: np.ndarray,
    n: int,
    f: int,
    candidates: Optional[FrozenSet[int]] = None,
    rng: Optional[random.Random] = None,
    schedule: Optional[AnnealingSchedule] = None,
) -> Optional[WeightConfiguration]:
    """Simulated-annealing search over (leader, Vmax) assignments.

    Mutations swap a Vmax holder with a non-holder, or move the leader
    role; special roles are only ever assigned within ``candidates``
    (§4.2.4's mutate rule).
    """
    params = WheatParameters(n, f)
    rng = rng or random.Random(0)
    pool = sorted(candidates) if candidates is not None else list(range(n))
    if len(pool) < params.vmax_count:
        return None

    def initial() -> WeightConfiguration:
        vmax = frozenset(rng.sample(pool, params.vmax_count))
        leader = rng.choice(pool)
        return WeightConfiguration(n=n, f=f, leader=leader, vmax_replicas=vmax)

    def score(configuration: WeightConfiguration) -> float:
        return weight_config_round_duration(latency, configuration)

    def mutate(
        configuration: WeightConfiguration, mutation_rng: random.Random
    ) -> WeightConfiguration:
        vmax = set(configuration.vmax_replicas)
        leader = configuration.leader
        if mutation_rng.random() < 0.3:
            leader = mutation_rng.choice(pool)
        else:
            outside = [replica for replica in pool if replica not in vmax]
            if outside:
                vmax.discard(mutation_rng.choice(sorted(vmax)))
                vmax.add(mutation_rng.choice(outside))
        return WeightConfiguration(
            n=n, f=f, leader=leader, vmax_replicas=frozenset(vmax)
        )

    schedule = schedule or AnnealingSchedule(iterations=2000, initial_temperature=0.05)
    result = anneal(initial(), score, mutate, rng, schedule)
    return result.best_state
