"""Wheat's weighted-voting scheme (Sousa & Bessani [57], used by Aware).

With ``n = 3f + 1 + Δ`` replicas, Wheat gives weight ``Vmax = 1 + Δ/f`` to
``2f`` replicas and ``Vmin = 1`` to the remaining ``n - 2f``.  A quorum
must reach weight ``Qv = 2(f + Δ) + 1``; two such quorums always intersect
in at least one correct replica (the safety property tests verify this),
yet in the best case a quorum is formed by the 2f ``Vmax`` replicas plus a
single ``Vmin`` replica -- fewer replies than the unweighted
``⌈(n + f + 1) / 2⌉``, which is the latency win when ``n > 3f + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable

import numpy as np

from repro.core.records import RECORD_HEADER_SIZE, Configuration


@dataclass(frozen=True)
class WheatParameters:
    """Derived weighting constants for an (n, f) system."""

    n: int
    f: int

    def __post_init__(self):
        if self.n < 3 * self.f + 1:
            raise ValueError(f"n={self.n} cannot tolerate f={self.f}")
        if self.f < 1:
            raise ValueError("f must be at least 1")

    @property
    def delta_replicas(self) -> int:
        """Δ: spare replicas beyond the 3f+1 minimum."""
        return self.n - (3 * self.f + 1)

    @property
    def vmax(self) -> float:
        return 1.0 + self.delta_replicas / self.f

    @property
    def vmin(self) -> float:
        return 1.0

    @property
    def vmax_count(self) -> int:
        """Number of replicas holding Vmax (always 2f)."""
        return 2 * self.f

    @property
    def quorum_weight(self) -> float:
        """Qv = 2(f + Δ) + 1."""
        return 2 * (self.f + self.delta_replicas) + 1

    @property
    def total_weight(self) -> float:
        return self.vmax_count * self.vmax + (self.n - self.vmax_count) * self.vmin


@dataclass(frozen=True)
class WeightConfiguration(Configuration):
    """An Aware configuration: the leader plus the Vmax holders (§5).

    Special roles are the leader and the ``Vmax`` replicas: those are the
    roles OptiAware only assigns to candidate replicas.
    """

    n: int
    f: int
    leader: int
    vmax_replicas: FrozenSet[int]

    @classmethod
    def make(cls, n: int, f: int, leader: int, vmax_replicas: Iterable[int]) -> "WeightConfiguration":
        return cls(n=n, f=f, leader=leader, vmax_replicas=frozenset(vmax_replicas))

    def __post_init__(self):
        params = self.parameters  # validates n, f
        if len(self.vmax_replicas) != params.vmax_count:
            raise ValueError(
                f"need exactly {params.vmax_count} Vmax replicas, "
                f"got {len(self.vmax_replicas)}"
            )
        if not all(0 <= replica < self.n for replica in self.vmax_replicas):
            raise ValueError("Vmax replica out of range")
        if not 0 <= self.leader < self.n:
            raise ValueError("leader out of range")

    @property
    def parameters(self) -> WheatParameters:
        # Cached on the (frozen, immutable) instance: weight_of runs once
        # per Prepare/Commit on the PBFT hot path, and building a fresh
        # validated WheatParameters there is pure overhead.
        cached = self.__dict__.get("_parameters")
        if cached is None:
            cached = WheatParameters(self.n, self.f)
            object.__setattr__(self, "_parameters", cached)
        return cached

    def weights(self) -> Dict[int, float]:
        params = self.parameters
        return {
            replica: params.vmax if replica in self.vmax_replicas else params.vmin
            for replica in range(self.n)
        }

    def weight_vector(self) -> np.ndarray:
        """Weights as a dense vector indexed by replica id.

        Cached on the immutable instance; the vectorized score path
        (:func:`repro.core.timeouts.weighted_round_duration`) reads this
        instead of building the ``weights()`` dict per evaluation.
        """
        vector = self.__dict__.get("_weight_vector")
        if vector is None:
            params = self.parameters
            vector = np.full(self.n, params.vmin, dtype=float)
            vector[sorted(self.vmax_replicas)] = params.vmax
            object.__setattr__(self, "_weight_vector", vector)
        return vector

    def weight_of(self, replica: int) -> float:
        pair = self.__dict__.get("_vmax_vmin")
        if pair is None:
            params = self.parameters
            pair = (params.vmax, params.vmin)
            object.__setattr__(self, "_vmax_vmin", pair)
        return pair[0] if replica in self.vmax_replicas else pair[1]

    @property
    def quorum_weight(self) -> float:
        cached = self.__dict__.get("_quorum_weight")
        if cached is None:
            cached = self.parameters.quorum_weight
            object.__setattr__(self, "_quorum_weight", cached)
        return cached

    # -- Configuration interface ----------------------------------------
    def special_replicas(self) -> FrozenSet[int]:
        return self.vmax_replicas | {self.leader}

    def participants(self) -> FrozenSet[int]:
        return frozenset(range(self.n))

    @property
    def wire_size(self) -> int:
        # leader id + Vmax bitmap-ish list.
        return RECORD_HEADER_SIZE + 8 + 8 * len(self.vmax_replicas)
