"""Wheat/Aware weighted voting and OptiAware (§5).

Aware [13] extends BFT-SMaRt with Wheat's weighted votes (a few replicas
get weight ``Vmax``, the rest ``Vmin = 1``) and picks the (leader, Vmax)
assignment minimising predicted round duration from measured latencies.
OptiAware adds OptiLog's misbehavior and suspicion monitoring so the
search avoids replicas outside the candidate set ``K``.
"""

from repro.aware.optiaware import OptiAware
from repro.aware.score import aware_score, weight_config_round_duration
from repro.aware.search import annealed_weight_search, exhaustive_weight_search
from repro.aware.weights import WeightConfiguration, WheatParameters

__all__ = [
    "OptiAware",
    "WeightConfiguration",
    "WheatParameters",
    "annealed_weight_search",
    "aware_score",
    "exhaustive_weight_search",
    "weight_config_round_duration",
]
