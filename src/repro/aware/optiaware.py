"""OptiAware: OptiLog applied to Aware (§5).

OptiAware augments Aware with OptiLog's misbehavior and suspicion
monitoring.  Per §5, a protocol integration must provide exactly two
things: a ``score`` function and a procedure estimating ``d_rnd`` and
``d_m`` -- both come from :class:`repro.core.timeouts.PbftTimeouts`.  The
search then simply avoids replicas outside the candidate set.

This class owns one replica's OptiLog pipeline configured for Aware.  It
is used standalone by the analytical experiments and embedded in the PBFT
engine (:mod:`repro.consensus.pbft`) for the runtime experiment (Fig. 7).
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, FrozenSet, Optional, Tuple

import numpy as np

from repro.aware.score import weight_config_round_duration
from repro.aware.search import annealed_weight_search, exhaustive_weight_search
from repro.aware.weights import WeightConfiguration, WheatParameters
from repro.core.pipeline import OptiLogPipeline, PipelineSettings
from repro.core.records import Configuration
from repro.core.suspicion import ExpectedMessage
from repro.core.timeouts import PbftTimeouts
from repro.crypto.signatures import KeyRegistry


class OptiAware:
    """One replica's OptiAware stack: Aware scoring + OptiLog pipeline.

    Parameters
    ----------
    use_suspicions:
        With False the candidate set is all replicas and the stack
        degrades to plain Aware (the baseline in Fig. 7): latency-driven
        optimization without accountability.
    exhaustive:
        Search strategy; exhaustive is deterministic and is the default
        at PBFT scale.
    """

    def __init__(
        self,
        replica_id: int,
        n: int,
        f: int,
        registry: Optional[KeyRegistry] = None,
        settings: Optional[PipelineSettings] = None,
        propose: Optional[Callable[[Any], None]] = None,
        use_suspicions: bool = True,
        exhaustive: bool = True,
        on_reconfigure: Optional[Callable] = None,
    ):
        self.n = n
        self.f = f
        self.parameters = WheatParameters(n, f)
        self.use_suspicions = use_suspicions
        self.exhaustive = exhaustive
        settings = settings or PipelineSettings(n=n, f=f)
        self.pipeline = OptiLogPipeline(
            replica_id, settings, registry=registry, propose=propose
        )
        self.pipeline.attach_config(
            search=self._search,
            score=self._score,
            validator=self._validate,
            on_reconfigure=on_reconfigure,
        )

    # ------------------------------------------------------------------
    # OptiLog hooks (the two §5 requirements)
    # ------------------------------------------------------------------
    def _score(self, configuration: Configuration) -> float:
        if not isinstance(configuration, WeightConfiguration):
            return math.inf
        return weight_config_round_duration(
            self.pipeline.latency_matrix, configuration
        )

    def _search(
        self, candidates: FrozenSet[int], u: int, rng: random.Random
    ) -> Optional[WeightConfiguration]:
        pool = candidates if self.use_suspicions else frozenset(range(self.n))
        if self.exhaustive:
            return exhaustive_weight_search(
                self.pipeline.latency_matrix, self.n, self.f, candidates=pool
            )
        return annealed_weight_search(
            self.pipeline.latency_matrix, self.n, self.f, candidates=pool, rng=rng
        )

    def _validate(self, configuration: Configuration) -> bool:
        if not isinstance(configuration, WeightConfiguration):
            return False
        return configuration.n == self.n and configuration.f == self.f

    # ------------------------------------------------------------------
    # Timeout derivation for the suspicion sensor
    # ------------------------------------------------------------------
    def timeouts_for(self, configuration: WeightConfiguration) -> PbftTimeouts:
        """``d_m``/``d_rnd`` provider for the active configuration."""
        return PbftTimeouts(
            self.pipeline.latency_matrix,
            leader=configuration.leader,
            weights=configuration.weights(),
            quorum_weight=configuration.quorum_weight,
        )

    def expected_messages(
        self, configuration: WeightConfiguration
    ) -> Tuple[list[ExpectedMessage], float]:
        """(expected messages for this replica, d_rnd) for one round."""
        timeouts = self.timeouts_for(configuration)
        return (
            timeouts.expected_messages(self.pipeline.replica_id),
            timeouts.round_duration(),
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def candidates(self) -> FrozenSet[int]:
        return self.pipeline.candidates

    @property
    def current_configuration(self) -> Optional[WeightConfiguration]:
        monitor = self.pipeline.config_monitor
        return monitor.current if monitor is not None else None

    def default_configuration(self) -> WeightConfiguration:
        """Initial static configuration: leader 0, Vmax on lowest ids
        (what BFT-SMaRt ships before any optimization)."""
        return WeightConfiguration(
            n=self.n,
            f=self.f,
            leader=0,
            vmax_replicas=frozenset(range(self.parameters.vmax_count)),
        )
