"""Windowed activation shared by all interceptor-based adversaries.

Every fault in :mod:`repro.faults` that acts as a network interceptor is
*windowed*: it only manipulates traffic between ``start`` and ``end``
(simulation seconds).  The window needs a clock -- in a simulation,
``lambda: sim.now``.  Constructing a non-trivial window without one is a
silent no-op (the adversary never activates, the experiment reports
healthy numbers), so :class:`ActivationWindow` fails loudly instead.
"""

from __future__ import annotations

import math
from typing import Callable, Optional


class ActivationWindow:
    """Gate for ``start <= now <= end`` with a mandatory clock.

    ``now_fn`` may be omitted only for the trivial always-active window
    (``start == 0`` and ``end == inf``); any real window without a clock
    raises ``ValueError`` at construction time.
    """

    __slots__ = ("start", "end", "_now")

    def __init__(
        self,
        start: float = 0.0,
        end: float = math.inf,
        now_fn: Optional[Callable[[], float]] = None,
    ):
        if end < start:
            raise ValueError(f"window end {end} precedes start {start}")
        if now_fn is None:
            if start > 0.0 or end != math.inf:
                raise ValueError(
                    "a start/end window needs now_fn (e.g. lambda: sim.now); "
                    "without a clock the window would silently never trigger"
                )
            now_fn = lambda: 0.0  # noqa: E731 - trivial always-active clock
        self.start = start
        self.end = end
        self._now = now_fn

    def active(self) -> bool:
        return self.start <= self._now() <= self.end
