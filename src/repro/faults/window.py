"""Windowed activation shared by all interceptor-based adversaries.

Every fault in :mod:`repro.faults` that acts as a network interceptor is
*windowed*: it only manipulates traffic between ``start`` and ``end``
(simulation seconds).  The window needs a clock -- in a simulation,
``lambda: sim.now``.  Constructing a non-trivial window without one is a
silent no-op (the adversary never activates, the experiment reports
healthy numbers), so :class:`ActivationWindow` fails loudly instead.
"""

from __future__ import annotations

import math
from typing import Callable, Optional


def _zero_clock() -> float:
    """Clock of the trivial always-active window (module-level so windows
    stay picklable for simulator checkpoints)."""
    return 0.0


class ActivationWindow:
    """Gate for ``start <= now <= end`` with a mandatory clock.

    ``now_fn`` may be omitted only for the trivial always-active window
    (``start == 0`` and ``end == inf``); any real window without a clock
    raises ``ValueError`` at construction time.  Use a picklable clock
    (:class:`repro.sim.engine.SimClock`) when the window may be
    checkpointed.
    """

    __slots__ = ("start", "end", "_now")

    def __init__(
        self,
        start: float = 0.0,
        end: float = math.inf,
        now_fn: Optional[Callable[[], float]] = None,
    ):
        if start < 0:
            raise ValueError(
                f"window start {start} is negative; simulation time starts "
                "at 0, so the pre-zero portion would silently never apply"
            )
        if end < start:
            raise ValueError(f"window end {end} precedes start {start}")
        if now_fn is None:
            if start > 0.0 or end != math.inf:
                raise ValueError(
                    "a start/end window needs now_fn (e.g. SimClock(sim)); "
                    "without a clock the window would silently never trigger"
                )
            now_fn = _zero_clock
        self.start = start
        self.end = end
        self._now = now_fn

    def active(self) -> bool:
        return self.start <= self._now() <= self.end
