"""Byzantine behaviours used across the evaluation.

* :mod:`repro.faults.delay` -- the Pre-Prepare delay attack (Fig. 7) and
  δ-bounded malicious delays by internal tree nodes (Fig. 11);
* :mod:`repro.faults.false_suspicion` -- the targeted false-suspicion
  attack against OptiTree's internal nodes (Fig. 10);
* :mod:`repro.faults.crash` -- crash faults, e.g. the failing root of the
  reconfiguration experiment (Fig. 15).
"""

from repro.faults.crash import CrashSchedule
from repro.faults.delay import DelayAttack, DeltaDelayAttack
from repro.faults.false_suspicion import TargetedSuspicionAttack

__all__ = [
    "CrashSchedule",
    "DelayAttack",
    "DeltaDelayAttack",
    "TargetedSuspicionAttack",
]
