"""Byzantine and benign-fault behaviours used across the evaluation.

* :mod:`repro.faults.delay` -- the Pre-Prepare delay attack (Fig. 7),
  δ-bounded malicious delays by internal tree nodes (Fig. 11), and the
  adaptive stay-below-``δ·d_m`` stealth adversary;
* :mod:`repro.faults.loss` -- probabilistic message loss on selected
  links, drawing from a dedicated ``derive_rng`` stream;
* :mod:`repro.faults.false_suspicion` -- the targeted false-suspicion
  attack against OptiTree's internal nodes (Fig. 10);
* :mod:`repro.faults.crash` -- one-shot crash faults, e.g. the failing
  root of the reconfiguration experiment (Fig. 15);
* :mod:`repro.faults.churn` -- crash -> recover cycles with catch-up-safe
  revival;
* :mod:`repro.faults.window` -- the shared ``start``/``end`` activation
  window every interceptor-based adversary uses;
* :mod:`repro.faults.genome` -- the searchable strategy space over all
  of the above: budgeted :class:`~repro.faults.genome.AttackGenome`
  strategies compiled deterministically into ``FaultSpec`` schedules
  for the adversary-synthesis search.

Network partitions are a property of the fabric, not of one adversary,
so they live on :class:`repro.sim.network.Network` directly
(``partition(groups)`` / ``heal()``).  The scenario-level vocabulary that
composes all of these is :class:`repro.experiments.runner.FaultSpec`.
"""

from repro.faults.churn import ChurnSchedule
from repro.faults.crash import CrashSchedule
from repro.faults.delay import DelayAttack, DeltaDelayAttack, StealthDelayAttack
from repro.faults.false_suspicion import TargetedSuspicionAttack
from repro.faults.genome import (
    AdversaryBudget,
    ArenaProfile,
    AttackGenome,
    AttackMove,
    GenomeError,
    compile_genome,
    genome_from_dict,
    genome_to_dict,
    mutate,
    seed_genome,
)
from repro.faults.loss import MessageLoss
from repro.faults.window import ActivationWindow

__all__ = [
    "ActivationWindow",
    "AdversaryBudget",
    "ArenaProfile",
    "AttackGenome",
    "AttackMove",
    "ChurnSchedule",
    "CrashSchedule",
    "DelayAttack",
    "DeltaDelayAttack",
    "GenomeError",
    "MessageLoss",
    "StealthDelayAttack",
    "TargetedSuspicionAttack",
    "compile_genome",
    "genome_from_dict",
    "genome_to_dict",
    "mutate",
    "seed_genome",
]
