"""Node churn: crash -> recover cycles (§4.2.3's crash suspicions, plus
the recovering executions the role-assignment evaluation needs).

:class:`ChurnSchedule` extends :class:`repro.faults.crash.CrashSchedule`
from one-shot crashes to cycles: every ``period`` seconds a victim from a
pool goes down for ``downtime`` seconds and then comes back.  Revival is
*catch-up safe*: an ``on_revive`` hook runs right after the node rejoins
the network, so the host can fast-forward the replica's state (committed
height, sequence numbers) before traffic reaches it -- a replica reviving
into a pipelined protocol with stale state would otherwise poison the run
with phantom conflicts no real recovery procedure produces.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Sequence

from repro.faults.crash import CrashSchedule
from repro.sim.engine import Simulator
from repro.sim.network import Network


class ChurnSchedule(CrashSchedule):
    """Crash/recover cycles over a victim pool.

    Victims are taken round-robin from ``pool`` unless an ``rng`` (from
    ``sim.derive_rng``) is supplied, in which case each cycle picks a
    uniformly random pool member.  A victim that is still down when its
    next turn comes around is skipped, so overlapping cycles cannot
    double-crash a node.  Crash/revival bookkeeping (``crashes``,
    ``revivals``, the live :attr:`crashed` set) is inherited from
    :class:`CrashSchedule`.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        on_revive: Optional[Callable[[int], None]] = None,
    ):
        super().__init__(sim, network)
        self.on_revive = on_revive
        self._cursor = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def cycle(
        self,
        pool: Sequence[int],
        period: float,
        downtime: float,
        start: float = 0.0,
        end: float = math.inf,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Crash one pool member every ``period`` s for ``downtime`` s.

        The first crash fires at ``start + period``; cycles whose crash
        time would fall after ``end`` are not scheduled.  Overlapping
        cycles (``downtime > period``) are legal.
        """
        pool = list(pool)
        if not pool:
            raise ValueError("churn needs a non-empty victim pool")
        if period <= 0 or downtime <= 0:
            raise ValueError("churn period and downtime must be positive")
        driver = _CycleDriver(self, pool, period, downtime, end, rng)
        first = max(start, self.sim.now) + period
        if first <= end:
            self.sim.schedule_at(first, driver)

    def _pick(self, pool: Sequence[int], rng: Optional[random.Random]) -> Optional[int]:
        """Next victim that is currently up, or None if the pool is down."""
        up = [victim for victim in pool if not self.network.is_down(victim)]
        if not up:
            return None
        if rng is not None:
            return rng.choice(up)
        victim = up[self._cursor % len(up)]
        self._cursor += 1
        return victim

    # ------------------------------------------------------------------
    # Immediate actions
    # ------------------------------------------------------------------
    def crash(self, victim: int) -> None:
        self._crash(victim)

    def revive(self, victim: int) -> None:
        self._revive(victim)
        if self.on_revive is not None:
            self.on_revive(victim)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def down(self) -> List[int]:
        """Victims currently crashed, in crash order (alias of
        :attr:`CrashSchedule.crashed` in churn vocabulary)."""
        return self.crashed

    @property
    def cycles_completed(self) -> int:
        return len(self.revivals)


class _CycleDriver:
    """One churn cycle's repeating event.  A class, not a closure: churn
    events live in the checkpointed simulator heap and must pickle."""

    __slots__ = ("schedule", "pool", "period", "downtime", "end", "rng")

    def __init__(
        self,
        schedule: ChurnSchedule,
        pool: List[int],
        period: float,
        downtime: float,
        end: float,
        rng: Optional[random.Random],
    ):
        self.schedule = schedule
        self.pool = pool
        self.period = period
        self.downtime = downtime
        self.end = end
        self.rng = rng

    def __call__(self) -> None:
        schedule = self.schedule
        victim = schedule._pick(self.pool, self.rng)
        if victim is not None:
            schedule.crash(victim)
            schedule.sim.schedule(self.downtime, schedule.revive, victim)
        if schedule.sim.now + self.period <= self.end:
            schedule.sim.schedule(self.period, self)
