"""Probabilistic message loss (lossy-WAN scenarios).

A :class:`MessageLoss` interceptor drops each matching message with a
fixed probability.  The random stream MUST come from
:meth:`repro.sim.engine.Simulator.derive_rng` so seeded runs stay
bit-identical: the generator is private to the interceptor, and deriving
it only when loss is configured leaves the no-fault random streams
untouched.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Iterable, Optional, Tuple

from repro.faults.window import ActivationWindow


class MessageLoss:
    """Drop each matching message with probability ``rate``.

    Parameters
    ----------
    rate:
        Per-message drop probability in ``[0, 1]``.
    rng:
        A dedicated generator, e.g. ``sim.derive_rng("fault:loss")``.
        Required -- sharing a global stream would make enabling loss
        perturb every other random draw in the run.
    senders:
        Restrict loss to messages *from* these node ids (``None`` = every
        link, including client traffic).
    message_types:
        Restrict loss to these message type names (``None`` = all types).
    start, end, now_fn:
        Activation window; a non-trivial window requires ``now_fn``.

    A random draw is consumed for every message that matches the filters
    while the window is active -- never otherwise -- so the stream of
    draws is a deterministic function of the traffic.
    """

    def __init__(
        self,
        rate: float,
        rng: random.Random,
        senders: Optional[Iterable[int]] = None,
        message_types: Optional[Iterable[str]] = None,
        start: float = 0.0,
        end: float = math.inf,
        now_fn: Optional[Callable[[], float]] = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.rng = rng
        self.senders = set(senders) if senders is not None else None
        self.message_types = set(message_types) if message_types is not None else None
        self.window = ActivationWindow(start, end, now_fn)
        self.messages_lost = 0
        self.messages_seen = 0

    def __call__(self, src: int, dst: int, message, delay: float) -> Optional[Tuple]:
        if src == dst:
            # Self-delivery never crosses a link; losing it would model a
            # node corrupting its own memory, not a lossy network.
            return message, delay
        if not self.window.active():
            return message, delay
        if self.senders is not None and src not in self.senders:
            return message, delay
        if (
            self.message_types is not None
            and type(message).__name__ not in self.message_types
        ):
            return message, delay
        self.messages_seen += 1
        if self.rng.random() < self.rate:
            self.messages_lost += 1
            return None
        return message, delay
