"""The adversary-synthesis strategy space: genomes, budgets, compiler.

The five hand-authored scenarios in ``experiments/scenarios.py`` are
single points in a huge coordinated-attack space.  This module makes
that space *searchable*: an :class:`AttackGenome` is a small, immutable,
picklable description of a coordinated strategy -- which replicas the
adversary controls and what timed moves they make -- that
:func:`compile_genome` lowers deterministically into the runner's
``FaultSpec`` vocabulary, under an explicit :class:`AdversaryBudget`.

Design rules (all load-bearing for the search):

* **Quantized genotype.**  Times and intensities live on an integer grid
  (``GRID`` steps per run), not raw floats: mutations are grid hops, two
  genomes are equal iff their tuples are equal (hashable -> evaluation
  cache), and JSON round-trips are exact.  The phenotype scales with the
  arena duration, like the hand-authored scenarios.
* **Budget as hard constraint, not penalty.**  ``compile_genome`` raises
  :class:`GenomeError` for any strategy outside the budget (too many
  victims, stealth above the δ-bound, loss above the cap...).  The
  search scores such genomes ``inf`` -- the annealer's infeasible-state
  convention -- so the frontier axis (budget) is exact, never traded
  against the objective.
* **Attributable faults only.**  Every compiled fault is something the
  *victim replicas* could actually do: loss drops only victim-sent
  traffic, partitions cut the victim set off, smears come from the
  victim pool.  Cluster-wide acts of God (e.g. lossy-wan's all-links
  loss) stay hand-authored reference points outside the genome space.
* **Determinism.**  Compilation is a pure function of
  ``(genome, budget, arena)``; mutation draws only from the caller's
  RNG.  Together with the seeded scenario runner this makes a whole
  attack search replayable bit-for-bit.

The compiler needs only the spec vocabulary (``FaultSpec`` and the
composition validator), imported lazily to keep ``repro.faults`` free of
a circular import with the runner.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Genotype resolution: windows/levels are integers on ``[0, GRID]``.
GRID = 32

#: Every move kind the genome can express, each lowering to one
#: ``FaultSpec``.  ``stealth`` is the δ-bounded adaptive delay (the
#: Fig. 11 adversary), ``smear`` the Fig. 10 false-suspicion campaign.
MOVE_KINDS = ("stealth", "delay", "crash", "churn", "partition", "loss", "smear")


class GenomeError(ValueError):
    """A genome outside its budget or arena; the search scores it inf."""


@dataclass(frozen=True)
class AdversaryBudget:
    """What the adversary is allowed, independent of what it chooses.

    ``max_faulty``     -- replicas under adversary control (the f of the
                          robustness frontier's x-axis).
    ``delta``          -- δ-bound for stealth delays: links may stretch
                          up to ``delta * d_m`` (the suspicion budget).
    ``max_loss_rate``  -- cap on victim-sent message drop probability.
    ``max_extra_delay``-- cap on fixed per-message extra delay (seconds).
    ``max_moves``      -- schedule complexity cap.
    """

    max_faulty: int = 3
    delta: float = 1.25
    max_loss_rate: float = 0.05
    max_extra_delay: float = 0.5
    max_moves: int = 4

    def __post_init__(self) -> None:
        if self.max_faulty < 1:
            raise ValueError(f"budget max_faulty must be >= 1, got {self.max_faulty}")
        if self.delta < 1.0:
            raise ValueError(
                f"budget delta must be >= 1 (no stretch), got {self.delta}"
            )
        if not 0.0 <= self.max_loss_rate <= 1.0:
            raise ValueError(
                f"budget max_loss_rate must be in [0, 1], got {self.max_loss_rate}"
            )
        if self.max_extra_delay < 0:
            raise ValueError(
                f"budget max_extra_delay must be >= 0, got {self.max_extra_delay}"
            )
        if self.max_moves < 1:
            raise ValueError(f"budget max_moves must be >= 1, got {self.max_moves}")


@dataclass(frozen=True)
class ArenaProfile:
    """The compile-relevant shape of the battlefield.

    Carried by the evaluation arena (``experiments/attack.py``) and by
    tests; deliberately tiny and picklable so it rides to pool workers.
    ``family`` picks protocol-appropriate message types for targeted
    delays; ``has_optilog`` gates the smear move (false suspicions need
    the OptiAware monitoring pipeline to land on).
    """

    n: int
    family: str  # "pbft" | "hotstuff" | "kauri"
    duration: float
    has_optilog: bool = False

    def __post_init__(self) -> None:
        if self.family not in ("pbft", "hotstuff", "kauri"):
            raise ValueError(f"unknown protocol family {self.family!r}")
        if self.n < 2 or self.duration <= 0:
            raise ValueError(
                f"arena needs n >= 2 and positive duration, got "
                f"n={self.n}, duration={self.duration}"
            )


#: The message type a targeted fixed delay hits per family: the leader's
#: proposal dissemination, where one slow link stalls the whole round.
_DELAY_TARGETS = {
    "pbft": ("PrePrepare",),
    "hotstuff": ("Proposal",),
    "kauri": ("Forward",),
}


@dataclass(frozen=True)
class AttackMove:
    """One timed move: ``kind`` active on grid window ``[start, end]``.

    ``victim`` indexes into the genome's victim tuple (modulo its
    length) for single-victim kinds; ``level`` scales the kind's
    intensity knob to its budget cap; ``aux`` is the kind's secondary
    knob (churn duty cycle, smear rounds).  All integers, all bounded,
    so every mutation stays in a finite well-defined space.
    """

    kind: str
    start: int = 0
    end: int = GRID
    victim: int = 0
    level: int = GRID
    aux: int = 0

    def __post_init__(self) -> None:
        if self.kind not in MOVE_KINDS:
            raise ValueError(
                f"unknown move kind {self.kind!r} (known: {', '.join(MOVE_KINDS)})"
            )
        if not 0 <= self.start < self.end <= GRID:
            raise ValueError(
                f"move window [{self.start}, {self.end}] must satisfy "
                f"0 <= start < end <= {GRID}"
            )
        if not 1 <= self.level <= GRID:
            raise ValueError(f"move level must be in [1, {GRID}], got {self.level}")
        if not 0 <= self.aux <= GRID:
            raise ValueError(f"move aux must be in [0, {GRID}], got {self.aux}")
        if self.victim < 0:
            raise ValueError(f"move victim index must be >= 0, got {self.victim}")


@dataclass(frozen=True)
class AttackGenome:
    """A coordinated strategy: who the adversary controls, what they do."""

    victims: Tuple[int, ...]
    moves: Tuple[AttackMove, ...] = field(default_factory=tuple)

    def canonical(self) -> "AttackGenome":
        """Sorted victims and moves: equal strategies compare equal."""
        return AttackGenome(
            victims=tuple(sorted(self.victims)),
            moves=tuple(sorted(self.moves, key=_move_key)),
        )


def _move_key(move: AttackMove) -> Tuple:
    return (move.kind, move.start, move.end, move.victim, move.level, move.aux)


def _times(move: AttackMove, duration: float) -> Tuple[float, float]:
    return duration * move.start / GRID, duration * move.end / GRID


def compile_genome(
    genome: AttackGenome, budget: AdversaryBudget, arena: ArenaProfile
) -> List[Any]:
    """Lower a genome to a validated ``FaultSpec`` list.

    Pure and deterministic; raises :class:`GenomeError` when the genome
    exceeds its budget or does not fit the arena, and ``ValueError``
    (from the spec/composition validators) when the lowered schedule is
    internally inconsistent -- the search maps both to an ``inf`` score.
    """
    from repro.experiments.runner import FaultSpec, validate_fault_composition

    victims = genome.victims
    if not victims:
        raise GenomeError("genome has no victims")
    if len(set(victims)) != len(victims):
        raise GenomeError(f"duplicate victims in {victims}")
    if any(not 0 <= v < arena.n for v in victims):
        raise GenomeError(f"victims {victims} outside arena of n={arena.n}")
    if 0 in victims:
        # Replica 0 is the runner's measurement observer; an adversary
        # that crashes the probe would score phantom degradation.
        raise GenomeError("replica 0 is the measurement observer and assumed correct")
    if len(victims) > budget.max_faulty:
        raise GenomeError(
            f"{len(victims)} victims exceed budget max_faulty={budget.max_faulty}"
        )
    if len(victims) >= arena.n:
        raise GenomeError(f"cannot control all {arena.n} replicas")
    if len(genome.moves) > budget.max_moves:
        raise GenomeError(
            f"{len(genome.moves)} moves exceed budget max_moves={budget.max_moves}"
        )
    kinds = [move.kind for move in genome.moves]
    if kinds.count("partition") > 1:
        raise GenomeError("at most one partition move per genome")
    if kinds.count("churn") > 1:
        raise GenomeError("at most one churn move per genome")
    if "churn" in kinds and "crash" in kinds:
        raise GenomeError(
            "churn and crash moves are mutually exclusive (a churn cycle "
            "could crash an already-crashed victim, making the schedule "
            "that ran differ from the schedule that was written)"
        )
    if "smear" in kinds and not arena.has_optilog:
        raise GenomeError(
            "smear move needs an OptiAware arena (false suspicions land "
            "on the monitoring pipeline)"
        )

    duration = arena.duration
    specs: List[Any] = []
    for move in genome.moves:
        start, end = _times(move, duration)
        fraction = move.level / GRID
        victim = victims[move.victim % len(victims)]
        if move.kind == "stealth":
            # Adaptive δ-bounded delay on everything the victims send;
            # level sets how close to the δ·d_m ceiling they fly.
            specs.append(
                FaultSpec(
                    kind="delta_delay",
                    start=start,
                    end=end,
                    attacker=tuple(victims),
                    params={
                        "delta": budget.delta,
                        "adaptive": True,
                        "headroom": round(0.5 + 0.45 * fraction, 6),
                    },
                )
            )
        elif move.kind == "delay":
            specs.append(
                FaultSpec(
                    kind="delay",
                    start=start,
                    end=end,
                    attacker=victim,
                    extra_delay=round(budget.max_extra_delay * fraction, 6),
                    message_types=_DELAY_TARGETS[arena.family],
                )
            )
        elif move.kind == "crash":
            specs.append(
                FaultSpec(kind="crash", start=start, end=end, attacker=victim)
            )
        elif move.kind == "churn":
            # Level is monotone in aggression for every kind: a higher
            # level means a *shorter* cycle here, not a longer one.
            period = duration * max(1, GRID + 1 - move.level) / GRID
            if end - start < period:
                raise GenomeError(
                    f"churn window [{start}, {end}] shorter than one "
                    f"period ({period}); the cycle would never fire"
                )
            specs.append(
                FaultSpec(
                    kind="churn",
                    start=start,
                    end=end,
                    params={
                        "period": period,
                        "downtime": period * (0.25 + 0.5 * move.aux / GRID),
                        "victims": tuple(victims),
                        "random": False,
                    },
                )
            )
        elif move.kind == "partition":
            rest = tuple(r for r in range(arena.n) if r not in victims)
            specs.append(
                FaultSpec(
                    kind="partition",
                    start=start,
                    end=end,
                    params={"groups": (tuple(victims), rest)},
                )
            )
        elif move.kind == "loss":
            specs.append(
                FaultSpec(
                    kind="loss",
                    start=start,
                    end=end,
                    params={
                        "rate": round(budget.max_loss_rate * fraction, 6),
                        "senders": tuple(victims),
                    },
                )
            )
        elif move.kind == "smear":
            specs.append(
                FaultSpec(
                    kind="false_suspicion",
                    start=start,
                    end=end,
                    attacker=tuple(victims),
                    params={
                        "target": "leader",
                        # Same monotone rule: level up = volleys closer
                        # together, aux up = more suspicions per volley.
                        "period": duration * max(1, GRID + 1 - move.level) / (2 * GRID),
                        "rounds": 1 + (7 * move.aux) // GRID,
                    },
                )
            )
    validate_fault_composition(specs)
    return specs


def allowed_kinds(arena: ArenaProfile) -> Tuple[str, ...]:
    """The move kinds a given arena can express (smear needs OptiAware)."""
    if arena.has_optilog:
        return MOVE_KINDS
    return tuple(kind for kind in MOVE_KINDS if kind != "smear")


#: Seed rotation for multi-restart searches: chain ``i`` starts from a
#: whole-run move of ``_SEED_KINDS[i % len]`` (filtered per arena), so
#: restarts explore genuinely different basins instead of re-annealing
#: the same stealth opening.  Order is part of the determinism contract.
_SEED_KINDS = ("stealth", "partition", "crash", "loss", "delay", "churn", "smear")


def seed_genome(
    budget: AdversaryBudget,
    arena: ArenaProfile,
    variant: int = 0,
    prefer: Optional[str] = None,
) -> AttackGenome:
    """A deterministic, always-valid starting strategy.

    The highest-id replicas (the hand-authored scenarios' convention)
    make one whole-run move; ``variant`` rotates through
    :data:`_SEED_KINDS` so independent restart chains start in
    different attack families.  ``prefer`` hoists one kind to the front
    of the rotation (the search puts ``smear`` first for the suspicion
    objective, where every other opening scores zero).  Every variant
    compiles under any legal budget and scores finite (the evaluator's
    censoring keeps even a liveness-killing opening finite).
    """
    k = min(budget.max_faulty, arena.n - 1)
    victims = tuple(range(arena.n - k, arena.n))
    kinds = [kind for kind in _SEED_KINDS if kind in allowed_kinds(arena)]
    if prefer in kinds:
        kinds.remove(prefer)
        kinds.insert(0, prefer)
    kind = kinds[variant % len(kinds)]
    # aux at the ceiling: max volleys for smear, max downtime for churn,
    # inert elsewhere -- the opening move is the kind at full aggression.
    return AttackGenome(
        victims=victims, moves=(AttackMove(kind=kind, aux=GRID),)
    ).canonical()


#: Mutation operator vocabulary, fixed order (part of the determinism
#: contract: a search replays bit-for-bit given the same seed).
_MUTATION_OPS = ("tweak", "window", "add", "drop", "retarget", "rekind", "victims")


def mutate(
    genome: AttackGenome,
    rng: random.Random,
    budget: AdversaryBudget,
    arena: ArenaProfile,
) -> AttackGenome:
    """One random edit, drawn entirely from ``rng``.

    Edits stay inside the grid but may leave the budget (e.g. growing
    past ``max_moves`` is prevented here, but a crash window sliding
    into a partition is not) -- the compiler is the single source of
    truth for validity, and the search scores invalid offspring ``inf``.
    """
    op = rng.choice(_MUTATION_OPS)
    moves = list(genome.moves)
    victims = genome.victims
    kinds = allowed_kinds(arena)

    if op == "add" and len(moves) < budget.max_moves:
        moves.append(_random_move(rng, kinds))
    elif op == "drop" and len(moves) > 1:
        moves.pop(rng.randrange(len(moves)))
    elif op == "victims":
        victims = _mutate_victims(victims, rng, budget, arena)
    elif moves:
        index = rng.randrange(len(moves))
        move = moves[index]
        if op == "tweak":
            step = rng.choice((-4, -2, -1, 1, 2, 4))
            if rng.random() < 0.5:
                move = dataclasses.replace(
                    move, level=max(1, min(GRID, move.level + step))
                )
            else:
                move = dataclasses.replace(
                    move, aux=max(0, min(GRID, move.aux + step))
                )
        elif op == "window":
            step = rng.choice((-4, -2, -1, 1, 2, 4))
            if rng.random() < 0.5:
                start = max(0, min(move.end - 1, move.start + step))
                move = dataclasses.replace(move, start=start)
            else:
                end = max(move.start + 1, min(GRID, move.end + step))
                move = dataclasses.replace(move, end=end)
        elif op == "retarget":
            move = dataclasses.replace(
                move, victim=rng.randrange(max(1, len(victims)))
            )
        elif op == "rekind":
            move = dataclasses.replace(move, kind=rng.choice(kinds))
        moves[index] = move

    return AttackGenome(victims=victims, moves=tuple(moves)).canonical()


def _random_move(rng: random.Random, kinds: Tuple[str, ...]) -> AttackMove:
    start = rng.randrange(0, GRID)
    return AttackMove(
        kind=rng.choice(kinds),
        start=start,
        end=rng.randrange(start + 1, GRID + 1),
        victim=rng.randrange(4),
        level=rng.randrange(1, GRID + 1),
        aux=rng.randrange(0, GRID + 1),
    )


def _mutate_victims(
    victims: Tuple[int, ...],
    rng: random.Random,
    budget: AdversaryBudget,
    arena: ArenaProfile,
) -> Tuple[int, ...]:
    """Swap, grow, or shrink the victim set within [1, max_faulty].

    Replica 0 (the measurement observer) is never recruited.
    """
    pool = sorted(set(range(1, arena.n)) - set(victims))
    choice = rng.random()
    current = list(victims)
    if choice < 0.5 and pool:  # swap one victim for an outsider
        current[rng.randrange(len(current))] = rng.choice(pool)
    elif choice < 0.75 and pool and len(current) < min(
        budget.max_faulty, arena.n - 1
    ):
        current.append(rng.choice(pool))
    elif len(current) > 1:
        current.pop(rng.randrange(len(current)))
    return tuple(sorted(set(current)))


# ---------------------------------------------------------------------------
# JSON round-trip (reports, frontier artifacts, resuming a search)
# ---------------------------------------------------------------------------


def genome_to_dict(genome: AttackGenome) -> Dict[str, Any]:
    return {
        "victims": list(genome.victims),
        "moves": [dataclasses.asdict(move) for move in genome.moves],
    }


def genome_from_dict(payload: Dict[str, Any]) -> AttackGenome:
    return AttackGenome(
        victims=tuple(int(v) for v in payload["victims"]),
        moves=tuple(AttackMove(**move) for move in payload["moves"]),
    ).canonical()
