"""Targeted false-suspicion attack (§7.5, Fig. 10).

Faulty replicas pre-compute the optimal tree from the recorded latencies
and then raise suspicions against its *correct internal nodes*: each
suspicion is reciprocated (condition (c)), so both the faulty reporter
and its correct target end up excluded from the candidate set.  Repeated
``f`` times, the attack degrades the best achievable tree.

The attack operates at the log level (it fabricates SuspicionRecords),
which is exactly the power a Byzantine replica has: it may log any
measurement it likes; it cannot forge records from others.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set

from repro.core.log import AppendOnlyLog
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.tree.topology import TreeConfiguration


class TargetedSuspicionAttack:
    """Drives one false suspicion per reconfiguration round.

    Parameters
    ----------
    faulty_pool:
        Replicas the adversary controls; each attack round consumes one
        (a faulty replica is itself excluded once its suspicion is
        reciprocated, so it cannot be reused).
    """

    def __init__(self, faulty_pool: List[int], rng: Optional[random.Random] = None):
        self.remaining = list(faulty_pool)
        self.rng = rng or random.Random(0)
        self.used: Set[int] = set()
        self.attacks_launched = 0

    def attack_round(
        self,
        log: AppendOnlyLog,
        tree: TreeConfiguration,
        round_id: int,
    ) -> Optional[SuspicionRecord]:
        """Suspect a random internal node of the current best tree.

        Picks a faulty replica that is still unexposed and logs its
        ⟨Slow⟩ suspicion against a correct internal node, followed by the
        target's ⟨False⟩ reciprocation (the target is correct, so it
        always reciprocates).  Returns the attack suspicion, or None when
        the adversary has no replicas left.
        """
        attackers = [
            replica
            for replica in self.remaining
            if replica not in tree.internal_nodes
        ]
        if not attackers:
            return None
        attacker = attackers[0]
        # Target a random internal node (paper: "randomly selecting an
        # internal node to raise suspicion against the root" -- both the
        # reporter and the target leave the candidate set).
        targets = sorted(set(tree.internal_nodes) - self.used)
        if not targets:
            return None
        target = self.rng.choice(targets)
        self.remaining.remove(attacker)
        self.used.update((attacker, target))
        self.attacks_launched += 1
        suspicion = SuspicionRecord(
            reporter=attacker,
            suspect=target,
            kind=SuspicionKind.SLOW,
            round_id=round_id,
            msg_type="aggregate",
            phase=4,
        )
        log.append(suspicion)
        log.append(
            SuspicionRecord(
                reporter=target,
                suspect=attacker,
                kind=SuspicionKind.FALSE,
                round_id=round_id,
                msg_type="reciprocation",
                phase=4,
            )
        )
        return suspicion
