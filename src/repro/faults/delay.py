"""Delay attacks (Fig. 7, Fig. 11).

Both attacks are installed as network interceptors (see
:class:`repro.sim.network.Network`), so protocol code is untouched: a
Byzantine replica's *outgoing* messages of selected types are delivered
late, exactly like a replica that processes them slowly on purpose.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple


class DelayAttack:
    """Fixed extra delay on selected message types from an attacker.

    The Pre-Prepare delay attack of §7.1 [7, 21]: a Byzantine leader
    delays its proposals to inflate client-observed latency while staying
    below the view-change timeout.  Active between ``start`` and ``end``
    (simulation seconds).
    """

    def __init__(
        self,
        attacker: int,
        message_types: Iterable[str],
        extra_delay: float,
        start: float = 0.0,
        end: float = float("inf"),
        now_fn=None,
    ):
        self.attacker = attacker
        self.message_types = set(message_types)
        self.extra_delay = extra_delay
        self.start = start
        self.end = end
        self._now = now_fn or (lambda: 0.0)
        self.messages_delayed = 0

    def active(self) -> bool:
        return self.start <= self._now() <= self.end

    def __call__(self, src: int, dst: int, message, delay: float) -> Optional[Tuple]:
        if src != self.attacker or not self.active():
            return message, delay
        if type(message).__name__ not in self.message_types:
            return message, delay
        self.messages_delayed += 1
        return message, delay + self.extra_delay


class DeltaDelayAttack:
    """δ-bounded delays by faulty internal tree nodes (§7.6).

    Faulty intermediates stretch their link delays by a factor ``delta``
    (e.g. 1.1, 1.2, 1.4): requests to leaf nodes and aggregates to the
    root arrive late, but within the suspicion threshold ``δ·d_m``, so no
    suspicion is ever raised -- the attack the paper uses to expose the
    δ trade-off.
    """

    def __init__(
        self,
        attackers: Iterable[int],
        delta: float,
        message_types: Iterable[str] = ("Forward", "AggregateVote"),
    ):
        self.attackers: Set[int] = set(attackers)
        self.delta = delta
        self.message_types = set(message_types)
        self.messages_delayed = 0

    def __call__(self, src: int, dst: int, message, delay: float) -> Optional[Tuple]:
        if src not in self.attackers:
            return message, delay
        if type(message).__name__ not in self.message_types:
            return message, delay
        self.messages_delayed += 1
        return message, delay * self.delta
