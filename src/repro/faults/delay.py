"""Delay attacks (Fig. 7, Fig. 11).

All attacks are installed as network interceptors (see
:class:`repro.sim.network.Network`), so protocol code is untouched: a
Byzantine replica's *outgoing* messages of selected types are delivered
late, exactly like a replica that processes them slowly on purpose.
Every attack is windowed through :class:`repro.faults.window.ActivationWindow`,
which refuses a non-trivial ``start``/``end`` window without a clock.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional, Set, Tuple

from repro.faults.window import ActivationWindow


class DelayAttack:
    """Fixed extra delay on selected message types from an attacker.

    The Pre-Prepare delay attack of §7.1 [7, 21]: a Byzantine leader
    delays its proposals to inflate client-observed latency while staying
    below the view-change timeout.  Active between ``start`` and ``end``
    (simulation seconds); a windowed attack requires ``now_fn`` (usually
    ``lambda: sim.now``) and raises ``ValueError`` without one.
    """

    def __init__(
        self,
        attacker: int,
        message_types: Iterable[str],
        extra_delay: float,
        start: float = 0.0,
        end: float = math.inf,
        now_fn: Optional[Callable[[], float]] = None,
    ):
        self.attacker = attacker
        self.message_types = set(message_types)
        self.extra_delay = extra_delay
        self.window = ActivationWindow(start, end, now_fn)
        self.messages_delayed = 0

    @property
    def start(self) -> float:
        return self.window.start

    @property
    def end(self) -> float:
        return self.window.end

    def active(self) -> bool:
        return self.window.active()

    def __call__(self, src: int, dst: int, message, delay: float) -> Optional[Tuple]:
        if src != self.attacker or not self.active():
            return message, delay
        if type(message).__name__ not in self.message_types:
            return message, delay
        self.messages_delayed += 1
        return message, delay + self.extra_delay


class DeltaDelayAttack:
    """δ-bounded delays by faulty internal tree nodes (§7.6).

    Faulty intermediates stretch their link delays by a factor ``delta``
    (e.g. 1.1, 1.2, 1.4): requests to leaf nodes and aggregates to the
    root arrive late, but within the suspicion threshold ``δ·d_m``, so no
    suspicion is ever raised -- the attack the paper uses to expose the
    δ trade-off.
    """

    def __init__(
        self,
        attackers: Iterable[int],
        delta: float,
        message_types: Iterable[str] = ("Forward", "AggregateVote"),
        start: float = 0.0,
        end: float = math.inf,
        now_fn: Optional[Callable[[], float]] = None,
    ):
        self.attackers: Set[int] = set(attackers)
        self.delta = delta
        self.message_types = set(message_types)
        self.window = ActivationWindow(start, end, now_fn)
        self.messages_delayed = 0

    def __call__(self, src: int, dst: int, message, delay: float) -> Optional[Tuple]:
        if src not in self.attackers or not self.window.active():
            return message, delay
        if type(message).__name__ not in self.message_types:
            return message, delay
        self.messages_delayed += 1
        return message, delay * self.delta


class StealthDelayAttack:
    """Adaptive stay-below-``δ·d_m`` delay adversary.

    Where :class:`DeltaDelayAttack` stretches whatever delay the link
    happened to draw, this adversary *adapts per message*: it knows the
    system's suspicion multiplier ``δ`` and the expected link delay
    ``d_m`` (the agreed latency matrix), and stretches each outgoing
    message to ``headroom · δ · d_m`` -- the worst delay that provably
    never crosses the suspicion deadline.  This is the strongest
    undetectable timing adversary the paper's threat model admits, and
    makes the δ trade-off (Fig. 11/§7.6) directly measurable.

    Parameters
    ----------
    expected_delay:
        ``(src, dst) -> seconds``: the delay the monitors *expect* on the
        link, i.e. ``d_m``.  Usually the network's base one-way delay.
    headroom:
        Safety fraction of the suspicion budget the attacker consumes
        (default 0.95; 1.0 would sit exactly on the deadline and lose to
        jitter).
    """

    def __init__(
        self,
        attackers: Iterable[int],
        delta: float,
        expected_delay: Callable[[int, int], float],
        headroom: float = 0.95,
        message_types: Optional[Iterable[str]] = None,
        start: float = 0.0,
        end: float = math.inf,
        now_fn: Optional[Callable[[], float]] = None,
    ):
        if not 0.0 < headroom <= 1.0:
            raise ValueError(f"headroom must be in (0, 1], got {headroom}")
        self.attackers: Set[int] = set(attackers)
        self.delta = delta
        self.expected_delay = expected_delay
        self.headroom = headroom
        self.message_types = set(message_types) if message_types is not None else None
        self.window = ActivationWindow(start, end, now_fn)
        self.messages_delayed = 0
        self.total_added = 0.0

    def __call__(self, src: int, dst: int, message, delay: float) -> Optional[Tuple]:
        if src not in self.attackers or not self.window.active():
            return message, delay
        if (
            self.message_types is not None
            and type(message).__name__ not in self.message_types
        ):
            return message, delay
        ceiling = self.headroom * self.delta * self.expected_delay(src, dst)
        if ceiling <= delay:
            return message, delay  # link already slower than the budget
        self.messages_delayed += 1
        self.total_added += ceiling - delay
        return message, ceiling
