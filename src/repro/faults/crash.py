"""Crash faults (Fig. 15's failing root, crash suspicions in §4.2.3)."""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.network import Network


class CrashSchedule:
    """Crashes (and optionally revives) replicas at scheduled times.

    Fig. 15 crashes the current tree root every 10 seconds; the schedule
    supports both fixed victims and a callable resolving "whoever holds
    the role right now" at crash time.
    """

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self.crashes: List[Tuple[float, int]] = []

    def crash_at(self, time: float, victim: int) -> None:
        self.sim.schedule_at(time, self._crash, victim)

    def crash_role_every(
        self,
        period: float,
        victim_fn: Callable[[], Optional[int]],
        start: float = 0.0,
        end: float = float("inf"),
    ) -> None:
        """Crash whatever replica ``victim_fn`` returns, every ``period``."""

        def fire() -> None:
            victim = victim_fn()
            if victim is not None:
                self._crash(victim)
            next_time = self.sim.now + period
            if next_time <= end:
                self.sim.schedule(period, fire)

        self.sim.schedule_at(max(start, self.sim.now) + period, fire)

    def revive_at(self, time: float, victim: int) -> None:
        self.sim.schedule_at(time, self.network.set_down, victim, False)

    def _crash(self, victim: int) -> None:
        self.network.set_down(victim)
        self.crashes.append((self.sim.now, victim))

    @property
    def crashed(self) -> List[int]:
        return [victim for _time, victim in self.crashes]
