"""Crash faults (Fig. 15's failing root, crash suspicions in §4.2.3)."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.network import Network


class CrashSchedule:
    """Crashes (and optionally revives) replicas at scheduled times.

    Fig. 15 crashes the current tree root every 10 seconds; the schedule
    supports both fixed victims and a callable resolving "whoever holds
    the role right now" at crash time.  Revivals are recorded alongside
    crashes, so :attr:`crashed` always reflects the *live* down set.
    """

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self.crashes: List[Tuple[float, int]] = []
        self.revivals: List[Tuple[float, int]] = []

    def crash_at(self, time: float, victim: int) -> None:
        self.sim.schedule_at(time, self._crash, victim)

    def crash_role_every(
        self,
        period: float,
        victim_fn: Callable[[], Optional[int]],
        start: float = 0.0,
        end: float = float("inf"),
    ) -> None:
        """Crash whatever replica ``victim_fn`` returns, every ``period``.

        No crash ever fires after ``end``: when ``start + period > end``
        the schedule is empty (it used to fire one stray crash past the
        window).
        """

        def fire() -> None:
            victim = victim_fn()
            if victim is not None:
                self._crash(victim)
            next_time = self.sim.now + period
            if next_time <= end:
                self.sim.schedule(period, fire)

        first = max(start, self.sim.now) + period
        if first <= end:
            self.sim.schedule_at(first, fire)

    def revive_at(self, time: float, victim: int) -> None:
        self.sim.schedule_at(time, self._revive, victim)

    def _crash(self, victim: int) -> None:
        self.network.set_down(victim)
        self.crashes.append((self.sim.now, victim))

    def _revive(self, victim: int) -> None:
        self.network.set_down(victim, False)
        self.revivals.append((self.sim.now, victim))

    @property
    def crashed(self) -> List[int]:
        """Victims currently down (crashed and not since revived), in
        crash order."""
        live: List[int] = []
        events = sorted(
            [(time, 0, victim) for time, victim in self.crashes]
            + [(time, 1, victim) for time, victim in self.revivals]
        )
        for _time, kind, victim in events:
            if kind == 0:
                if victim not in live:
                    live.append(victim)
            elif victim in live:
                live.remove(victim)
        return live
