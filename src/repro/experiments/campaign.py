"""Long-horizon measurement campaigns: sliced, checkpointed, shardable.

A *campaign* runs a scenario until a committed-request target is met
instead of a fixed duration, in slices of ``checkpoint_every`` simulated
seconds.  At every slice boundary the campaign

1. compacts the consensus replicas (:meth:`compact` drops per-sequence
   state the protocol can no longer read, keeping memory O(1) in run
   length), and
2. optionally writes a :mod:`repro.experiments.checkpoint` file, so a
   killed campaign resumes from the last boundary **bit-identically** to
   the uninterrupted run.

Campaigns default to the streaming measurement plane
(``MeasurementPolicy(metrics="sketch")``): latency lives in mergeable
log-scale histograms, not per-request lists, so a 2M-request campaign
holds the same metrics memory as a 100k one.

Sharding splits the request target across ``shards`` independent
sub-campaigns whose seeds derive from the root seed
(:func:`derive_sweep_seed`), optionally fanned out over the process pool
(``jobs``).  Results merge in shard order -- per-shard sketches fold via
``MetricsSketch.merge`` -- so the merged campaign summary is
byte-identical for any ``jobs``, including serial.
"""

from __future__ import annotations

import json
import os
import resource
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from repro.experiments.checkpoint import load_checkpoint, save_checkpoint
from repro.experiments.parallel import derive_sweep_seed, parallel_map
from repro.experiments.runner import (
    MeasurementPolicy,
    Scenario,
    prepare_scenario,
)
from repro.metrics import MetricsSketch


@dataclass
class CampaignSpec:
    """What to run and how to slice it."""

    scenario: Scenario
    #: Total committed requests to accumulate across all shards.
    requests: int = 1_000_000
    #: Simulated seconds per slice (compaction + checkpoint cadence).
    checkpoint_every: float = 30.0
    shards: int = 1
    #: Directory for per-shard checkpoint files; None disables
    #: checkpointing (slicing and compaction still happen).
    checkpoint_dir: Optional[str] = None
    #: Replica state kept behind the commit frontier at compaction.
    compact_keep: int = 128
    #: Hard slice-count backstop against a dried-up workload.
    max_slices: int = 1_000_000

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"request target must be positive, got {self.requests}")
        if self.checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {self.checkpoint_every}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")

    def shard_scenario(self, shard: int) -> Scenario:
        """The scenario one shard runs: derived seed, streaming metrics.

        An explicit ``measurements`` policy on the campaign scenario is
        honoured (``check`` mode is how the twin-measurement tests drive
        campaigns); without one, campaigns default to sketch metrics --
        exact mode would grow per-request state and defeat compaction.
        """
        measurements = self.scenario.measurements or MeasurementPolicy(
            metrics="sketch"
        )
        base_name = self.scenario.name or "campaign"
        return replace(
            self.scenario,
            seed=derive_sweep_seed(self.scenario.seed, f"campaign-shard-{shard}"),
            measurements=measurements,
            name=f"{base_name}/shard{shard}",
        )

    def shard_target(self, shard: int) -> int:
        """Per-shard request target; first shards absorb the remainder."""
        base, extra = divmod(self.requests, self.shards)
        return base + (1 if shard < extra else 0)

    def shard_checkpoint_path(self, shard: int) -> Optional[str]:
        if self.checkpoint_dir is None:
            return None
        return os.path.join(self.checkpoint_dir, f"shard-{shard}.ckpt")


def _live_metrics(cluster) -> Any:
    """The metrics object ``finish()`` will eventually return, readable
    mid-run (campaigns poll it at slice boundaries)."""
    if hasattr(cluster, "root_replica"):  # Kauri / OptiTree
        return cluster.root_replica.metrics
    if hasattr(cluster, "observer"):  # HotStuff
        return cluster.observer.metrics
    return cluster.replicas[0].metrics  # PBFT


def _peak_rss_kb() -> int:
    """Peak RSS of this process in KiB (Linux ``ru_maxrss`` unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def run_campaign_shard(point: Dict[str, Any]) -> Dict[str, Any]:
    """Worker: run one shard to its request target, return its summary.

    ``point`` is a plain dict (module-level function + picklable
    argument: the process-pool contract).  Keys: ``scenario``,
    ``target``, ``checkpoint_every``, ``compact_keep``, ``max_slices``,
    ``checkpoint_path`` (optional), ``shard``.
    """
    scenario: Scenario = point["scenario"]
    target: int = point["target"]
    checkpoint_every: float = point["checkpoint_every"]
    compact_keep: int = point["compact_keep"]
    max_slices: int = point["max_slices"]
    checkpoint_path: Optional[str] = point.get("checkpoint_path")

    resumed_from = None
    result = None
    if checkpoint_path and os.path.exists(checkpoint_path):
        result = load_checkpoint(checkpoint_path, expected_scenario=scenario)
        resumed_from = result.cluster.sim.now
    if result is None:
        result = prepare_scenario(scenario)
        result.cluster.begin()

    cluster = result.cluster
    sim = cluster.sim
    metrics = _live_metrics(cluster)
    slices = 0
    while metrics.total_requests() < target and slices < max_slices:
        if not sim._queue:
            break  # workload dried up: no event will ever commit more
        sim.run(until=sim.now + checkpoint_every)
        slices += 1
        cluster.compact(compact_keep)
        if checkpoint_path:
            save_checkpoint(
                checkpoint_path,
                result,
                extra={"shard": point.get("shard"), "target": target},
            )
    run_metrics = cluster.finish()
    result.run_metrics = run_metrics

    elapsed = sim.now
    summary: Dict[str, Any] = {
        "shard": point.get("shard", 0),
        "scenario": scenario.describe(),
        "requests_target": target,
        "committed_requests": run_metrics.total_requests(),
        "committed_blocks": run_metrics.committed_blocks(),
        "sim_seconds": elapsed,
        "slices_run": slices,
        "resumed_from": resumed_from,
        "events_processed": sim.events_processed,
        "throughput_rps": (
            run_metrics.total_requests() / elapsed if elapsed > 0 else 0.0
        ),
        "commit_latency": run_metrics.latency_summary(),
        "peak_rss_kb": _peak_rss_kb(),
    }
    if metrics.total_requests() < target:
        summary["underrun"] = True  # loud, not silent: target not reached
    # Mergeable sketch states ride along for the campaign-level fold.
    if getattr(run_metrics, "streaming", False):
        summary["commit_sketch"] = run_metrics.sketch.state_dict()
    workload = result.workload
    sketch = getattr(workload, "_stream_sketch", None) if workload else None
    if sketch is not None:
        summary["client_sketch"] = sketch.state_dict()
        summary["client"] = workload.summary()
    return summary


def _merge_sketches(states: List[Dict[str, Any]]) -> Optional[MetricsSketch]:
    """Fold shard sketch states in shard order (the order fixes the
    float-sum association, making merges independent of ``jobs``)."""
    merged: Optional[MetricsSketch] = None
    for state in states:
        sketch = MetricsSketch.from_state(state)
        if merged is None:
            merged = sketch
        else:
            merged.merge(sketch)
    return merged


def run_campaign(
    spec: CampaignSpec,
    jobs: Optional[int] = None,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run every shard (serial or pooled) and merge their results.

    The returned dict is byte-identical (as JSON) for any ``jobs`` value:
    shards are deterministic under their derived seeds and all folds run
    in shard order.
    """
    if spec.checkpoint_dir is not None:
        os.makedirs(spec.checkpoint_dir, exist_ok=True)
    points = [
        {
            "shard": shard,
            "scenario": spec.shard_scenario(shard),
            "target": spec.shard_target(shard),
            "checkpoint_every": spec.checkpoint_every,
            "compact_keep": spec.compact_keep,
            "max_slices": spec.max_slices,
            "checkpoint_path": spec.shard_checkpoint_path(shard),
        }
        for shard in range(spec.shards)
    ]
    shard_summaries = parallel_map(
        run_campaign_shard, points, jobs=jobs, progress=progress
    )

    total_requests = sum(s["committed_requests"] for s in shard_summaries)
    total_blocks = sum(s["committed_blocks"] for s in shard_summaries)
    total_seconds = sum(s["sim_seconds"] for s in shard_summaries)
    merged: Dict[str, Any] = {
        "requests_target": spec.requests,
        "committed_requests": total_requests,
        "committed_blocks": total_blocks,
        "sim_seconds": total_seconds,
        "throughput_rps": (
            total_requests / total_seconds if total_seconds > 0 else 0.0
        ),
    }
    commit_states = [
        s["commit_sketch"] for s in shard_summaries if "commit_sketch" in s
    ]
    commit_sketch = _merge_sketches(commit_states)
    if commit_sketch is not None:
        merged["commit_latency"] = commit_sketch.summary()
    client_states = [
        s["client_sketch"] for s in shard_summaries if "client_sketch" in s
    ]
    client_sketch = _merge_sketches(client_states)
    if client_sketch is not None:
        merged["client_latency"] = client_sketch.summary()

    # Sketch states served their purpose, and peak RSS depends on which
    # process ran the shard: both leave the deterministic sections so
    # ``merged`` and ``shards`` stay byte-identical for any ``jobs``.
    shard_rss = []
    for summary in shard_summaries:
        summary.pop("commit_sketch", None)
        summary.pop("client_sketch", None)
        shard_rss.append(summary.pop("peak_rss_kb"))
    return {
        "campaign": {
            "scenario": spec.scenario.describe(),
            "requests": spec.requests,
            "checkpoint_every": spec.checkpoint_every,
            "shards": spec.shards,
            "compact_keep": spec.compact_keep,
            "checkpoint_dir": spec.checkpoint_dir,
        },
        "merged": merged,
        "shards": shard_summaries,
        #: Environment-dependent (process-pool layout, allocator): the
        #: one section excluded from the jobs-independence contract.
        "host": {
            "peak_rss_kb": max(shard_rss),
            "shard_peak_rss_kb": shard_rss,
        },
    }


def campaign_to_json(report: Dict[str, Any], indent: Optional[int] = None) -> str:
    return json.dumps(report, sort_keys=True, indent=indent)
