"""Attack arenas and the adversary-synthesis objective.

An *arena* is the fixed battlefield a synthesized adversary fights on:
one protocol engine + deployment + workload (derived from the registered
hand-authored scenarios so synthesized attacks and the hand-written
reference points are compared on byte-identical ground), a tuple of
evaluation seeds, and per-seed fault-free baselines.  The objective
evaluates a compiled fault schedule by running the arena under each seed
and scoring either

* ``latency``   -- censored commit-latency degradation: the attacked
  run's mean commit latency over the *baseline's* block count, with
  every block the attack prevented counted at the full run duration.
  Ratio to the baseline mean, so 1.0 = harmless and a liveness kill is
  large but **finite** (the graceful-degradation requirement: a genome
  that stalls commits entirely must score, not hang or div-zero); or
* ``suspicion`` -- false-suspicion yield: how many *correct* replicas
  the attack evicted from the monitor's candidate set K (OptiAware
  arenas only; Fig. 10's smear campaign is the hand-authored reference).

Robustness rule: the reported degradation is the **minimum across the
seed tuple** (worst-of-k-seeds for the adversary), so the search cannot
overfit a single RNG stream -- an attack only scores what it achieves
on *every* seed.

Determinism rules: every run is seeded and sliced through the same
``begin / sim.run(until) / finish`` path; the evaluation timeout is an
**event budget** (a multiple of the worst baseline's processed-event
count), not wall clock, so a timed-out evaluation is just as replayable
as a completed one.  Everything here is a pure function of its
arguments; arenas and evaluations are picklable for the process pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.genome import (
    AdversaryBudget,
    ArenaProfile,
    AttackGenome,
    GenomeError,
    compile_genome,
    genome_to_dict,
)
from repro.experiments.runner import (
    FaultSpec,
    Scenario,
    _concrete_attacker_ids,
    prepare_scenario,
    resolve_deployment,
)
from repro.experiments.scenarios import ADVERSARIAL_SCENARIOS

#: Objectives the search can anneal against.
OBJECTIVES = ("latency", "suspicion")

#: arena name -> (base scenario registry name, reference scenario names,
#: default duration).  Durations are search-speed defaults; pass
#: ``duration=`` to :func:`make_arena` for full-length runs.  The bases
#: are the hand-authored scenarios with their faults stripped, so every
#: reference point re-runs on exactly the arena's ground.
ARENA_SOURCES: Dict[str, Tuple[str, Tuple[str, ...], float]] = {
    "pbft": ("partition-heal", ("partition-heal", "lossy-wan"), 8.0),
    "hotstuff": ("churn-storm", ("churn-storm",), 8.0),
    "kauri": ("stealth-delta", ("stealth-delta",), 8.0),
    "optiaware": ("smear-campaign", ("smear-campaign",), 18.0),
}

#: Commits landing in the final fraction of the run prove the system
#: was still live at the end (the recovery indicator per evaluation).
_RECOVERY_WINDOW = 0.9


def _family(protocol: str) -> str:
    if "kauri" in protocol:
        return "kauri"
    if "hotstuff" in protocol:
        return "hotstuff"
    return "pbft"


@dataclass
class AttackArena:
    """A battlefield plus its per-seed fault-free baselines."""

    name: str
    base: Scenario
    profile: ArenaProfile
    seeds: Tuple[int, ...]
    references: Tuple[str, ...]
    #: Event budget per evaluation run: ``factor * max(baseline events)``.
    #: A genome that processes this many events without finishing is a
    #: liveness kill; censoring already scores it, so cutting early only
    #: bounds search wall-clock, never changes a completed run's score.
    max_events_factor: int = 6
    baselines: Dict[int, Dict[str, float]] = field(default_factory=dict)
    max_events: Optional[int] = None


def make_arena(
    name: str,
    duration: Optional[float] = None,
    seeds: Sequence[int] = (0, 1),
) -> AttackArena:
    """Build an arena from the scenario registry (baselines not yet run)."""
    try:
        base_name, references, default_duration = ARENA_SOURCES[name]
    except KeyError:
        known = ", ".join(sorted(ARENA_SOURCES))
        raise ValueError(f"unknown arena {name!r} (known: {known})") from None
    factory, _ = ADVERSARIAL_SCENARIOS[base_name]
    base = replace(
        factory(0, duration if duration is not None else default_duration),
        faults=[],
        name=f"attack-arena-{name}",
    )
    profile = ArenaProfile(
        n=resolve_deployment(base.deployment, seed=0).n,
        family=_family(base.protocol),
        duration=base.duration,
        has_optilog="aware" in base.protocol,
    )
    return AttackArena(
        name=name,
        base=base,
        profile=profile,
        seeds=tuple(seeds),
        references=references,
    )


def _run_eval(
    scenario: Scenario, max_events: Optional[int], slices: int = 8
) -> Tuple[Any, Any, bool]:
    """Run a scenario under an event budget.

    Returns ``(run_metrics, cluster, timed_out)``.  The slice loop is
    the campaign plane's ``begin / sim.run(until) / finish`` pattern,
    which is bit-identical to ``cluster.run(duration)``; checking the
    processed-event counter only at slice boundaries keeps the check off
    the hot path while bounding a runaway genome at ``max_events`` plus
    one slice.
    """
    result = prepare_scenario(scenario)
    cluster = result.cluster
    cluster.begin()
    sim = cluster.sim
    duration = scenario.duration
    timed_out = False
    for step in range(1, slices + 1):
        sim.run(until=duration * step / slices)
        if max_events is not None and sim.events_processed > max_events:
            timed_out = True
            break
    return cluster.finish(), cluster, timed_out


def _seed_baseline(arena: AttackArena, seed: int) -> Dict[str, float]:
    scenario = replace(arena.base, seed=seed, faults=[])
    run_metrics, cluster, _ = _run_eval(scenario, max_events=None)
    commits = run_metrics.commits
    if not commits:
        raise ValueError(
            f"arena {arena.name!r} baseline committed nothing under seed "
            f"{seed}; degradation ratios would be meaningless"
        )
    return {
        "blocks": len(commits),
        "latency_sum": sum(event.latency for event in commits),
        "mean_latency": run_metrics.mean_latency(),
        "events": cluster.sim.events_processed,
        "suspicion_yield": _suspicion_yield(cluster, arena.profile.n, ()),
    }


def ensure_baselines(arena: AttackArena) -> AttackArena:
    """Fill per-seed baselines and the event budget, once, in place.

    Serial on purpose: baselines are a handful of runs cached for the
    whole search, and keeping them off the pool lets chain workers call
    this lazily after unpickling without nesting pools.
    """
    for seed in arena.seeds:
        if seed not in arena.baselines:
            arena.baselines[seed] = _seed_baseline(arena, seed)
    arena.max_events = arena.max_events_factor * max(
        int(stats["events"]) for stats in arena.baselines.values()
    )
    return arena


def _monitor_estimate(cluster, observer: int):
    replica = cluster.replicas[observer]
    optilog = getattr(replica, "optilog", None)
    if optilog is None:
        return None
    return optilog.pipeline.suspicion_monitor.estimate()


def _suspicion_yield(
    cluster, n: int, victims: Sequence[int]
) -> Optional[float]:
    """Correct replicas evicted from the candidate set K, observer's view.

    The observer is the lowest-id replica outside the victim set (the
    genome compiler guarantees replica 0 qualifies for synthesized
    attacks; hand-authored references may claim it).  The observer's own
    eviction counts: the canonical smear target is the leader -- replica
    0 itself -- and a correct monitor dropping a correct replica is the
    adversary's win regardless of whose id it is.  ``None`` when the
    arena has no monitoring pipeline.
    """
    observer = min(r for r in range(n) if r not in victims)
    estimate = _monitor_estimate(cluster, observer)
    if estimate is None:
        return None
    candidates, _ = estimate
    return float(
        sum(1 for r in range(n) if r not in victims and r not in candidates)
    )


def _seed_eval_worker(point: Dict[str, Any]) -> Dict[str, Any]:
    """Pool worker: score one (schedule, seed) pair on its arena.

    Module-level + plain-dict point: the process-pool contract.  The
    arena rides pickled with its baselines already filled.
    """
    arena: AttackArena = point["arena"]
    faults: Sequence[FaultSpec] = point["faults"]
    victims: Sequence[int] = point["victims"]
    objective: str = point["objective"]
    seed: int = point["seed"]
    duration = arena.base.duration
    base = arena.baselines[seed]
    scenario = replace(arena.base, seed=seed, faults=list(faults))
    run_metrics, cluster, timed_out = _run_eval(scenario, arena.max_events)
    commits = run_metrics.commits
    blocks = len(commits)
    base_blocks = int(base["blocks"])
    latency_sum = sum(event.latency for event in commits)
    # Censored mean: blocks the attack prevented are charged the
    # full run duration, so "no commits at all" scores finite.
    if blocks >= base_blocks:
        censored = latency_sum / blocks
    else:
        censored = (latency_sum + (base_blocks - blocks) * duration) / base_blocks
    latency_degradation = censored / base["mean_latency"]
    suspicion = _suspicion_yield(cluster, arena.profile.n, victims)
    entry: Dict[str, Any] = {
        "seed": seed,
        "latency_degradation": latency_degradation,
        "suspicion_yield": suspicion,
        "blocks": blocks,
        "baseline_blocks": base_blocks,
        "committed_ratio": blocks / base_blocks,
        "censored_latency": censored,
        "mean_latency": run_metrics.mean_latency() if commits else None,
        "recovered": bool(
            commits and commits[-1].commit_time >= _RECOVERY_WINDOW * duration
        ),
        "timed_out": timed_out,
        "events": cluster.sim.events_processed,
    }
    entry["degradation"] = (
        latency_degradation if objective == "latency" else suspicion
    )
    return entry


def evaluate_attack(
    arena: AttackArena,
    faults: Sequence[FaultSpec],
    victims: Sequence[int],
    objective: str,
    jobs: Optional[int] = None,
    label: str = "attack",
) -> Dict[str, Any]:
    """Score one compiled fault schedule across the arena's seed tuple.

    Returns the worst-of-seeds ``degradation`` plus per-seed
    liveness/recovery detail.  Pure and deterministic given the arena
    (with baselines), the schedule, and the objective; ``jobs`` shards
    the seed runs over the PR 4 process pool with per-seed entries
    collected in seed order, so any ``jobs`` value is byte-identical to
    the serial loop.
    """
    from repro.experiments.parallel import parallel_map

    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r} (known: {', '.join(OBJECTIVES)})"
        )
    if objective == "suspicion" and not arena.profile.has_optilog:
        raise ValueError(
            f"objective 'suspicion' needs an OptiAware arena, not {arena.name!r}"
        )
    ensure_baselines(arena)
    points = [
        {
            "arena": arena,
            "faults": list(faults),
            "victims": tuple(victims),
            "objective": objective,
            "seed": seed,
            "label": f"{label} / seed {seed}",
        }
        for seed in arena.seeds
    ]
    per_seed = parallel_map(
        _seed_eval_worker,
        points,
        jobs=jobs,
        label=lambda point: point["label"],
    )
    return {
        "objective": objective,
        # Worst-of-k-seeds for the *adversary*: it only gets credit for
        # damage achieved under every RNG stream.
        "degradation": min(entry["degradation"] for entry in per_seed),
        "per_seed": per_seed,
    }


def genome_label(genome: AttackGenome) -> str:
    """Compact human-readable identity for pool-error labels and logs."""
    moves = ",".join(
        f"{move.kind}[{move.start}:{move.end}]" for move in genome.moves
    )
    return f"genome victims={list(genome.victims)} moves={moves or 'none'}"


def evaluate_genome(
    arena: AttackArena,
    budget: AdversaryBudget,
    objective: str,
    genome: AttackGenome,
    jobs: Optional[int] = None,
) -> Dict[str, Any]:
    """Compile + evaluate one genome; invalid genomes score ``invalid``.

    The search maps ``invalid`` to an ``inf`` annealing score (the
    infeasible-state convention) instead of repairing the genome, so the
    mutation RNG stream never depends on validity.
    """
    try:
        faults = compile_genome(genome, budget, arena.profile)
    except (GenomeError, ValueError) as error:
        return {
            "objective": objective,
            "degradation": None,
            "invalid": str(error),
            "genome": genome_to_dict(genome),
        }
    evaluation = evaluate_attack(
        arena,
        faults,
        genome.victims,
        objective,
        jobs=jobs,
        label=genome_label(genome),
    )
    evaluation["genome"] = genome_to_dict(genome)
    return evaluation


# ---------------------------------------------------------------------------
# Hand-authored reference points
# ---------------------------------------------------------------------------


def _reference_victims(faults: Sequence[FaultSpec], n: int) -> Tuple[int, ...]:
    """Best-effort static victim set of a hand-authored schedule.

    Role-resolved attackers (``"leader"``, ``"intermediates"``) and
    whole-cluster faults contribute nothing -- those references measure
    latency objectives, where the victim set only labels the report.
    """
    out: set = set()
    for spec in faults:
        out.update(_concrete_attacker_ids(spec.attacker))
        if spec.kind == "partition":
            if "groups" in spec.params:
                groups = [tuple(g) for g in spec.params["groups"]]
                out.update(min(groups, key=len))
            elif isinstance(spec.params.get("isolate"), int):
                out.add(spec.params["isolate"])
        elif spec.kind == "loss":
            out.update(spec.params.get("senders") or ())
        elif spec.kind == "churn":
            churn_victims = spec.params.get("victims", "all")
            if isinstance(churn_victims, (tuple, list)):
                out.update(v for v in churn_victims if isinstance(v, int))
    return tuple(sorted(v for v in out if 0 <= v < n))


def reference_attacks(
    arena: AttackArena,
) -> List[Tuple[str, List[FaultSpec], Tuple[int, ...]]]:
    """The arena's hand-authored schedules, rebuilt at arena duration."""
    out = []
    for name in arena.references:
        factory, _ = ADVERSARIAL_SCENARIOS[name]
        faults = factory(0, arena.base.duration).faults
        out.append((name, faults, _reference_victims(faults, arena.profile.n)))
    return out


def evaluate_references(
    arena: AttackArena, objective: str
) -> List[Dict[str, Any]]:
    """Score every hand-authored reference on the arena's own objective."""
    out = []
    for name, faults, victims in reference_attacks(arena):
        evaluation = evaluate_attack(arena, faults, victims, objective)
        evaluation["name"] = name
        evaluation["victims"] = list(victims)
        out.append(evaluation)
    return out


def best_reference_degradation(
    references: Sequence[Dict[str, Any]]
) -> Optional[float]:
    """The strongest hand-authored attack's worst-of-seeds degradation."""
    scores = [ref["degradation"] for ref in references if ref["degradation"] is not None]
    if not scores:
        return None
    return max(scores)
