"""Parallel experiment sweeps: a process-pool executor for sweep points.

Fig. 7/8/12-style experiments are sweeps over independent points --
(protocol, n, seed, search-time) combinations whose runs share nothing
but code.  Each point is already deterministic under its own seed (the
repo-wide contract), so sharding points across a process pool changes
*nothing* about any single run; the executor only has to

* keep results in **submission order** (aggregation such as
  ``statistics.mean`` folds floats in point order, so ordered collection
  makes a ``--jobs N`` sweep byte-identical to the serial run), and
* never share RNG state across points: per-point seeds are either
  explicit (the sweep enumerates them) or derived with
  :func:`derive_sweep_seed`, the sweep-level analogue of
  ``Simulator.derive_rng`` -- a labelled substream of the root seed, so
  adding or re-ordering sweep points never perturbs other points' draws.

Workers are plain module-level functions (picklability is the only
requirement the pool adds); ``jobs <= 1`` bypasses the pool entirely and
runs the exact serial loop.
"""

from __future__ import annotations

import os
import random
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, TypeVar

Point = TypeVar("Point")
Result = TypeVar("Result")


def derive_sweep_seed(root_seed: int, label: str) -> int:
    """A per-point seed deterministically derived from the sweep's seed.

    Mirrors ``Simulator.derive_rng``: the label keeps substreams
    independent, so two points (or two sweeps over different labels)
    never consume each other's randomness.
    """
    return random.Random(f"{root_seed}:{label}").getrandbits(63)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/0/1 -> serial, -1 -> all cores."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def parallel_map(
    fn: Callable[[Point], Result],
    points: Iterable[Point],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Result]:
    """``[fn(p) for p in points]``, optionally sharded across processes.

    Results always come back in point order; a worker failure propagates
    the original exception.  ``fn`` and every point must be picklable
    when ``jobs > 1`` (module-level functions and plain dataclasses are).
    """
    points = list(points)
    workers = min(resolve_jobs(jobs), len(points))
    if workers <= 1:
        results: List[Result] = []
        for index, point in enumerate(points):
            if progress is not None:
                progress(f"point {index + 1}/{len(points)}")
            results.append(fn(point))
        return results
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, point) for point in points]
        results = []
        for index, future in enumerate(futures):
            results.append(future.result())
            if progress is not None:
                progress(f"point {index + 1}/{len(points)}")
    return results


def run_scenario_metrics(scenario) -> Dict[str, Any]:
    """Worker: execute one scenario, return its JSON-able metrics dict."""
    from repro.experiments.runner import run_scenario

    return run_scenario(scenario).metrics()


def run_scenarios(
    scenarios: Iterable[Any],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, Any]]:
    """Run many scenarios, serial or sharded, metrics in scenario order.

    Single-point runs (and every individual point of a parallel sweep)
    are byte-identical to ``run_scenario(scenario).metrics()``: the pool
    only distributes *whole* scenarios, never splits one.
    """
    return parallel_map(run_scenario_metrics, scenarios, jobs=jobs, progress=progress)
