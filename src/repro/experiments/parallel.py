"""Parallel experiment sweeps: a process-pool executor for sweep points.

Fig. 7/8/12-style experiments are sweeps over independent points --
(protocol, n, seed, search-time) combinations whose runs share nothing
but code.  Each point is already deterministic under its own seed (the
repo-wide contract), so sharding points across a process pool changes
*nothing* about any single run; the executor only has to

* keep results in **submission order** (aggregation such as
  ``statistics.mean`` folds floats in point order, so ordered collection
  makes a ``--jobs N`` sweep byte-identical to the serial run), and
* never share RNG state across points: per-point seeds are either
  explicit (the sweep enumerates them) or derived with
  :func:`derive_sweep_seed`, the sweep-level analogue of
  ``Simulator.derive_rng`` -- a labelled substream of the root seed, so
  adding or re-ordering sweep points never perturbs other points' draws.

Failure handling: the adversary-synthesis search pushes thousands of
evaluations through this executor, so a dying worker must not surface as
a bare pool traceback with no hint of *which* point killed it.  Every
failure is wrapped in :class:`ParallelWorkerError` carrying the point's
label, and a :class:`~concurrent.futures.process.BrokenProcessPool`
(worker process killed by the OS -- OOM, signal) is retried **once**
with a fresh pool before failing loudly; the retry re-runs only the
still-uncollected points, which are independent and deterministic, so a
successful retry is byte-identical to an undisturbed run.

Workers are plain module-level functions (picklability is the only
requirement the pool adds); ``jobs <= 1`` bypasses the pool entirely and
runs the exact serial loop.
"""

from __future__ import annotations

import os
import random
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Iterable, List, Optional, TypeVar

Point = TypeVar("Point")
Result = TypeVar("Result")


class ParallelWorkerError(RuntimeError):
    """A sweep worker failed; the message names the failing point.

    ``label`` identifies the point (e.g. ``"genome 12 / seed 3"``),
    ``retried`` records whether the failure survived the one
    BrokenProcessPool retry.  The original exception, when there is one,
    is chained as ``__cause__``.
    """

    def __init__(self, label: str, message: str, retried: bool = False):
        super().__init__(message)
        self.label = label
        self.retried = retried


def derive_sweep_seed(root_seed: int, label: str) -> int:
    """A per-point seed deterministically derived from the sweep's seed.

    Mirrors ``Simulator.derive_rng``: the label keeps substreams
    independent, so two points (or two sweeps over different labels)
    never consume each other's randomness.
    """
    return random.Random(f"{root_seed}:{label}").getrandbits(63)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/0/1 -> serial, -1 -> all cores."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def _point_label(
    label: Optional[Callable[[Point], str]], point: Point, index: int, total: int
) -> str:
    if label is not None:
        try:
            return str(label(point))
        except Exception:  # a broken labeller must not mask the real error
            pass
    return f"point {index + 1}/{total}"


def parallel_map(
    fn: Callable[[Point], Result],
    points: Iterable[Point],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    label: Optional[Callable[[Point], str]] = None,
) -> List[Result]:
    """``[fn(p) for p in points]``, optionally sharded across processes.

    Results always come back in point order; ``fn`` and every point must
    be picklable when ``jobs > 1`` (module-level functions and plain
    dataclasses are).  A worker raising is reported as
    :class:`ParallelWorkerError` naming the failing point (via ``label``,
    a ``point -> str`` callable, or its position); a worker *dying*
    (BrokenProcessPool) is retried once on a fresh pool before failing.
    """
    points = list(points)
    total = len(points)
    workers = min(resolve_jobs(jobs), total)
    if workers <= 1:
        results: List[Result] = []
        for index, point in enumerate(points):
            if progress is not None:
                progress(f"point {index + 1}/{total}")
            try:
                results.append(fn(point))
            except Exception as error:
                where = _point_label(label, point, index, total)
                raise ParallelWorkerError(
                    where, f"worker failed on {where}: {error!r}"
                ) from error
        return results

    results_by_index: Dict[int, Result] = {}
    pool_breaks = 0
    while len(results_by_index) < total:
        pending = [i for i in range(total) if i not in results_by_index]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {i: pool.submit(fn, points[i]) for i in pending}
                for index in pending:
                    try:
                        results_by_index[index] = futures[index].result()
                    except BrokenProcessPool:
                        raise  # handled by the outer retry loop
                    except Exception as error:
                        where = _point_label(label, points[index], index, total)
                        raise ParallelWorkerError(
                            where, f"worker failed on {where}: {error!r}"
                        ) from error
                    if progress is not None:
                        progress(f"point {len(results_by_index)}/{total}")
        except BrokenProcessPool as error:
            pool_breaks += 1
            first_pending = pending[0]
            where = _point_label(
                label, points[first_pending], first_pending, total
            )
            if pool_breaks > 1:
                raise ParallelWorkerError(
                    where,
                    f"process pool died twice (first uncollected: {where}); "
                    "a worker is being killed by the OS -- check memory "
                    "limits or run with jobs=1 to see the crash directly",
                    retried=True,
                ) from error
            if progress is not None:
                progress(
                    f"process pool died near {where}; retrying "
                    f"{len(pending)} uncollected point(s) on a fresh pool"
                )
    return [results_by_index[i] for i in range(total)]


def run_scenario_metrics(scenario) -> Dict[str, Any]:
    """Worker: execute one scenario, return its JSON-able metrics dict."""
    from repro.experiments.runner import run_scenario

    return run_scenario(scenario).metrics()


def _scenario_label(scenario) -> str:
    describe = getattr(scenario, "describe", None)
    if describe is None:
        return repr(scenario)
    identity = describe()
    return f"scenario {identity['name']} (seed {identity['seed']})"


def run_scenarios(
    scenarios: Iterable[Any],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, Any]]:
    """Run many scenarios, serial or sharded, metrics in scenario order.

    Single-point runs (and every individual point of a parallel sweep)
    are byte-identical to ``run_scenario(scenario).metrics()``: the pool
    only distributes *whole* scenarios, never splits one.
    """
    return parallel_map(
        run_scenario_metrics,
        scenarios,
        jobs=jobs,
        progress=progress,
        label=_scenario_label,
    )
