"""Deterministic simulator checkpoints for the campaign plane.

A checkpoint freezes a *prepared and partially run* scenario -- event
heap, engine counters, replica/monitor state, workload clients, RNG
streams, armed faults -- so a campaign can be killed at a slice boundary
and resumed bit-identically: the resumed run executes exactly the events
the uninterrupted run would have, in the same order, with the same
random draws.

File format (version 1, little-endian)::

    8 bytes   magic  b"RPROCKPT"
    <H        format version
    <I        header length
    ...       UTF-8 JSON header: scenario identity (Scenario.describe()),
              sim clock/event counters, payload sha256
    <Q        payload length
    ...       pickle of the ScenarioResult object graph

Everything that can go wrong fails loudly with :class:`CheckpointError`:
wrong magic, unknown version, truncation anywhere, payload checksum
mismatch, or resuming under a different scenario identity.  A checkpoint
that loads without error is the state it claims to be.

Why pickle works here
---------------------
The simulation object graph was made closure-free for exactly this
purpose (driver classes in :mod:`repro.experiments.runner`,
:class:`repro.sim.engine.SimClock`, ``Network.__getstate__``).  The one
survivor is the network's per-message delivery closure, which sits in
every in-flight ``(time, seq, None, _deliver, args)`` heap entry.  It is
handled out-of-band: the pickler writes a persistent id instead of the
closure, the unpickler substitutes a :class:`_DeliverToken` placeholder,
and :func:`load_checkpoint` rewrites the queue entries to point at the
freshly rebuilt ``network._deliver_bound`` (restored by
``Network.__setstate__``).  Campaign clusters have exactly one network,
so the rebind is unambiguous.

Writes are atomic (temp file + ``os.replace``) so a kill *during*
checkpointing leaves either the previous checkpoint or none -- never a
torn file that parses.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import struct
from typing import Any, Dict, Optional

MAGIC = b"RPROCKPT"
FORMAT_VERSION = 1

_HEADER_STRUCT = struct.Struct("<I")
_PAYLOAD_STRUCT = struct.Struct("<Q")
_VERSION_STRUCT = struct.Struct("<H")

#: Qualname of the one closure allowed in the checkpointed graph (the
#: network delivery fast path); see module docstring.
_DELIVER_QUALNAME = "Network._make_deliver.<locals>._deliver"
_DELIVER_PID = "repro-net-deliver"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or trusted."""


class _DeliverToken:
    """Placeholder for the network delivery closure during unpickling.

    Calling one means :func:`load_checkpoint`'s queue rewrite missed an
    entry -- fail loudly rather than silently dropping a delivery.
    """

    __slots__ = ()

    def __call__(self, *args: Any) -> None:
        raise CheckpointError(
            "unresolved delivery token executed -- checkpoint queue "
            "rewrite missed an in-flight message"
        )


class _CheckpointPickler(pickle.Pickler):
    """Pickler that tokenises the network delivery closure."""

    def persistent_id(self, obj: Any) -> Optional[str]:
        if getattr(obj, "__qualname__", None) == _DELIVER_QUALNAME:
            return _DELIVER_PID
        return None


class _CheckpointUnpickler(pickle.Unpickler):
    def persistent_load(self, pid: str) -> Any:
        if pid == _DELIVER_PID:
            return _DeliverToken()
        raise CheckpointError(f"unknown persistent id {pid!r} in checkpoint")


def _serialize_state(result: Any) -> bytes:
    buffer = io.BytesIO()
    try:
        _CheckpointPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(result)
    except (pickle.PicklingError, AttributeError, TypeError) as exc:
        raise CheckpointError(f"scenario state is not checkpointable: {exc}") from exc
    return buffer.getvalue()


def _deserialize_state(payload: bytes) -> Any:
    try:
        return _CheckpointUnpickler(io.BytesIO(payload)).load()
    except CheckpointError:
        raise
    except Exception as exc:  # pickle raises a zoo of types on bad input
        raise CheckpointError(f"checkpoint payload does not unpickle: {exc}") from exc


def _rebind_deliveries(result: Any) -> None:
    """Point tokenised heap entries at the rebuilt delivery closure."""
    sim = result.cluster.sim
    deliver = result.cluster.network._deliver_bound
    queue = sim._queue
    for index, entry in enumerate(queue):
        if type(entry[3]) is _DeliverToken:
            # Same (time, seq) key, so the heap invariant is untouched.
            queue[index] = (entry[0], entry[1], entry[2], deliver, entry[4])


def checkpoint_header(result: Any, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """JSON-able description of what a checkpoint holds (sans checksum)."""
    sim = result.cluster.sim
    header: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "scenario": result.scenario.describe(),
        "sim_now": sim.now,
        "events_processed": sim.events_processed,
        "seq": sim._seq,
        "pending_events": len(sim._queue),
    }
    if extra:
        header["extra"] = extra
    return header


def dump_checkpoint(result: Any, extra: Optional[Dict[str, Any]] = None) -> bytes:
    """Serialise a prepared/partially-run ScenarioResult to bytes."""
    payload = _serialize_state(result)
    header = checkpoint_header(result, extra)
    header["payload_sha256"] = hashlib.sha256(payload).hexdigest()
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return b"".join(
        (
            MAGIC,
            _VERSION_STRUCT.pack(FORMAT_VERSION),
            _HEADER_STRUCT.pack(len(header_bytes)),
            header_bytes,
            _PAYLOAD_STRUCT.pack(len(payload)),
            payload,
        )
    )


def save_checkpoint(
    path: str, result: Any, extra: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Atomically write ``result``'s checkpoint to ``path``.

    Returns the header that was written.  The temp file lives next to the
    target so ``os.replace`` stays on one filesystem and is atomic.
    """
    blob = dump_checkpoint(result, extra)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc
    finally:
        if os.path.exists(tmp_path):  # pragma: no cover - error path
            os.unlink(tmp_path)
    return read_header(path)


def _read_exact(handle: io.BufferedReader, n: int, what: str) -> bytes:
    data = handle.read(n)
    if len(data) != n:
        raise CheckpointError(
            f"truncated checkpoint: expected {n} bytes of {what}, got {len(data)}"
        )
    return data


def _parse(blob_handle: io.BufferedReader) -> tuple:
    magic = _read_exact(blob_handle, len(MAGIC), "magic")
    if magic != MAGIC:
        raise CheckpointError(
            f"not a repro checkpoint (magic {magic!r} != {MAGIC!r})"
        )
    (version,) = _VERSION_STRUCT.unpack(
        _read_exact(blob_handle, _VERSION_STRUCT.size, "version")
    )
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format v{version} unsupported (expected v{FORMAT_VERSION})"
        )
    (header_len,) = _HEADER_STRUCT.unpack(
        _read_exact(blob_handle, _HEADER_STRUCT.size, "header length")
    )
    header_bytes = _read_exact(blob_handle, header_len, "header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt checkpoint header: {exc}") from exc
    (payload_len,) = _PAYLOAD_STRUCT.unpack(
        _read_exact(blob_handle, _PAYLOAD_STRUCT.size, "payload length")
    )
    payload = _read_exact(blob_handle, payload_len, "payload")
    if blob_handle.read(1):
        raise CheckpointError("trailing garbage after checkpoint payload")
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointError(
            "checkpoint payload checksum mismatch "
            f"({digest} != {header.get('payload_sha256')})"
        )
    return header, payload


def read_header(path: str) -> Dict[str, Any]:
    """Parse and verify a checkpoint file, returning only its header."""
    try:
        with open(path, "rb") as handle:
            header, _ = _parse(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    return header


def load_checkpoint(path: str, expected_scenario: Any = None) -> Any:
    """Restore a ScenarioResult from ``path``, ready to keep running.

    ``expected_scenario`` (a :class:`repro.experiments.runner.Scenario`)
    guards against resuming the wrong campaign: its ``describe()``
    identity must match the one frozen in the header.
    """
    try:
        with open(path, "rb") as handle:
            header, payload = _parse(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if expected_scenario is not None:
        # Round-trip through JSON so tuples in the live identity compare
        # equal to the lists the stored header parsed back.
        expected = json.loads(json.dumps(expected_scenario.describe()))
        frozen = header.get("scenario")
        if frozen != expected:
            diff = [
                key
                for key in sorted(set(expected) | set(frozen or {}))
                if (frozen or {}).get(key) != expected.get(key)
            ]
            raise CheckpointError(
                "checkpoint belongs to a different scenario "
                f"(fields differing: {', '.join(diff) or 'structure'})"
            )
    result = _deserialize_state(payload)
    _rebind_deliveries(result)
    sim = result.cluster.sim
    if sim.now != header["sim_now"] or sim.events_processed != header["events_processed"]:
        raise CheckpointError(
            "checkpoint header disagrees with restored state "
            f"(now {sim.now} vs {header['sim_now']}, "
            f"events {sim.events_processed} vs {header['events_processed']})"
        )
    return result
