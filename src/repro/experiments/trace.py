"""State-trace hashing: the equivalence oracle for the message planes.

:func:`state_trace_hash` folds everything the simulation *computed* --
per-replica protocol state, every commit event, network statistics
including the per-type byte ledger, the clock, the sequence counter and
both RNG streams -- into one sha256 hex digest.  Two runs of the same
scenario agree on this hash iff they delivered the same messages at the
same times in the same order and drew the same randomness; it is the
invariant ``MessagePlane("check")`` asserts between the object plane and
the columnar plane.

What is deliberately **excluded**:

* ``sim.events_processed`` -- the planes disagree on it by design (a
  columnar drain of k messages is one heap event, not k), and it carries
  no simulation-visible state;
* the pending event heap -- cursor entries and per-message entries
  represent the same future deliveries differently; everything the heap
  will cause is already pinned down by the RNG states and the counters;
* wall-clock anything.

The hash is built from ``repr`` of plain-Python state, so it is stable
across processes under ``PYTHONHASHSEED`` randomisation: sets are
sorted before repr, dicts are folded in key order.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Tuple

#: Per-replica attributes folded into the trace, in order.  Missing
#: attributes are skipped (each protocol contributes its own subset), so
#: one list serves PBFT, HotStuff and Kauri.  Sets among these are
#: sorted; dicts folded in sorted-key order.
_REPLICA_ATTRS: Tuple[str, ...] = (
    # PBFT family
    "view",
    "seq",
    "executed_seq",
    "low_water",
    "log_view",
    # HotStuff family
    "last_voted_height",
    "qc_heights",
    # Kauri family (also next_height/committed_height below)
    "next_height",
    "committed_height",
    "current_height",
    # Shared bookkeeping
    "running",
)


def _fold(hasher: "hashlib._Hash", label: str, value: Any) -> None:
    hasher.update(label.encode())
    hasher.update(b"=")
    hasher.update(_canonical(value).encode())
    hasher.update(b";")


def _canonical(value: Any) -> str:
    """Deterministic repr: sorts sets, folds dicts in key order."""
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(_canonical(item) for item in sorted(value)) + "}"
    if isinstance(value, dict):
        return (
            "{"
            + ",".join(
                f"{_canonical(key)}:{_canonical(value[key])}"
                for key in sorted(value)
            )
            + "}"
        )
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in value) + "]"
    return repr(value)


def _commit_rows(metrics: Any) -> Iterable[Tuple[Any, ...]]:
    commits = getattr(metrics, "commits", None)
    if commits is None:
        return ()
    return (tuple(event) for event in commits)


def state_trace_hash(cluster: Any) -> str:
    """sha256 over the cluster's simulation-visible end state.

    ``cluster`` is any of the protocol clusters (PBFT / HotStuff /
    Kauri): the function relies only on ``sim``, ``network``,
    ``replicas`` and the per-replica attribute subset above.
    """
    hasher = hashlib.sha256()
    sim = cluster.sim
    _fold(hasher, "now", sim.now)
    _fold(hasher, "seq", sim._seq)
    _fold(hasher, "rng", sim.rng.getstate())

    network = cluster.network
    jitter_rng = getattr(network, "_jitter_rng", None)
    if jitter_rng is not None:
        _fold(hasher, "jitter_rng", jitter_rng.getstate())
    stats = network.stats
    _fold(hasher, "messages_sent", stats.messages_sent)
    _fold(hasher, "messages_delivered", stats.messages_delivered)
    _fold(hasher, "messages_dropped", stats.messages_dropped)
    _fold(hasher, "bytes_sent", stats.bytes_sent)
    _fold(hasher, "per_type_bytes", dict(stats.per_type_bytes))

    for replica in cluster.replicas:
        prefix = f"r{replica.id}."
        for name in _REPLICA_ATTRS:
            value = getattr(replica, name, None)
            if value is not None:
                _fold(hasher, prefix + name, value)
        for row in _commit_rows(replica.metrics):
            _fold(hasher, prefix + "c", row)

    workload = getattr(cluster, "workload", None)
    if workload is not None:
        summary = workload.summary()
        if summary is not None:
            _fold(hasher, "client", summary)
    return hasher.hexdigest()
