"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render rows as an aligned text table (the benches print these)."""
    rendered_rows: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.4f}"
    return str(value)
