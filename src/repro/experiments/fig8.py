"""Fig. 8: suspicion-graph candidate-set computation time.

Random suspicion graphs for configuration sizes n = 4..100, 100 graphs
per size; the candidate set is the maximum independent set computed with
Bron-Kerbosch on the inverted graph (exact with pivoting up to a size
threshold, the greedy heuristic beyond -- the paper likewise uses "a
heuristic variant").  Reported is the mean wall-clock time per size.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List

from repro.experiments.tables import format_table
from repro.optimize.graphs import Graph
from repro.optimize.maxindset import greedy_independent_set, maximum_independent_set

DEFAULT_SIZES = (4, 10, 16, 22, 30, 40, 50, 60, 75, 100)


def random_suspicion_graph(n: int, p: float, rng: random.Random) -> Graph:
    """Erdős–Rényi G(n, p): each pair mutually distrusts with prob. p."""
    graph = Graph(vertices=range(n))
    for a in range(n):
        for b in range(a + 1, n):
            if rng.random() < p:
                graph.add_edge(a, b)
    return graph


@dataclass
class Fig8Row:
    n: int
    mean_time_ms: float
    mean_candidates: float
    solver: str


def run(
    sizes=DEFAULT_SIZES,
    graphs_per_size: int = 100,
    edge_probability: float = 0.5,
    exact_threshold: int = 26,
    seed: int = 0,
) -> List[Fig8Row]:
    rng = random.Random(seed)
    rows = []
    for n in sizes:
        total_time = 0.0
        total_candidates = 0
        solver = "bron-kerbosch" if n <= exact_threshold else "greedy-heuristic"
        for _ in range(graphs_per_size):
            graph = random_suspicion_graph(n, edge_probability, rng)
            start = time.perf_counter()
            if n <= exact_threshold:
                candidates = maximum_independent_set(graph)
            else:
                candidates = greedy_independent_set(graph)
            total_time += time.perf_counter() - start
            total_candidates += len(candidates)
        rows.append(
            Fig8Row(
                n=n,
                mean_time_ms=1000.0 * total_time / graphs_per_size,
                mean_candidates=total_candidates / graphs_per_size,
                solver=solver,
            )
        )
    return rows


def main(graphs_per_size: int = 100, seed: int = 0) -> str:
    rows = run(graphs_per_size=graphs_per_size, seed=seed)
    return format_table(
        ["n", "mean time [ms]", "mean |K|", "solver"],
        [[r.n, r.mean_time_ms, r.mean_candidates, r.solver] for r in rows],
        title="Fig. 8 -- candidate-set (max independent set) computation time",
    )


if __name__ == "__main__":
    print(main())
