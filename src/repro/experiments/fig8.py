"""Fig. 8: suspicion-graph candidate-set computation time.

Random suspicion graphs for configuration sizes n = 4..100, 100 graphs
per size; the candidate set is the maximum independent set computed with
Bron-Kerbosch on the inverted graph (exact with pivoting up to a size
threshold, the greedy heuristic beyond -- the paper likewise uses "a
heuristic variant").  Graphs are generated *outside* the timing window
on every branch; per-graph wall clock covers exactly the solver call,
and the distribution is reported as mean/p50/p95 per size.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.tables import format_table
from repro.optimize.graphs import Graph
from repro.optimize.maxindset import greedy_independent_set, maximum_independent_set

DEFAULT_SIZES = (4, 10, 16, 22, 30, 40, 50, 60, 75, 100)

#: Upper-triangle pair arrays per n, shared across the 100 graphs of a
#: size (row-major order matches the historical nested generation loop).
_PAIR_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def _pairs(n: int) -> Tuple[np.ndarray, np.ndarray]:
    cached = _PAIR_CACHE.get(n)
    if cached is None:
        cached = _PAIR_CACHE[n] = np.triu_indices(n, k=1)
    return cached


def random_suspicion_graph(n: int, p: float, rng: random.Random) -> Graph:
    """Erdős–Rényi G(n, p): each pair mutually distrusts with prob. p.

    Vectorized but stream-compatible: the ``rng.random()`` draws happen
    in the exact upper-triangle order of the historical nested loop (one
    per pair), so seeded graph sequences are bit-identical; only the
    per-pair comparison and edge insertion are batched.
    """
    pair_count = n * (n - 1) // 2
    draw = rng.random
    draws = np.fromiter(
        (draw() for _ in range(pair_count)), dtype=np.float64, count=pair_count
    )
    rows, cols = _pairs(n)
    hits = np.nonzero(draws < p)[0]
    graph = Graph(vertices=range(n))
    graph.add_edges(zip(rows[hits].tolist(), cols[hits].tolist()))
    return graph


@dataclass
class Fig8Row:
    n: int
    mean_time_ms: float
    p50_time_ms: float
    p95_time_ms: float
    mean_candidates: float
    solver: str


def run(
    sizes=DEFAULT_SIZES,
    graphs_per_size: int = 100,
    edge_probability: float = 0.5,
    exact_threshold: int = 26,
    seed: int = 0,
) -> List[Fig8Row]:
    rng = random.Random(seed)
    rows = []
    for n in sizes:
        exact = n <= exact_threshold
        solver = maximum_independent_set if exact else greedy_independent_set
        # Generation stays outside the timing window (and ahead of every
        # solve); rng is touched only here, so the graph sequence equals
        # the historical interleaved generate/solve loop's.
        graphs = [
            random_suspicion_graph(n, edge_probability, rng)
            for _ in range(graphs_per_size)
        ]
        samples: List[float] = []
        total_candidates = 0
        for graph in graphs:
            start = time.perf_counter()
            candidates = solver(graph)
            samples.append(time.perf_counter() - start)
            total_candidates += len(candidates)
        rows.append(
            Fig8Row(
                n=n,
                mean_time_ms=1000.0 * sum(samples) / len(samples),
                p50_time_ms=1000.0 * float(np.percentile(samples, 50)),
                p95_time_ms=1000.0 * float(np.percentile(samples, 95)),
                mean_candidates=total_candidates / graphs_per_size,
                solver="bron-kerbosch" if exact else "greedy-heuristic",
            )
        )
    return rows


def main(graphs_per_size: int = 100, seed: int = 0) -> str:
    rows = run(graphs_per_size=graphs_per_size, seed=seed)
    return format_table(
        ["n", "mean time [ms]", "p50 [ms]", "p95 [ms]", "mean |K|", "solver"],
        [
            [r.n, r.mean_time_ms, r.p50_time_ms, r.p95_time_ms, r.mean_candidates, r.solver]
            for r in rows
        ],
        title="Fig. 8 -- candidate-set (max independent set) computation time",
    )


if __name__ == "__main__":
    print(main())
