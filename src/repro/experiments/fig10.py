"""Fig. 10: tree latency (score) under the targeted false-suspicion attack.

n = 211 replicas randomly distributed worldwide.  Each "reconfiguration"
step, a still-unexposed faulty replica raises a suspicion against a
correct internal node of the current best tree; both leave the candidate
set (the suspicion is reciprocated).  Three strategies are compared:

* **OptiTree** -- tree SuspicionMonitor (E_d / T), score(q + u);
* **Kauri-sa** -- annealed trees, but every failed tree's internal nodes
  are blacklisted and the score must budget q + f;
* **Kauri** -- random bin trees, score(q + f).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.core.log import AppendOnlyLog
from repro.experiments.tables import format_table
from repro.faults.false_suspicion import TargetedSuspicionAttack
from repro.net.deployments import random_world_deployment
from repro.optimize.annealing import AnnealingSchedule
from repro.tree.candidates import TreeSuspicionMonitor
from repro.tree.kauri_reconfig import KauriReconfigurer
from repro.tree.kauri_sa import KauriSaReconfigurer
from repro.tree.optitree import optitree_search, random_tree
from repro.tree.score import tree_score
from repro.tree.topology import branch_factor_for


@dataclass
class Fig10Row:
    reconfigurations: int
    optitree: float
    kauri_sa: float
    kauri: float


def _schedule(iterations: int) -> AnnealingSchedule:
    return AnnealingSchedule(
        iterations=iterations, initial_temperature=0.05, cooling=0.9995
    )


def run_once(
    n: int,
    f: int,
    max_reconfigs: int,
    seed: int,
    sa_iterations: int,
) -> List[Fig10Row]:
    deployment = random_world_deployment(n, random.Random(seed))
    latency = deployment.latency.matrix_seconds() / 2.0
    q = n - f
    rng = random.Random(seed + 1)

    # --- OptiTree: log + tree suspicion monitor + attack -----------------
    log = AppendOnlyLog()
    monitor = TreeSuspicionMonitor(0, log, n=n, f=f)
    attack = TargetedSuspicionAttack(
        faulty_pool=list(range(n - f, n)), rng=random.Random(seed + 2)
    )
    opti_scores: List[float] = []
    kauri_sa = KauriSaReconfigurer(
        latency, n, f, rng=random.Random(seed + 3), schedule=_schedule(sa_iterations)
    )
    kauri_sa_scores: List[float] = []
    kauri = KauriReconfigurer(n, rng=random.Random(seed + 4))
    kauri_scores: List[float] = []

    for step in range(max_reconfigs + 1):
        # OptiTree: anneal within the current candidate set, score q+u.
        candidates, u = monitor.estimate()
        result = optitree_search(
            latency,
            n,
            f,
            candidates,
            u,
            rng=rng,
            schedule=_schedule(sa_iterations),
        )
        if result is None:
            opti_scores.append(float("inf"))
        else:
            opti_scores.append(tree_score(latency, result.best_state, q + u))
            # Attack: a faulty replica suspects a correct internal node.
            attack.attack_round(log, result.best_state, round_id=step)

        # Kauri-sa: anneal among non-blacklisted, score q+f.
        sa_tree = kauri_sa.next_tree()
        if sa_tree is None:
            kauri_sa_scores.append(float("inf"))
        else:
            kauri_sa_scores.append(tree_score(latency, sa_tree, q + f))
            kauri_sa.tree_failed(sa_tree)

        # Kauri: random tree, score q+f (reshuffles when bins run out).
        if kauri.trials >= kauri.bin_count:
            kauri = KauriReconfigurer(n, rng=random.Random(seed + 5 + step))
        kauri_tree = kauri.next_tree()
        kauri_scores.append(tree_score(latency, kauri_tree, q + f))

    return [
        Fig10Row(
            reconfigurations=step,
            optitree=opti_scores[step],
            kauri_sa=kauri_sa_scores[step],
            kauri=kauri_scores[step],
        )
        for step in range(max_reconfigs + 1)
    ]


def run(
    n: int = 211,
    f: int = 70,
    max_reconfigs: int = 32,
    runs: int = 5,
    seed: int = 0,
    sa_iterations: int = 3000,
) -> List[Fig10Row]:
    """Average rows over ``runs`` independent simulations."""
    accumulated = None
    for run_index in range(runs):
        rows = run_once(n, f, max_reconfigs, seed + 1000 * run_index, sa_iterations)
        if accumulated is None:
            accumulated = [[r.optitree, r.kauri_sa, r.kauri] for r in rows]
        else:
            for index, row in enumerate(rows):
                accumulated[index][0] += row.optitree
                accumulated[index][1] += row.kauri_sa
                accumulated[index][2] += row.kauri
    return [
        Fig10Row(
            reconfigurations=index,
            optitree=values[0] / runs,
            kauri_sa=values[1] / runs,
            kauri=values[2] / runs,
        )
        for index, values in enumerate(accumulated)
    ]


def main(runs: int = 3, max_reconfigs: int = 16, seed: int = 0) -> str:
    rows = run(runs=runs, max_reconfigs=max_reconfigs, seed=seed)
    return format_table(
        ["reconfigs", "OptiTree [s]", "Kauri-sa [s]", "Kauri [s]"],
        [[r.reconfigurations, r.optitree, r.kauri_sa, r.kauri] for r in rows],
        title="Fig. 10 -- tree latency (score) vs reconfigurations, n=211",
    )


if __name__ == "__main__":
    print(main())
