"""Fig. 11: OptiTree under δ-bounded malicious delays (§7.6).

Europe21, branch factor 4, OptiTree without pipelining.  One to four
faulty replicas among the tree's intermediate nodes stretch their
outgoing Forward and AggregateVote delays by a factor δ ∈ {1.1, 1.2,
1.4} -- within the suspicion threshold, so they are never expelled.  The
paper sees throughput drop by up to ~49% at δ=1.4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.consensus.kauri import KauriCluster
from repro.experiments.tables import format_table
from repro.faults.delay import DeltaDelayAttack
from repro.net.deployments import deployment_for
from repro.optimize.annealing import AnnealingSchedule
from repro.tree.optitree import optitree_search

DELTAS = (1.1, 1.2, 1.4)


@dataclass
class Fig11Cell:
    faulty: int
    delta: Optional[float]  # None = fault-free baseline
    throughput: float
    latency: float


def _tree(deployment, f: int, seed: int, iterations: int):
    latency = deployment.latency.matrix_seconds() / 2.0
    result = optitree_search(
        latency,
        deployment.n,
        f,
        candidates=frozenset(range(deployment.n)),
        u=0,
        rng=random.Random(seed),
        schedule=AnnealingSchedule(iterations=iterations, initial_temperature=0.05),
        k=2 * f + 1,
    )
    return result.best_state


def run_cell(
    faulty: int,
    delta: Optional[float],
    duration: float = 20.0,
    seed: int = 0,
    search_iterations: int = 10_000,
) -> Fig11Cell:
    deployment = deployment_for("Europe21")
    n = deployment.n
    f = (n - 1) // 3
    tree = _tree(deployment, f, seed, search_iterations)
    cluster = KauriCluster(deployment, tree, pipeline_depth=1, seed=seed)
    if delta is not None and faulty > 0:
        attackers = random.Random(seed + 7).sample(list(tree.intermediates), faulty)
        cluster.network.add_interceptor(
            DeltaDelayAttack(attackers=attackers, delta=delta)
        )
    metrics = cluster.run(duration)
    return Fig11Cell(
        faulty=faulty,
        delta=delta,
        throughput=metrics.throughput(duration),
        latency=metrics.mean_latency(),
    )


def run(
    duration: float = 20.0, seed: int = 0, search_iterations: int = 10_000
) -> List[Fig11Cell]:
    cells = [
        run_cell(0, None, duration=duration, seed=seed, search_iterations=search_iterations)
    ]
    for faulty in (1, 2, 3, 4):
        for delta in DELTAS:
            cells.append(
                run_cell(
                    faulty,
                    delta,
                    duration=duration,
                    seed=seed,
                    search_iterations=search_iterations,
                )
            )
    return cells


def main(duration: float = 20.0, seed: int = 0) -> str:
    cells = run(duration=duration, seed=seed)
    rows = [
        [
            cell.faulty,
            cell.delta if cell.delta is not None else "none",
            round(cell.throughput),
            round(cell.latency, 3),
        ]
        for cell in cells
    ]
    return format_table(
        ["faulty internal", "delta", "throughput [op/s]", "latency [s]"],
        rows,
        title="Fig. 11 -- OptiTree (Europe21) with delaying intermediates",
    )


if __name__ == "__main__":
    print(main())
