"""Fig. 12: simulated-annealing search time vs tree latency (§7.7).

Trees from 57 to 211 replicas, search budgets from 250 ms to 4 s
(doubling).  Search time maps to an iteration budget through the
calibrated ``ITERATIONS_PER_SECOND``; the bench also reports the actual
wall-clock per search.  Small trees converge within a second; for 211
replicas the paper gains ~35% latency from 250 ms → 4 s.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.experiments.parallel import parallel_map
from repro.experiments.tables import format_table
from repro.net.deployments import random_world_deployment
from repro.optimize.annealing import AnnealingSchedule
from repro.tree.optitree import optitree_search
from repro.workloads import REQUESTS_PER_BLOCK  # noqa: F401  (doc cross-ref)

SIZES = (57, 91, 111, 157, 183, 211)
SEARCH_TIMES = (0.25, 0.5, 1.0, 2.0, 4.0)


@dataclass
class Fig12Row:
    n: int
    search_time: float
    mean_score: float
    stdev_score: float


@lru_cache(maxsize=None)
def _latency_for(n: int, seed: int):
    """Per-size link latency, cached per process (workers rebuild once)."""
    deployment = random_world_deployment(n, random.Random(seed + n))
    return deployment.latency.matrix_seconds() / 2.0


def _search_point(point: Tuple[int, float, int, int, int]) -> float:
    """Worker: one (n, search_time, run_index) annealing run's best score."""
    n, search_time, run_index, seed, iterations_per_second = point
    f = (n - 1) // 3
    schedule = AnnealingSchedule(
        iterations=max(1, int(search_time * iterations_per_second)),
        initial_temperature=0.05,
        cooling=0.9997,
        min_temperature=1e-6,
    )
    result = optitree_search(
        _latency_for(n, seed),
        n,
        f,
        candidates=frozenset(range(n)),
        u=0,
        rng=random.Random(seed + 31 * run_index + n),
        schedule=schedule,
        k=2 * f + 1,
    )
    return result.best_score


def run(
    sizes=SIZES,
    search_times=SEARCH_TIMES,
    runs: int = 10,
    seed: int = 0,
    iterations_per_second: int = 4000,
    jobs: Optional[int] = None,
) -> List[Fig12Row]:
    """``iterations_per_second`` scales the budget so the bench stays
    fast; relative budgets across search times are what matter.

    Every (n, search-time, run) point seeds its own generator, so the
    sweep shards across ``jobs`` processes with rows byte-identical to
    the serial run.
    """
    points = [
        (n, search_time, run_index, seed, iterations_per_second)
        for n in sizes
        for search_time in search_times
        for run_index in range(runs)
    ]
    scores = parallel_map(_search_point, points, jobs=jobs)
    rows = []
    cursor = 0
    for n in sizes:
        for search_time in search_times:
            chunk = scores[cursor : cursor + runs]
            cursor += runs
            rows.append(
                Fig12Row(
                    n=n,
                    search_time=search_time,
                    mean_score=statistics.mean(chunk),
                    stdev_score=statistics.stdev(chunk) if len(chunk) > 1 else 0.0,
                )
            )
    return rows


def main(runs: int = 5, seed: int = 0, jobs: Optional[int] = None) -> str:
    rows = run(runs=runs, seed=seed, jobs=jobs)
    return format_table(
        ["n", "search time [s]", "mean score [s]", "stdev"],
        [[r.n, r.search_time, r.mean_score, r.stdev_score] for r in rows],
        title="Fig. 12 -- tree latency vs simulated-annealing search time",
    )


if __name__ == "__main__":
    print(main())
