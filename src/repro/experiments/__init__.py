"""Experiment drivers reproducing every figure of the paper's evaluation.

Each ``figNN`` module exposes a ``run(...)`` returning structured rows and
a ``main()`` that prints the same series the paper plots.  The benchmark
files under ``benchmarks/`` are thin wrappers over these drivers; the
drivers accept scale knobs (runs, duration) so benchmarks stay fast while
``REPRO_FULL=1`` reproduces the paper-scale parameters.
"""

from repro.experiments.tables import format_table

__all__ = ["format_table"]
