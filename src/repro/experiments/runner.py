"""Unified scenario runner: protocol x deployment x workload x faults.

A :class:`Scenario` declaratively combines

* a **protocol** -- ``pbft`` / ``pbft-aware`` / ``pbft-optiaware``
  (three-phase engine hosting Aware/OptiAware), ``hotstuff-fixed`` /
  ``hotstuff-rr``, ``kauri`` (pipelined, random tree), ``optitree`` /
  ``optitree-nopipe`` (tree from simulated annealing);
* a **deployment** -- one of the paper's named city sets (``Europe21``,
  ``NA-EU43``, ``Global73``, ``Stellar56``) or ``wonderproxy-N`` for a
  seeded random world placement of ``N`` replicas drawn from the
  WonderProxy-derived city table;
* a **workload** -- any name registered in :data:`repro.workloads.WORKLOADS`
  plus ``saturated`` (no clients; HotStuff/Kauri self-clock full blocks,
  the paper's §7.3 regime);
* a **fault schedule** -- :class:`FaultSpec` entries (delay / δ-bounded /
  stealth delay attacks, crashes with revival, churn cycles, link-level
  partitions, probabilistic message loss, fabricated false suspicions)
  resolved against the live cluster at their start times;
* a **reconfiguration policy** -- :class:`MeasurementPolicy`, the
  probe/publish/search cadence driving Aware/OptiAware reconfiguration.

:func:`run_scenario` builds the cluster, attaches everything, runs the
simulation and returns a :class:`ScenarioResult` whose
:meth:`ScenarioResult.metrics` dict (throughput, commit-latency
percentiles, reconfiguration count, message totals) serialises to
bit-identical JSON for identical scenarios.  The figure drivers (fig7,
fig9) and the ``python -m repro`` CLI are thin layers over this module.
"""

from __future__ import annotations

import json
import math
import random
import re
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.consensus.base import RunMetrics
from repro.consensus.hotstuff import HotStuffCluster
from repro.consensus.kauri import KauriCluster
from repro.consensus.pbft import PbftCluster
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.faults.churn import ChurnSchedule
from repro.faults.delay import DelayAttack, DeltaDelayAttack, StealthDelayAttack
from repro.faults.loss import MessageLoss
from repro.net.deployments import Deployment, deployment_for, random_world_deployment
from repro.optimize.annealing import AnnealingSchedule
from repro.tree.kauri_reconfig import KauriReconfigurer
from repro.tree.optitree import optitree_search
from repro.workloads import PIPELINE_DEPTH, Workload, make_workload, percentile

#: Protocols the runner can build, mapped to (family, variant).
PROTOCOLS: Dict[str, Tuple[str, str]] = {
    "pbft": ("pbft", "static"),
    "pbft-aware": ("pbft", "aware"),
    "pbft-optiaware": ("pbft", "optiaware"),
    "hotstuff-fixed": ("hotstuff", "fixed"),
    "hotstuff-rr": ("hotstuff", "rr"),
    "kauri": ("kauri", "random-tree"),
    "optitree": ("kauri", "optitree"),
    "optitree-nopipe": ("kauri", "optitree-nopipe"),
}

#: Named deployments, keyed by lowercase alias.
NAMED_DEPLOYMENTS = {
    "europe21": "Europe21",
    "na-eu43": "NA-EU43",
    "global73": "Global73",
    "stellar56": "Stellar56",
}

_WONDERPROXY = re.compile(r"^wonderproxy-(\d+)$")


#: Every fault kind the runner can schedule.
FAULT_KINDS = (
    "delay",
    "delta_delay",
    "crash",
    "churn",
    "partition",
    "loss",
    "false_suspicion",
)

#: Per-kind ``params`` vocabulary; an unknown key is a loud error so a
#: typo'd knob cannot silently leave an adversary unconfigured.
_FAULT_PARAMS: Dict[str, Tuple[str, ...]] = {
    "delay": (),
    "delta_delay": ("delta", "adaptive", "headroom"),
    "crash": (),
    "churn": ("period", "downtime", "victims", "random"),
    "partition": ("groups", "isolate"),
    "loss": ("rate", "senders"),
    "false_suspicion": ("target", "period", "rounds"),
}


@dataclass
class FaultSpec:
    """One scheduled adversarial behaviour, active ``[start, end]``.

    ``attacker`` is a replica id, a tuple of ids, or a role name resolved
    when the fault fires: ``"leader"`` (PBFT's current leader), ``"root"``
    (Kauri's tree root), ``"intermediates"`` (Kauri's internal tree
    nodes).  ``params`` carries kind-specific knobs:

    ============== =====================================================
    ``delay``      fixed ``extra_delay`` on ``message_types`` (Fig. 7)
    ``delta_delay`` link stretch by ``delta``; ``adaptive=True`` switches
                   to the stay-below-``δ·d_m`` stealth adversary with
                   ``headroom`` (Fig. 11 / §7.6)
    ``crash``      node down at ``start``; a finite ``end`` revives it
                   with catch-up
    ``churn``      crash/recover cycles: ``period``, ``downtime``,
                   ``victims`` (ids or ``"intermediates"``/``"all"``),
                   ``random`` victim choice
    ``partition``  link-level split: ``groups`` (iterables of ids) or
                   ``isolate`` (id or role); heals at ``end``
    ``loss``       drop probability ``rate``, optional ``senders`` filter
    ``false_suspicion`` fabricated ⟨Slow⟩ records from the ``attacker``
                   pool against ``target`` (Fig. 10's smear campaign),
                   one round every ``period`` s, up to ``rounds``
    ============== =====================================================
    """

    kind: str = "delay"
    start: float = 0.0
    end: float = math.inf
    attacker: Union[int, str, Tuple[int, ...]] = "leader"
    extra_delay: float = 0.5
    message_types: Optional[Tuple[str, ...]] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (known: {', '.join(FAULT_KINDS)})"
            )
        if self.end < self.start:
            raise ValueError(
                f"fault end {self.end} precedes start {self.start}"
            )
        if isinstance(self.message_types, str):
            # A bare string would iterate as characters inside DelayAttack
            # and silently never match any message type.
            self.message_types = (self.message_types,)
        elif isinstance(self.message_types, list):
            self.message_types = tuple(self.message_types)
        if self.message_types is not None:
            from repro.consensus import messages as protocol_messages

            for name in self.message_types:
                # A typo'd type would make the attack match nothing and
                # the experiment silently report healthy numbers.
                if not isinstance(getattr(protocol_messages, name, None), type):
                    raise ValueError(
                        f"unknown message type {name!r} in fault spec"
                    )
        allowed = _FAULT_PARAMS[self.kind]
        for key in self.params:
            if key not in allowed:
                raise ValueError(
                    f"unknown param {key!r} for fault kind {self.kind!r}"
                    f" (known: {', '.join(allowed) or 'none'})"
                )
        if self.kind == "loss":
            rate = self.params.get("rate")
            if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
                raise ValueError(f"loss fault needs params rate in [0, 1], got {rate!r}")
            senders = self.params.get("senders")
            if senders is not None:
                if isinstance(senders, int):
                    self.params["senders"] = (senders,)
                elif isinstance(senders, (tuple, list, set)) and all(
                    isinstance(node, int) for node in senders
                ):
                    self.params["senders"] = tuple(sorted(senders))
                else:
                    # set("leader") would silently match nothing.
                    raise ValueError(
                        f"loss senders must be replica ids, got {senders!r}"
                    )
        if self.kind == "partition":
            if ("groups" in self.params) == ("isolate" in self.params):
                raise ValueError(
                    "partition fault needs exactly one of params "
                    "'groups' (iterables of ids) or 'isolate' (id or role)"
                )
        if self.kind == "churn":
            for knob in ("period", "downtime"):
                value = self.params.get(knob)
                if value is not None and (
                    not isinstance(value, (int, float)) or value <= 0
                ):
                    raise ValueError(f"churn {knob} must be positive, got {value!r}")
        if self.kind == "delta_delay":
            delta = self.params.get("delta")
            if delta is not None and (
                not isinstance(delta, (int, float)) or delta <= 0
            ):
                raise ValueError(f"delta_delay delta must be positive, got {delta!r}")
        if self.kind == "false_suspicion":
            pool = (
                self.attacker
                if isinstance(self.attacker, (tuple, list))
                else (self.attacker,)
            )
            if not pool or not all(isinstance(a, int) for a in pool):
                raise ValueError(
                    "false_suspicion needs explicit attacker replica ids "
                    f"(the faulty pool), got {self.attacker!r}"
                )


@dataclass
class MeasurementPolicy:
    """Aware/OptiAware reconfiguration cadence (the Fig. 7 schedule):
    probe peers, publish latency vectors, then search periodically."""

    probe_at: float = 5.0
    publish_at: float = 15.0
    first_search_at: float = 40.0
    search_period: float = 25.0
    horizon: Optional[float] = None  # defaults to the scenario duration


@dataclass
class Scenario:
    """A declarative experiment: everything needed to reproduce one run."""

    protocol: str = "pbft"
    deployment: str = "Europe21"
    workload: Union[str, Workload] = "closed-loop"
    workload_params: Dict[str, Any] = field(default_factory=dict)
    duration: float = 30.0
    seed: int = 0
    delta: float = 1.0
    jitter: float = 0.02
    client_city: Optional[int] = None
    faults: List[FaultSpec] = field(default_factory=list)
    measurements: Optional[MeasurementPolicy] = None
    search_iterations: int = 20_000  # OptiTree's annealing budget
    pipeline_depth: Optional[int] = None
    name: str = ""

    def describe(self) -> Dict[str, Any]:
        """JSON-able identity of the scenario (what was run)."""
        workload = (
            self.workload if isinstance(self.workload, str) else self.workload.name
        )
        return {
            "name": self.name or f"{self.protocol}/{self.deployment}/{workload}",
            "protocol": self.protocol,
            "deployment": self.deployment,
            "workload": workload,
            "workload_params": dict(sorted(self.workload_params.items())),
            "duration": self.duration,
            "seed": self.seed,
            "delta": self.delta,
            "jitter": self.jitter,
            "client_city": self.client_city,
            "search_iterations": self.search_iterations,
            "pipeline_depth": self.pipeline_depth,
            "measurements": (
                asdict(self.measurements) if self.measurements is not None else None
            ),
            "faults": [asdict(fault) for fault in self.faults],
        }


@dataclass
class ScenarioResult:
    """Outcome of one scenario: live objects plus JSON-able metrics."""

    scenario: Scenario
    cluster: Any
    run_metrics: RunMetrics
    workload: Optional[Workload]
    #: Live adversary objects created while the run executed, as
    #: ``(fault_index, kind, instrument)`` tuples -- empty for fault-free
    #: scenarios (whose metrics JSON is therefore unchanged).
    fault_instruments: List[Tuple[int, str, Any]] = field(default_factory=list)

    def metrics(self) -> Dict[str, Any]:
        duration = self.scenario.duration
        commit_latencies = sorted(
            event.latency for event in self.run_metrics.commits
        )
        out: Dict[str, Any] = {
            "scenario": self.scenario.describe(),
            "throughput_rps": self.run_metrics.throughput(duration),
            "committed_requests": self.run_metrics.total_requests(),
            "committed_blocks": len(self.run_metrics.commits),
            "reconfigurations": self.reconfiguration_count(),
            "messages_sent": self.cluster.network.stats.messages_sent,
            "messages_delivered": self.cluster.network.stats.messages_delivered,
            "bytes_sent": self.cluster.network.stats.bytes_sent,
        }
        if commit_latencies:
            out["commit_latency"] = {
                "mean": sum(commit_latencies) / len(commit_latencies),
                "p50": percentile(commit_latencies, 0.50),
                "p90": percentile(commit_latencies, 0.90),
                "p99": percentile(commit_latencies, 0.99),
            }
        if self.workload is not None:
            out["client"] = self.workload.summary()
        if self.fault_instruments:
            out["fault_activity"] = [
                self._instrument_summary(fault_index, kind, instrument)
                for fault_index, kind, instrument in sorted(
                    self.fault_instruments, key=lambda entry: entry[0]
                )
            ]
        return out

    @staticmethod
    def _instrument_summary(fault_index: int, kind: str, instrument: Any) -> Dict[str, Any]:
        summary: Dict[str, Any] = {"fault": fault_index, "kind": kind}
        if kind in ("delay", "delta_delay"):
            summary["messages_delayed"] = instrument.messages_delayed
        elif kind == "loss":
            summary["messages_lost"] = instrument.messages_lost
            summary["messages_seen"] = instrument.messages_seen
        elif kind == "churn":
            summary["crashes"] = len(instrument.crashes)
            summary["revivals"] = len(instrument.revivals)
        elif kind == "crash":
            summary["victim"] = instrument.get("victim")
            if "revived_at" in instrument:
                summary["revived_at"] = instrument["revived_at"]
        elif kind == "partition":
            summary["groups"] = [list(group) for group in instrument]
        elif kind == "false_suspicion":
            summary["rounds_launched"] = instrument["rounds_launched"]
        return summary

    def reconfiguration_count(self) -> int:
        replicas = getattr(self.cluster, "replicas", None)
        if replicas and hasattr(replicas[0], "reconfigure_times"):
            return len(replicas[0].reconfigure_times)
        return 0

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.metrics(), sort_keys=True, indent=indent)


# ----------------------------------------------------------------------
# Resolution helpers
# ----------------------------------------------------------------------
def resolve_deployment(name: str, seed: int = 0) -> Deployment:
    """Named city set, or ``wonderproxy-N`` for a seeded random one."""
    match = _WONDERPROXY.match(name.lower())
    if match:
        n = int(match.group(1))
        if n < 4:
            raise ValueError("wonderproxy deployments need >= 4 replicas")
        return random_world_deployment(
            n, random.Random(seed), name=f"wonderproxy-{n}"
        )
    canonical = NAMED_DEPLOYMENTS.get(name.lower())
    if canonical is None:
        known = ", ".join(sorted(NAMED_DEPLOYMENTS.values()))
        raise ValueError(
            f"unknown deployment {name!r} (known: {known}, wonderproxy-N)"
        )
    return deployment_for(canonical)


def optitree_tree(
    deployment: Deployment, f: int, seed: int, search_iterations: int
):
    """The Fig. 9 OptiTree construction: one annealing search over the
    link-latency matrix, ranked with k = 2f+1 (§7.3)."""
    latency = deployment.latency.matrix_seconds() / 2.0
    n = deployment.n
    result = optitree_search(
        latency,
        n,
        f,
        candidates=frozenset(range(n)),
        u=0,
        rng=random.Random(seed),
        schedule=AnnealingSchedule(
            iterations=search_iterations, initial_temperature=0.05, cooling=0.9995
        ),
        k=2 * f + 1,
    )
    return result.best_state


def _resolve_workload(scenario: Scenario) -> Optional[Workload]:
    if isinstance(scenario.workload, Workload):
        if scenario.workload_params:
            raise ValueError(
                "workload_params only apply to named workloads; configure "
                "the Workload instance directly instead"
            )
        return scenario.workload
    if scenario.workload == "saturated":
        if scenario.workload_params:
            raise ValueError("'saturated' takes no workload params")
        return None
    return make_workload(scenario.workload, **scenario.workload_params)


# ----------------------------------------------------------------------
# Cluster construction
# ----------------------------------------------------------------------
def _build_cluster(
    scenario: Scenario, deployment: Deployment, workload: Optional[Workload]
):
    family, variant = PROTOCOLS[scenario.protocol]
    n = deployment.n
    f = (n - 1) // 3
    if family == "pbft":
        if workload is None:
            raise ValueError(
                "PBFT is client-driven; pick a client workload, not 'saturated'"
            )
        cluster = PbftCluster(
            deployment,
            mode=variant,
            seed=scenario.seed,
            delta=scenario.delta,
            jitter=scenario.jitter,
            client_city_index=scenario.client_city,
            workload=workload,
        )
        policy = scenario.measurements or MeasurementPolicy()
        if variant != "static":
            cluster.schedule_measurements(
                probe_at=policy.probe_at,
                publish_at=policy.publish_at,
                first_search_at=policy.first_search_at,
                search_period=policy.search_period,
                horizon=policy.horizon
                if policy.horizon is not None
                else scenario.duration,
            )
        return cluster
    if family == "hotstuff":
        if variant == "fixed":
            # Random fixed leader, per §7.4.
            leader = random.Random(scenario.seed).randrange(n)
            cluster = HotStuffCluster(
                deployment,
                leader_mode="fixed",
                fixed_leader=leader,
                seed=scenario.seed,
                jitter=scenario.jitter,
            )
        else:
            cluster = HotStuffCluster(
                deployment, leader_mode="rr", seed=scenario.seed,
                jitter=scenario.jitter,
            )
        if workload is not None:
            cluster.attach_workload(workload, client_city=scenario.client_city or 0)
        return cluster
    # family == "kauri"
    if variant == "random-tree":
        tree = KauriReconfigurer(n, rng=random.Random(scenario.seed)).tree_for_bin(0)
        depth = (
            scenario.pipeline_depth
            if scenario.pipeline_depth is not None
            else PIPELINE_DEPTH
        )
    else:
        tree = optitree_tree(deployment, f, scenario.seed, scenario.search_iterations)
        if scenario.pipeline_depth is not None:
            depth = scenario.pipeline_depth
        else:
            depth = 1 if variant == "optitree-nopipe" else PIPELINE_DEPTH
    cluster = KauriCluster(
        deployment,
        tree,
        pipeline_depth=depth,
        seed=scenario.seed,
        jitter=scenario.jitter,
        delta=scenario.delta,
    )
    if workload is not None:
        cluster.attach_workload(workload, client_city=scenario.client_city or 0)
    return cluster


# ----------------------------------------------------------------------
# Fault scheduling
# ----------------------------------------------------------------------
def _resolve_attacker(attacker: Union[int, str], cluster) -> int:
    """One replica id from an id or a live-resolved role name."""
    if isinstance(attacker, int):
        return attacker
    if attacker == "leader":
        if hasattr(cluster, "current_leader"):
            return cluster.current_leader
        raise ValueError("'leader' fault target needs a PBFT cluster")
    if attacker == "root":
        if hasattr(cluster, "tree"):
            return cluster.tree.root
        raise ValueError("'root' fault target needs a Kauri cluster")
    raise ValueError(f"unknown fault target {attacker!r}")


def _resolve_attackers(attacker: Union[int, str, Tuple[int, ...]], cluster) -> List[int]:
    """A set of replica ids: id, tuple of ids, or a role name."""
    if isinstance(attacker, (tuple, list)):
        return [int(a) for a in attacker]
    if attacker == "intermediates":
        if hasattr(cluster, "tree"):
            return sorted(cluster.tree.intermediates)
        raise ValueError("'intermediates' fault target needs a Kauri cluster")
    return [_resolve_attacker(attacker, cluster)]


def _catch_up(cluster, victim: int) -> None:
    """Fast-forward a revived replica from the most advanced live peer.

    Models the state transfer every production BFT system performs on
    rejoin: the replica adopts committed state so it cannot propose stale
    sequence numbers, vote on heights it slept through, or follow a
    leader that was voted out while it was down.
    """
    replicas = getattr(cluster, "replicas", None)
    if not replicas:
        return
    network = cluster.network
    peers = [
        replica
        for replica in replicas
        if replica.id != victim and not network.is_down(replica.id)
    ]
    if not peers:
        return
    replica = replicas[victim]
    if hasattr(replica, "next_height"):  # Kauri / OptiTree
        donor = max(peers, key=lambda peer: peer.committed_height)
        # Blocks the victim proposed into the void while down are dead
        # (every send from a down node is dropped): hand their stranded
        # requests to the live root, exactly as a tree change does.
        # N.B. a revived *root* additionally needs a reconfiguration
        # (Fig. 15's install_tree) before it proposes again; catch-up
        # restores state, it does not resurrect a stalled pipeline.
        recovered = (
            cluster._uncommitted_requests(replica)
            if hasattr(cluster, "_uncommitted_requests")
            else []
        )
        replica.next_height = max(replica.next_height, donor.next_height)
        replica.committed_height = max(
            replica.committed_height, donor.committed_height
        )
        replica._claimed_requests |= donor._claimed_requests
        if recovered:
            root = replicas[cluster.tree.root]
            for request in recovered:
                root._claimed_requests.discard(
                    (request.client_id, request.request_id)
                )
            root.pending_requests.extend(recovered)
    elif hasattr(replica, "high_qc"):  # HotStuff
        donor = max(peers, key=lambda peer: peer.committed_height)
        replica.blocks.update(donor.blocks)
        replica.block_at_height.update(donor.block_at_height)
        replica.committed_height = max(replica.committed_height, donor.committed_height)
        replica.last_voted_height = max(
            replica.last_voted_height, donor.last_voted_height
        )
        if donor.high_qc is not None and (
            replica.high_qc is None or donor.high_qc.view > replica.high_qc.view
        ):
            replica.high_qc = donor.high_qc
        replica._claimed_requests |= donor._claimed_requests
    elif hasattr(replica, "executed_seq"):  # PBFT
        donor = max(peers, key=lambda peer: peer.executed_seq)
        replica.config = donor.config
        replica.pending_config = None
        replica.seq = max(replica.seq, donor.seq)
        replica.executed_seq = max(replica.executed_seq, donor.executed_seq)
        replica._committed_requests |= donor._committed_requests
        replica.in_flight = None
        if replica.optilog is not None and donor.optilog is not None:
            # Replay the committed records the replica slept through, so
            # its monitors converge with the fleet (the log is a prefix
            # of the donor's: commit order is total).
            mine = replica.optilog.pipeline.log
            theirs = donor.optilog.pipeline.log
            for entry in list(theirs)[len(mine):]:
                mine.append(entry.record, view=entry.view)


def _partition_groups(spec: FaultSpec, cluster) -> List[List[int]]:
    if "groups" in spec.params:
        return [[int(node) for node in group] for group in spec.params["groups"]]
    victim = _resolve_attacker(spec.params["isolate"], cluster)
    others = [node for node in range(cluster.n) if node != victim]
    return [[victim], others]


def _churn_pool(spec: FaultSpec, cluster) -> List[int]:
    victims = spec.params.get("victims", "all")
    if victims == "all":
        return list(range(cluster.n))
    return _resolve_attackers(victims, cluster)


def _schedule_fault(spec: FaultSpec, cluster, index: int, instruments: List) -> None:
    """Arm one FaultSpec against the live cluster.

    Role names resolve when the fault *fires* (``schedule_at(start, ...)``),
    so ``attacker="leader"`` means whoever leads at that moment.  Any
    private randomness (loss draws, random churn victims) is derived here,
    at scheduling time, in fault-list order -- scenarios without such
    faults perform no extra ``derive_rng`` calls and stay bit-identical.
    """
    sim = cluster.sim
    network = cluster.network
    params = spec.params

    def now_fn() -> float:
        return sim.now

    if spec.kind == "delay":

        def launch_delay() -> None:
            attack = DelayAttack(
                attacker=_resolve_attacker(spec.attacker, cluster),
                message_types=spec.message_types or ("PrePrepare",),
                extra_delay=spec.extra_delay,
                start=spec.start,
                end=spec.end,
                now_fn=now_fn,
            )
            network.add_interceptor(attack)
            instruments.append((index, "delay", attack))

        sim.schedule_at(spec.start, launch_delay)

    elif spec.kind == "delta_delay":

        def launch_delta() -> None:
            attackers = _resolve_attackers(spec.attacker, cluster)
            delta = params.get("delta", 1.2)
            if params.get("adaptive", False):
                attack = StealthDelayAttack(
                    attackers,
                    delta,
                    expected_delay=network.one_way_delay,
                    headroom=params.get("headroom", 0.95),
                    message_types=spec.message_types,
                    start=spec.start,
                    end=spec.end,
                    now_fn=now_fn,
                )
            else:
                attack = DeltaDelayAttack(
                    attackers,
                    delta,
                    message_types=spec.message_types or ("Forward", "AggregateVote"),
                    start=spec.start,
                    end=spec.end,
                    now_fn=now_fn,
                )
            network.add_interceptor(attack)
            instruments.append((index, "delta_delay", attack))

        sim.schedule_at(spec.start, launch_delta)

    elif spec.kind == "crash":
        state: Dict[str, Any] = {}

        def launch_crash() -> None:
            victim = _resolve_attacker(spec.attacker, cluster)
            network.set_down(victim)
            state["victim"] = victim
            instruments.append((index, "crash", state))

        sim.schedule_at(spec.start, launch_crash)
        if spec.end != math.inf:

            def revive_crash() -> None:
                victim = state.get("victim")
                if victim is not None:
                    network.set_down(victim, False)
                    _catch_up(cluster, victim)
                    state["revived_at"] = sim.now

            sim.schedule_at(spec.end, revive_crash)

    elif spec.kind == "churn":
        churn_rng = (
            sim.derive_rng(f"fault-{index}-churn")
            if params.get("random", False)
            else None
        )

        def launch_churn() -> None:
            schedule = ChurnSchedule(
                sim, network, on_revive=lambda node: _catch_up(cluster, node)
            )
            schedule.cycle(
                _churn_pool(spec, cluster),
                period=params.get("period", 10.0),
                downtime=params.get("downtime", 3.0),
                start=sim.now,
                end=spec.end,
                rng=churn_rng,
            )
            instruments.append((index, "churn", schedule))

        sim.schedule_at(spec.start, launch_churn)

    elif spec.kind == "partition":
        partition_state: Dict[str, Any] = {}

        def launch_partition() -> None:
            groups = _partition_groups(spec, cluster)
            partition_state["epoch"] = network.partition(groups)
            instruments.append((index, "partition", groups))

        def heal_partition() -> None:
            # The epoch keeps overlapping partition specs honest: if a
            # later spec re-partitioned the network, this heal is a no-op
            # rather than wiping the newer partition early.
            if "epoch" in partition_state:
                network.heal(partition_state["epoch"])

        sim.schedule_at(spec.start, launch_partition)
        if spec.end != math.inf:
            sim.schedule_at(spec.end, heal_partition)

    elif spec.kind == "loss":
        attack = MessageLoss(
            rate=params["rate"],
            rng=sim.derive_rng(f"fault-{index}-loss"),
            senders=params.get("senders"),
            message_types=spec.message_types,
            start=spec.start,
            end=spec.end,
            now_fn=now_fn,
        )
        network.add_interceptor(attack)
        instruments.append((index, "loss", attack))

    elif spec.kind == "false_suspicion":
        if getattr(cluster.replicas[0], "optilog", None) is None:
            raise ValueError(
                "false_suspicion faults need an OptiLog-bearing cluster "
                "(protocol pbft-aware or pbft-optiaware)"
            )
        pool = (
            list(spec.attacker)
            if isinstance(spec.attacker, (tuple, list))
            else [spec.attacker]
        )
        period = params.get("period", 10.0)
        rounds = params.get("rounds", len(pool))
        counters = {"rounds_launched": 0}
        instruments.append((index, "false_suspicion", counters))

        def fire_suspicion(round_index: int) -> None:
            attacker = pool[round_index % len(pool)]
            target = _resolve_attacker(params.get("target", "leader"), cluster)
            if target == attacker:
                # Self-suspicions are dropped by the monitor; smear the
                # next replica instead so the round is not wasted.
                target = (target + 1) % cluster.n
            replica = cluster.replicas[attacker]
            # The full power of a Byzantine replica: log any measurement
            # it likes.  The fabricated ⟨Slow⟩ rides the normal record
            # path (gossip -> leader block -> commit); once committed,
            # the correct target reciprocates (condition (c)) and the
            # resulting edge degrades the candidate set K.
            record = SuspicionRecord(
                reporter=attacker,
                suspect=target,
                kind=SuspicionKind.SLOW,
                round_id=1_000_000 + counters["rounds_launched"],
                msg_type="write",
                phase=2,
                view=replica.log_view,
            )
            replica._gossip_record(record)
            counters["rounds_launched"] += 1
            if round_index + 1 < rounds and sim.now + period <= spec.end:
                sim.schedule(period, fire_suspicion, round_index + 1)

        sim.schedule_at(spec.start, fire_suspicion, 0)

    else:  # pragma: no cover - __post_init__ rejects unknown kinds
        raise ValueError(f"unknown fault kind {spec.kind!r}")


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute one scenario end-to-end, deterministically under its seed."""
    if scenario.protocol not in PROTOCOLS:
        known = ", ".join(sorted(PROTOCOLS))
        raise ValueError(
            f"unknown protocol {scenario.protocol!r} (known: {known})"
        )
    deployment = resolve_deployment(scenario.deployment, seed=scenario.seed)
    workload = _resolve_workload(scenario)
    cluster = _build_cluster(scenario, deployment, workload)
    instruments: List[Tuple[int, str, Any]] = []
    for index, fault in enumerate(scenario.faults):
        _schedule_fault(fault, cluster, index, instruments)
    run_metrics = cluster.run(scenario.duration)
    return ScenarioResult(
        scenario=scenario,
        cluster=cluster,
        run_metrics=run_metrics,
        workload=workload,
        fault_instruments=instruments,
    )
