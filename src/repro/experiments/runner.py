"""Unified scenario runner: protocol x deployment x workload x faults.

A :class:`Scenario` declaratively combines

* a **protocol** -- ``pbft`` / ``pbft-aware`` / ``pbft-optiaware``
  (three-phase engine hosting Aware/OptiAware), ``hotstuff-fixed`` /
  ``hotstuff-rr``, ``kauri`` (pipelined, random tree), ``optitree`` /
  ``optitree-nopipe`` (tree from simulated annealing);
* a **deployment** -- one of the paper's named city sets (``Europe21``,
  ``NA-EU43``, ``Global73``, ``Stellar56``) or ``wonderproxy-N`` for a
  seeded random world placement of ``N`` replicas drawn from the
  WonderProxy-derived city table;
* a **workload** -- any name registered in :data:`repro.workloads.WORKLOADS`
  plus ``saturated`` (no clients; HotStuff/Kauri self-clock full blocks,
  the paper's §7.3 regime);
* a **fault schedule** -- :class:`FaultSpec` entries (delay / δ-bounded /
  stealth delay attacks, crashes with revival, churn cycles, link-level
  partitions, probabilistic message loss, fabricated false suspicions)
  resolved against the live cluster at their start times;
* a **reconfiguration policy** -- :class:`MeasurementPolicy`, the
  probe/publish/search cadence driving Aware/OptiAware reconfiguration.

:func:`run_scenario` builds the cluster, attaches everything, runs the
simulation and returns a :class:`ScenarioResult` whose
:meth:`ScenarioResult.metrics` dict (throughput, commit-latency
percentiles, reconfiguration count, message totals) serialises to
bit-identical JSON for identical scenarios.  The figure drivers (fig7,
fig9) and the ``python -m repro`` CLI are thin layers over this module.
"""

from __future__ import annotations

import json
import math
import random
import re
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.consensus.base import RunMetrics
from repro.consensus.hotstuff import HotStuffCluster
from repro.consensus.kauri import KauriCluster
from repro.consensus.pbft import PbftCluster
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.faults.churn import ChurnSchedule
from repro.faults.delay import DelayAttack, DeltaDelayAttack, StealthDelayAttack
from repro.faults.loss import MessageLoss
from repro.net.deployments import Deployment, deployment_for, random_world_deployment
from repro.optimize.annealing import AnnealingSchedule
from repro.sim.engine import SimClock
from repro.sim.network import MESSAGE_PLANES
from repro.tree.kauri_reconfig import KauriReconfigurer
from repro.tree.optitree import optitree_search
from repro.workloads import PIPELINE_DEPTH, Workload, make_workload

#: Protocols the runner can build, mapped to (family, variant).
PROTOCOLS: Dict[str, Tuple[str, str]] = {
    "pbft": ("pbft", "static"),
    "pbft-aware": ("pbft", "aware"),
    "pbft-optiaware": ("pbft", "optiaware"),
    "hotstuff-fixed": ("hotstuff", "fixed"),
    "hotstuff-rr": ("hotstuff", "rr"),
    "kauri": ("kauri", "random-tree"),
    "optitree": ("kauri", "optitree"),
    "optitree-nopipe": ("kauri", "optitree-nopipe"),
}

#: Named deployments, keyed by lowercase alias.
NAMED_DEPLOYMENTS = {
    "europe21": "Europe21",
    "na-eu43": "NA-EU43",
    "global73": "Global73",
    "stellar56": "Stellar56",
}

_WONDERPROXY = re.compile(r"^wonderproxy-(\d+)$")

#: ``world-N[-jK][-check]``: the wonderproxy city draw served by the
#: hierarchical (O(n + r^2)) latency substrate.  ``-jK`` jitters repeat
#: placements up to K route-km from their anchor; ``-check`` attaches
#: the bit-identity / self-consistency verification twin.
_WORLD = re.compile(r"^world-(\d+)(?:-j(\d+))?(-check)?$")

#: ``topo-N[-jK][-check][@path]``: replicas over an internet topology
#: graph (GML or edge list at ``path``; the bundled example otherwise).
_TOPO = re.compile(r"^topo-(\d+)(?:-j(\d+))?(-check)?(?:@(.+))?$")


#: Every fault kind the runner can schedule.
FAULT_KINDS = (
    "delay",
    "delta_delay",
    "crash",
    "churn",
    "partition",
    "loss",
    "false_suspicion",
)

#: Per-kind ``params`` vocabulary; an unknown key is a loud error so a
#: typo'd knob cannot silently leave an adversary unconfigured.
_FAULT_PARAMS: Dict[str, Tuple[str, ...]] = {
    "delay": (),
    "delta_delay": ("delta", "adaptive", "headroom"),
    "crash": (),
    "churn": ("period", "downtime", "victims", "random"),
    "partition": ("groups", "isolate"),
    "loss": ("rate", "senders"),
    "false_suspicion": ("target", "period", "rounds"),
}


@dataclass
class FaultSpec:
    """One scheduled adversarial behaviour, active ``[start, end]``.

    ``attacker`` is a replica id, a tuple of ids, or a role name resolved
    when the fault fires: ``"leader"`` (PBFT's current leader), ``"root"``
    (Kauri's tree root), ``"intermediates"`` (Kauri's internal tree
    nodes).  ``params`` carries kind-specific knobs:

    ============== =====================================================
    ``delay``      fixed ``extra_delay`` on ``message_types`` (Fig. 7)
    ``delta_delay`` link stretch by ``delta``; ``adaptive=True`` switches
                   to the stay-below-``δ·d_m`` stealth adversary with
                   ``headroom`` (Fig. 11 / §7.6)
    ``crash``      node down at ``start``; a finite ``end`` revives it
                   with catch-up
    ``churn``      crash/recover cycles: ``period``, ``downtime``,
                   ``victims`` (ids or ``"intermediates"``/``"all"``),
                   ``random`` victim choice
    ``partition``  link-level split: ``groups`` (iterables of ids) or
                   ``isolate`` (id or role); heals at ``end``
    ``loss``       drop probability ``rate``, optional ``senders`` filter
    ``false_suspicion`` fabricated ⟨Slow⟩ records from the ``attacker``
                   pool against ``target`` (Fig. 10's smear campaign),
                   one round every ``period`` s, up to ``rounds``
    ============== =====================================================
    """

    kind: str = "delay"
    start: float = 0.0
    end: float = math.inf
    attacker: Union[int, str, Tuple[int, ...]] = "leader"
    extra_delay: float = 0.5
    message_types: Optional[Tuple[str, ...]] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (known: {', '.join(FAULT_KINDS)})"
            )
        if self.start < 0:
            raise ValueError(
                f"fault start {self.start} is negative; simulation time "
                "starts at 0, so the pre-zero portion would silently never "
                "apply"
            )
        if self.end < self.start:
            raise ValueError(
                f"fault end {self.end} precedes start {self.start}"
            )
        if isinstance(self.message_types, str):
            # A bare string would iterate as characters inside DelayAttack
            # and silently never match any message type.
            self.message_types = (self.message_types,)
        elif isinstance(self.message_types, list):
            self.message_types = tuple(self.message_types)
        if self.message_types is not None:
            from repro.consensus import messages as protocol_messages

            for name in self.message_types:
                # A typo'd type would make the attack match nothing and
                # the experiment silently report healthy numbers.
                if not isinstance(getattr(protocol_messages, name, None), type):
                    raise ValueError(
                        f"unknown message type {name!r} in fault spec"
                    )
        allowed = _FAULT_PARAMS[self.kind]
        for key in self.params:
            if key not in allowed:
                raise ValueError(
                    f"unknown param {key!r} for fault kind {self.kind!r}"
                    f" (known: {', '.join(allowed) or 'none'})"
                )
        if self.kind == "loss":
            rate = self.params.get("rate")
            if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
                raise ValueError(f"loss fault needs params rate in [0, 1], got {rate!r}")
            senders = self.params.get("senders")
            if senders is not None:
                if isinstance(senders, int):
                    self.params["senders"] = (senders,)
                elif isinstance(senders, (tuple, list, set)) and all(
                    isinstance(node, int) for node in senders
                ):
                    self.params["senders"] = tuple(sorted(senders))
                else:
                    # set("leader") would silently match nothing.
                    raise ValueError(
                        f"loss senders must be replica ids, got {senders!r}"
                    )
        if self.kind == "partition":
            if ("groups" in self.params) == ("isolate" in self.params):
                raise ValueError(
                    "partition fault needs exactly one of params "
                    "'groups' (iterables of ids) or 'isolate' (id or role)"
                )
        if self.kind == "churn":
            for knob in ("period", "downtime"):
                value = self.params.get(knob)
                if value is not None and (
                    not isinstance(value, (int, float)) or value <= 0
                ):
                    raise ValueError(f"churn {knob} must be positive, got {value!r}")
        if self.kind == "delta_delay":
            delta = self.params.get("delta")
            if delta is not None and (
                not isinstance(delta, (int, float)) or delta <= 0
            ):
                raise ValueError(f"delta_delay delta must be positive, got {delta!r}")
        if self.kind == "false_suspicion":
            pool = (
                self.attacker
                if isinstance(self.attacker, (tuple, list))
                else (self.attacker,)
            )
            if not pool or not all(isinstance(a, int) for a in pool):
                raise ValueError(
                    "false_suspicion needs explicit attacker replica ids "
                    f"(the faulty pool), got {self.attacker!r}"
                )


def _concrete_attacker_ids(attacker: Union[int, str, Tuple[int, ...]]) -> Tuple[int, ...]:
    """The replica ids a spec names statically (roles resolve at fire time)."""
    if isinstance(attacker, int):
        return (attacker,)
    if isinstance(attacker, (tuple, list)):
        return tuple(a for a in attacker if isinstance(a, int))
    return ()


def validate_fault_composition(faults: Sequence["FaultSpec"]) -> None:
    """Reject fault *combinations* that would run but lie.

    Each :class:`FaultSpec` validates its own knobs; this checks the
    cross-spec invariants the adversary-synthesis compiler (and any
    hand-authored scenario) must respect:

    * **Overlapping crash windows on one replica** -- the second crash
      fires on an already-down node and its revival silently truncates
      or extends the first window, so the schedule that *ran* is not the
      schedule that was *written*.
    * **Revival inside a partition** -- crash recovery performs modeled
      state transfer from a live donor, ignoring partition reachability;
      a replica revived mid-split would read state across the cut.

    Raises ``ValueError`` naming the offending fault indices.  Called
    from ``Scenario.__post_init__`` so invalid compositions fail at
    construction, not as silently-wrong metrics.
    """
    crash_windows: Dict[int, List[Tuple[float, float, int]]] = {}
    partitions: List[Tuple[float, float, int]] = []
    for index, spec in enumerate(faults):
        if spec.kind == "crash":
            for victim in _concrete_attacker_ids(spec.attacker):
                crash_windows.setdefault(victim, []).append(
                    (spec.start, spec.end, index)
                )
        elif spec.kind == "partition":
            partitions.append((spec.start, spec.end, index))
    for victim, windows in sorted(crash_windows.items()):
        ordered = sorted(windows)
        for (s1, e1, i1), (s2, e2, i2) in zip(ordered, ordered[1:]):
            if s2 <= e1:
                raise ValueError(
                    f"faults[{i1}] and faults[{i2}] schedule overlapping "
                    f"crash windows [{s1}, {e1}] and [{s2}, {e2}] on "
                    f"replica {victim}; the later crash would fire on an "
                    "already-down node and its revival would silently "
                    "rewrite the first window"
                )
    for index, spec in enumerate(faults):
        if spec.kind != "crash" or not math.isfinite(spec.end):
            continue
        for p_start, p_end, p_index in partitions:
            if p_start < spec.end < p_end:
                raise ValueError(
                    f"faults[{index}] revives a crashed replica at "
                    f"t={spec.end} inside the partition of "
                    f"faults[{p_index}] [{p_start}, {p_end}]; crash "
                    "recovery's state transfer ignores partition "
                    "reachability, so the revived node would read state "
                    "across the split -- revive after the partition heals"
                )


#: How a scenario measures: the exact per-commit path, the O(1)-memory
#: streaming sketches, or both at once with a divergence check.
METRICS_MODES = ("exact", "sketch", "check")


@dataclass
class MeasurementPolicy:
    """Aware/OptiAware reconfiguration cadence (the Fig. 7 schedule):
    probe peers, publish latency vectors, then search periodically.

    Also selects the measurement plane: ``metrics="exact"`` (default)
    materialises every commit/latency sample; ``"sketch"`` streams them
    into the mergeable O(1)-memory sketches from :mod:`repro.metrics`
    (quantiles within the documented error bound); ``"check"`` runs both
    and raises :class:`repro.metrics.MeasurementDivergence` if the
    sketch strays outside its bound -- the checked-twin pattern
    ``check_score``/``check_rebuild`` use for the role-assignment fast
    paths.  ``window`` fixes the throughput-timeline granularity and
    ``bins_per_decade`` the histogram resolution for the sketch modes.
    """

    probe_at: float = 5.0
    publish_at: float = 15.0
    first_search_at: float = 40.0
    search_period: float = 25.0
    horizon: Optional[float] = None  # defaults to the scenario duration
    metrics: str = "exact"
    window: float = 1.0
    bins_per_decade: int = 100

    def __post_init__(self) -> None:
        if self.metrics not in METRICS_MODES:
            raise ValueError(
                f"unknown metrics mode {self.metrics!r} "
                f"(known: {', '.join(METRICS_MODES)})"
            )
        if self.window <= 0:
            raise ValueError(f"metrics window must be positive, got {self.window!r}")
        if self.bins_per_decade < 1:
            raise ValueError(
                f"bins_per_decade must be >= 1, got {self.bins_per_decade!r}"
            )


@dataclass
class Scenario:
    """A declarative experiment: everything needed to reproduce one run."""

    protocol: str = "pbft"
    deployment: str = "Europe21"
    workload: Union[str, Workload] = "closed-loop"
    workload_params: Dict[str, Any] = field(default_factory=dict)
    duration: float = 30.0
    seed: int = 0
    delta: float = 1.0
    jitter: float = 0.02
    client_city: Optional[int] = None
    faults: List[FaultSpec] = field(default_factory=list)
    measurements: Optional[MeasurementPolicy] = None
    search_iterations: int = 20_000  # OptiTree's annealing budget
    pipeline_depth: Optional[int] = None
    #: Message plane: ``"object"`` (one heap event per message),
    #: ``"columnar"`` (batched record deliveries, bit-identical results)
    #: or ``"check"`` (run both, assert identical state-trace hashes).
    #: Scenarios with scheduled faults always run on the object plane
    #: regardless of this setting -- see :func:`_effective_plane`.
    plane: str = "object"
    name: str = ""

    def __post_init__(self) -> None:
        if self.plane not in MESSAGE_PLANES:
            raise ValueError(
                f"unknown message plane {self.plane!r} "
                f"(known: {', '.join(MESSAGE_PLANES)})"
            )
        validate_fault_composition(self.faults)

    def describe(self) -> Dict[str, Any]:
        """JSON-able identity of the scenario (what was run)."""
        workload = (
            self.workload if isinstance(self.workload, str) else self.workload.name
        )
        out = {
            "name": self.name or f"{self.protocol}/{self.deployment}/{workload}",
            "protocol": self.protocol,
            "deployment": self.deployment,
            "workload": workload,
            "workload_params": dict(sorted(self.workload_params.items())),
            "duration": self.duration,
            "seed": self.seed,
            "delta": self.delta,
            "jitter": self.jitter,
            "client_city": self.client_city,
            "search_iterations": self.search_iterations,
            "pipeline_depth": self.pipeline_depth,
            "measurements": (
                asdict(self.measurements) if self.measurements is not None else None
            ),
            "faults": [asdict(fault) for fault in self.faults],
        }
        # The plane changes *how* messages are delivered, never *what*
        # the run computes, so the default plane is omitted: golden
        # files, checkpoint scenario identity and every pre-existing
        # describe() consumer see byte-identical output.
        if self.plane != "object":
            out["plane"] = self.plane
        return out


@dataclass
class ScenarioResult:
    """Outcome of one scenario: live objects plus JSON-able metrics."""

    scenario: Scenario
    cluster: Any
    #: ``RunMetrics`` or a streaming twin; None until the cluster has run
    #: (``prepare_scenario`` hands out armed-but-unrun results).
    run_metrics: Optional[RunMetrics]
    workload: Optional[Workload]
    #: Live adversary objects created while the run executed, as
    #: ``(fault_index, kind, instrument)`` tuples -- empty for fault-free
    #: scenarios (whose metrics JSON is therefore unchanged).
    fault_instruments: List[Tuple[int, str, Any]] = field(default_factory=list)

    def metrics(self) -> Dict[str, Any]:
        duration = self.scenario.duration
        out: Dict[str, Any] = {
            "scenario": self.scenario.describe(),
            "throughput_rps": self.run_metrics.throughput(duration),
            "committed_requests": self.run_metrics.total_requests(),
            "committed_blocks": self.run_metrics.committed_blocks(),
            "reconfigurations": self.reconfiguration_count(),
            "messages_sent": self.cluster.network.stats.messages_sent,
            "messages_delivered": self.cluster.network.stats.messages_delivered,
            "bytes_sent": self.cluster.network.stats.bytes_sent,
        }
        # Polymorphic over exact RunMetrics and the streaming twins: the
        # exact summary reproduces the historical inline computation
        # bit-for-bit, so fault-free golden files are unchanged.
        commit_latency = self.run_metrics.latency_summary()
        if commit_latency is not None:
            out["commit_latency"] = commit_latency
        if self.workload is not None:
            out["client"] = self.workload.summary()
        if self.fault_instruments:
            out["fault_activity"] = [
                self._instrument_summary(fault_index, kind, instrument)
                for fault_index, kind, instrument in sorted(
                    self.fault_instruments, key=lambda entry: entry[0]
                )
            ]
        return out

    @staticmethod
    def _instrument_summary(fault_index: int, kind: str, instrument: Any) -> Dict[str, Any]:
        summary: Dict[str, Any] = {"fault": fault_index, "kind": kind}
        if kind in ("delay", "delta_delay"):
            summary["messages_delayed"] = instrument.messages_delayed
        elif kind == "loss":
            summary["messages_lost"] = instrument.messages_lost
            summary["messages_seen"] = instrument.messages_seen
        elif kind == "churn":
            summary["crashes"] = len(instrument.crashes)
            summary["revivals"] = len(instrument.revivals)
        elif kind == "crash":
            summary["victim"] = instrument.get("victim")
            if "revived_at" in instrument:
                summary["revived_at"] = instrument["revived_at"]
        elif kind == "partition":
            summary["groups"] = [list(group) for group in instrument]
        elif kind == "false_suspicion":
            summary["rounds_launched"] = instrument["rounds_launched"]
        return summary

    def reconfiguration_count(self) -> int:
        replicas = getattr(self.cluster, "replicas", None)
        if replicas and hasattr(replicas[0], "reconfigure_times"):
            return len(replicas[0].reconfigure_times)
        return 0

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.metrics(), sort_keys=True, indent=indent)


# ----------------------------------------------------------------------
# Resolution helpers
# ----------------------------------------------------------------------
def resolve_deployment(name: str, seed: int = 0) -> Deployment:
    """Named city set, ``wonderproxy-N`` for a seeded random one, or the
    hierarchical substrates ``world-N[-jK][-check]`` /
    ``topo-N[-jK][-check][@path]`` (see :mod:`repro.net.hierarchy`)."""
    match = _WONDERPROXY.match(name.lower())
    if match:
        n = int(match.group(1))
        if n < 4:
            raise ValueError("wonderproxy deployments need >= 4 replicas")
        return random_world_deployment(
            n, random.Random(seed), name=f"wonderproxy-{n}"
        )
    match = _WORLD.match(name.lower())
    if match:
        n = int(match.group(1))
        if n < 4:
            raise ValueError("world deployments need >= 4 replicas")
        return random_world_deployment(
            n,
            random.Random(seed),
            name=name.lower(),
            hierarchical=True,
            jitter_km=float(match.group(2) or 0),
            check=bool(match.group(3)),
        )
    match = _TOPO.match(name)
    if match:
        from repro.net.topology_graph import topology_deployment

        n = int(match.group(1))
        if n < 4:
            raise ValueError("topo deployments need >= 4 replicas")
        return topology_deployment(
            n,
            random.Random(seed),
            name=name,
            path=match.group(4),
            jitter_km=float(match.group(2) or 0),
            check=bool(match.group(3)),
        )
    canonical = NAMED_DEPLOYMENTS.get(name.lower())
    if canonical is None:
        known = ", ".join(sorted(NAMED_DEPLOYMENTS.values()))
        raise ValueError(
            f"unknown deployment {name!r} (known: {known}, wonderproxy-N, "
            "world-N[-jK][-check], topo-N[-jK][-check][@path])"
        )
    return deployment_for(canonical)


def optitree_tree(
    deployment: Deployment, f: int, seed: int, search_iterations: int
):
    """The Fig. 9 OptiTree construction: one annealing search over the
    link-latency matrix, ranked with k = 2f+1 (§7.3)."""
    latency = deployment.latency.matrix_seconds() / 2.0
    n = deployment.n
    result = optitree_search(
        latency,
        n,
        f,
        candidates=frozenset(range(n)),
        u=0,
        rng=random.Random(seed),
        schedule=AnnealingSchedule(
            iterations=search_iterations, initial_temperature=0.05, cooling=0.9995
        ),
        k=2 * f + 1,
    )
    return result.best_state


def _resolve_workload(scenario: Scenario) -> Optional[Workload]:
    if isinstance(scenario.workload, Workload):
        if scenario.workload_params:
            raise ValueError(
                "workload_params only apply to named workloads; configure "
                "the Workload instance directly instead"
            )
        return scenario.workload
    if scenario.workload == "saturated":
        if scenario.workload_params:
            raise ValueError("'saturated' takes no workload params")
        return None
    return make_workload(scenario.workload, **scenario.workload_params)


# ----------------------------------------------------------------------
# Cluster construction
# ----------------------------------------------------------------------
def _effective_plane(scenario: Scenario) -> str:
    """Resolve the message plane the cluster will actually use.

    ``"check"``/``"check-fast"`` never reach a cluster (``run_scenario``
    expands them into two full runs; ``prepare_scenario`` rejects them).
    Scenarios with scheduled faults fall back to the object plane: the
    columnar routes only cover pristine traffic, and forcing the
    fallback here keeps faulted runs on the exact code path every golden
    file was recorded against.  (The network additionally falls back
    per-send at runtime if a fault appears outside the scenario's fault
    list.)
    """
    if scenario.plane in ("columnar", "columnar-fast") and scenario.faults:
        return "object"
    return scenario.plane


def _build_cluster(
    scenario: Scenario, deployment: Deployment, workload: Optional[Workload]
):
    family, variant = PROTOCOLS[scenario.protocol]
    n = deployment.n
    f = (n - 1) // 3
    plane = _effective_plane(scenario)
    if family == "pbft":
        if workload is None:
            raise ValueError(
                "PBFT is client-driven; pick a client workload, not 'saturated'"
            )
        cluster = PbftCluster(
            deployment,
            mode=variant,
            seed=scenario.seed,
            delta=scenario.delta,
            jitter=scenario.jitter,
            client_city_index=scenario.client_city,
            workload=workload,
            plane=plane,
        )
        policy = scenario.measurements or MeasurementPolicy()
        if variant != "static":
            cluster.schedule_measurements(
                probe_at=policy.probe_at,
                publish_at=policy.publish_at,
                first_search_at=policy.first_search_at,
                search_period=policy.search_period,
                horizon=policy.horizon
                if policy.horizon is not None
                else scenario.duration,
            )
        return cluster
    if family == "hotstuff":
        if variant == "fixed":
            # Random fixed leader, per §7.4.
            leader = random.Random(scenario.seed).randrange(n)
            cluster = HotStuffCluster(
                deployment,
                leader_mode="fixed",
                fixed_leader=leader,
                seed=scenario.seed,
                jitter=scenario.jitter,
                plane=plane,
            )
        else:
            cluster = HotStuffCluster(
                deployment, leader_mode="rr", seed=scenario.seed,
                jitter=scenario.jitter, plane=plane,
            )
        if workload is not None:
            cluster.attach_workload(workload, client_city=scenario.client_city or 0)
        return cluster
    # family == "kauri"
    if variant == "random-tree":
        tree = KauriReconfigurer(n, rng=random.Random(scenario.seed)).tree_for_bin(0)
        depth = (
            scenario.pipeline_depth
            if scenario.pipeline_depth is not None
            else PIPELINE_DEPTH
        )
    else:
        tree = optitree_tree(deployment, f, scenario.seed, scenario.search_iterations)
        if scenario.pipeline_depth is not None:
            depth = scenario.pipeline_depth
        else:
            depth = 1 if variant == "optitree-nopipe" else PIPELINE_DEPTH
    cluster = KauriCluster(
        deployment,
        tree,
        pipeline_depth=depth,
        seed=scenario.seed,
        jitter=scenario.jitter,
        delta=scenario.delta,
        plane=plane,
    )
    if workload is not None:
        cluster.attach_workload(workload, client_city=scenario.client_city or 0)
    return cluster


# ----------------------------------------------------------------------
# Fault scheduling
# ----------------------------------------------------------------------
def _resolve_attacker(attacker: Union[int, str], cluster) -> int:
    """One replica id from an id or a live-resolved role name."""
    if isinstance(attacker, int):
        return attacker
    if attacker == "leader":
        if hasattr(cluster, "current_leader"):
            return cluster.current_leader
        raise ValueError("'leader' fault target needs a PBFT cluster")
    if attacker == "root":
        if hasattr(cluster, "tree"):
            return cluster.tree.root
        raise ValueError("'root' fault target needs a Kauri cluster")
    raise ValueError(f"unknown fault target {attacker!r}")


def _resolve_attackers(attacker: Union[int, str, Tuple[int, ...]], cluster) -> List[int]:
    """A set of replica ids: id, tuple of ids, or a role name."""
    if isinstance(attacker, (tuple, list)):
        return [int(a) for a in attacker]
    if attacker == "intermediates":
        if hasattr(cluster, "tree"):
            return sorted(cluster.tree.intermediates)
        raise ValueError("'intermediates' fault target needs a Kauri cluster")
    return [_resolve_attacker(attacker, cluster)]


def _catch_up(cluster, victim: int) -> None:
    """Fast-forward a revived replica from the most advanced live peer.

    Models the state transfer every production BFT system performs on
    rejoin: the replica adopts committed state so it cannot propose stale
    sequence numbers, vote on heights it slept through, or follow a
    leader that was voted out while it was down.
    """
    replicas = getattr(cluster, "replicas", None)
    if not replicas:
        return
    network = cluster.network
    peers = [
        replica
        for replica in replicas
        if replica.id != victim and not network.is_down(replica.id)
    ]
    if not peers:
        return
    replica = replicas[victim]
    if hasattr(replica, "next_height"):  # Kauri / OptiTree
        donor = max(peers, key=lambda peer: peer.committed_height)
        # Blocks the victim proposed into the void while down are dead
        # (every send from a down node is dropped): hand their stranded
        # requests to the live root, exactly as a tree change does.
        # N.B. a revived *root* additionally needs a reconfiguration
        # (Fig. 15's install_tree) before it proposes again; catch-up
        # restores state, it does not resurrect a stalled pipeline.
        recovered = (
            cluster._uncommitted_requests(replica)
            if hasattr(cluster, "_uncommitted_requests")
            else []
        )
        replica.next_height = max(replica.next_height, donor.next_height)
        replica.committed_height = max(
            replica.committed_height, donor.committed_height
        )
        replica._claimed_requests |= donor._claimed_requests
        replica._claimed_requests_old |= donor._claimed_requests_old
        if recovered:
            root = replicas[cluster.tree.root]
            for request in recovered:
                key = (request.client_id, request.request_id)
                root._claimed_requests.discard(key)
                root._claimed_requests_old.discard(key)
            root.pending_requests.extend(recovered)
    elif hasattr(replica, "high_qc"):  # HotStuff
        donor = max(peers, key=lambda peer: peer.committed_height)
        replica.blocks.update(donor.blocks)
        replica.block_at_height.update(donor.block_at_height)
        replica.committed_height = max(replica.committed_height, donor.committed_height)
        replica.last_voted_height = max(
            replica.last_voted_height, donor.last_voted_height
        )
        if donor.high_qc is not None and (
            replica.high_qc is None or donor.high_qc.view > replica.high_qc.view
        ):
            replica.high_qc = donor.high_qc
        replica._claimed_requests |= donor._claimed_requests
        replica._claimed_requests_old |= donor._claimed_requests_old
    elif hasattr(replica, "executed_seq"):  # PBFT
        donor = max(peers, key=lambda peer: peer.executed_seq)
        replica.config = donor.config
        replica.pending_config = None
        replica.seq = max(replica.seq, donor.seq)
        replica.executed_seq = max(replica.executed_seq, donor.executed_seq)
        replica._committed_requests |= donor._committed_requests
        replica._committed_requests_old |= donor._committed_requests_old
        replica.in_flight = None
        if replica.optilog is not None and donor.optilog is not None:
            # Replay the committed records the replica slept through, so
            # its monitors converge with the fleet (the log is a prefix
            # of the donor's: commit order is total).
            mine = replica.optilog.pipeline.log
            theirs = donor.optilog.pipeline.log
            for entry in list(theirs)[len(mine):]:
                mine.append(entry.record, view=entry.view)


def _partition_groups(spec: FaultSpec, cluster) -> List[List[int]]:
    if "groups" in spec.params:
        return [[int(node) for node in group] for group in spec.params["groups"]]
    victim = _resolve_attacker(spec.params["isolate"], cluster)
    others = [node for node in range(cluster.n) if node != victim]
    return [[victim], others]


def _churn_pool(spec: FaultSpec, cluster) -> List[int]:
    victims = spec.params.get("victims", "all")
    if victims == "all":
        return list(range(cluster.n))
    return _resolve_attackers(victims, cluster)


class _CatchUp:
    """Picklable ``on_revive`` hook: fast-forward a revived node."""

    __slots__ = ("cluster",)

    def __init__(self, cluster):
        self.cluster = cluster

    def __call__(self, victim: int) -> None:
        _catch_up(self.cluster, victim)


class _FaultDriver:
    """Base for scheduled fault actions.

    Plain classes, not closures: armed faults live in the simulator's
    event heap, which the campaign plane checkpoints with pickle.
    Role names still resolve when the driver *fires*, preserving the
    "whoever leads at that moment" semantics.
    """

    __slots__ = ("spec", "cluster", "index", "instruments")

    def __init__(self, spec: FaultSpec, cluster, index: int, instruments: List):
        self.spec = spec
        self.cluster = cluster
        self.index = index
        self.instruments = instruments


class _DelayLauncher(_FaultDriver):
    __slots__ = ("clock",)

    def __init__(self, spec, cluster, index, instruments, clock):
        super().__init__(spec, cluster, index, instruments)
        self.clock = clock

    def __call__(self) -> None:
        spec = self.spec
        attack = DelayAttack(
            attacker=_resolve_attacker(spec.attacker, self.cluster),
            message_types=spec.message_types or ("PrePrepare",),
            extra_delay=spec.extra_delay,
            start=spec.start,
            end=spec.end,
            now_fn=self.clock,
        )
        self.cluster.network.add_interceptor(attack)
        self.instruments.append((self.index, "delay", attack))


class _DeltaLauncher(_FaultDriver):
    __slots__ = ("clock",)

    def __init__(self, spec, cluster, index, instruments, clock):
        super().__init__(spec, cluster, index, instruments)
        self.clock = clock

    def __call__(self) -> None:
        spec = self.spec
        params = spec.params
        network = self.cluster.network
        attackers = _resolve_attackers(spec.attacker, self.cluster)
        delta = params.get("delta", 1.2)
        if params.get("adaptive", False):
            attack = StealthDelayAttack(
                attackers,
                delta,
                expected_delay=network.one_way_delay,
                headroom=params.get("headroom", 0.95),
                message_types=spec.message_types,
                start=spec.start,
                end=spec.end,
                now_fn=self.clock,
            )
        else:
            attack = DeltaDelayAttack(
                attackers,
                delta,
                message_types=spec.message_types or ("Forward", "AggregateVote"),
                start=spec.start,
                end=spec.end,
                now_fn=self.clock,
            )
        network.add_interceptor(attack)
        self.instruments.append((self.index, "delta_delay", attack))


class _CrashLauncher(_FaultDriver):
    __slots__ = ("state",)

    def __init__(self, spec, cluster, index, instruments, state):
        super().__init__(spec, cluster, index, instruments)
        self.state = state

    def __call__(self) -> None:
        victim = _resolve_attacker(self.spec.attacker, self.cluster)
        self.cluster.network.set_down(victim)
        self.state["victim"] = victim
        self.instruments.append((self.index, "crash", self.state))


class _CrashReviver(_FaultDriver):
    __slots__ = ("state",)

    def __init__(self, spec, cluster, index, instruments, state):
        super().__init__(spec, cluster, index, instruments)
        self.state = state

    def __call__(self) -> None:
        victim = self.state.get("victim")
        if victim is not None:
            cluster = self.cluster
            cluster.network.set_down(victim, False)
            _catch_up(cluster, victim)
            self.state["revived_at"] = cluster.sim.now


class _ChurnLauncher(_FaultDriver):
    __slots__ = ("rng",)

    def __init__(self, spec, cluster, index, instruments, rng):
        super().__init__(spec, cluster, index, instruments)
        self.rng = rng

    def __call__(self) -> None:
        spec = self.spec
        cluster = self.cluster
        sim = cluster.sim
        schedule = ChurnSchedule(
            sim, cluster.network, on_revive=_CatchUp(cluster)
        )
        schedule.cycle(
            _churn_pool(spec, cluster),
            period=spec.params.get("period", 10.0),
            downtime=spec.params.get("downtime", 3.0),
            start=sim.now,
            end=spec.end,
            rng=self.rng,
        )
        self.instruments.append((self.index, "churn", schedule))


class _PartitionLauncher(_FaultDriver):
    __slots__ = ("state",)

    def __init__(self, spec, cluster, index, instruments, state):
        super().__init__(spec, cluster, index, instruments)
        self.state = state

    def __call__(self) -> None:
        groups = _partition_groups(self.spec, self.cluster)
        self.state["epoch"] = self.cluster.network.partition(groups)
        self.instruments.append((self.index, "partition", groups))


class _PartitionHealer(_FaultDriver):
    __slots__ = ("state",)

    def __init__(self, spec, cluster, index, instruments, state):
        super().__init__(spec, cluster, index, instruments)
        self.state = state

    def __call__(self) -> None:
        # The epoch keeps overlapping partition specs honest: if a
        # later spec re-partitioned the network, this heal is a no-op
        # rather than wiping the newer partition early.
        if "epoch" in self.state:
            self.cluster.network.heal(self.state["epoch"])


class _SuspicionDriver(_FaultDriver):
    __slots__ = ("counters", "pool", "period", "rounds")

    def __init__(self, spec, cluster, index, instruments, counters, pool,
                 period, rounds):
        super().__init__(spec, cluster, index, instruments)
        self.counters = counters
        self.pool = pool
        self.period = period
        self.rounds = rounds

    def __call__(self, round_index: int) -> None:
        cluster = self.cluster
        sim = cluster.sim
        attacker = self.pool[round_index % len(self.pool)]
        target = _resolve_attacker(
            self.spec.params.get("target", "leader"), cluster
        )
        if target == attacker:
            # Self-suspicions are dropped by the monitor; smear the
            # next replica instead so the round is not wasted.
            target = (target + 1) % cluster.n
        replica = cluster.replicas[attacker]
        # The full power of a Byzantine replica: log any measurement
        # it likes.  The fabricated ⟨Slow⟩ rides the normal record
        # path (gossip -> leader block -> commit); once committed,
        # the correct target reciprocates (condition (c)) and the
        # resulting edge degrades the candidate set K.
        record = SuspicionRecord(
            reporter=attacker,
            suspect=target,
            kind=SuspicionKind.SLOW,
            round_id=1_000_000 + self.counters["rounds_launched"],
            msg_type="write",
            phase=2,
            view=replica.log_view,
        )
        replica._gossip_record(record)
        self.counters["rounds_launched"] += 1
        if (
            round_index + 1 < self.rounds
            and sim.now + self.period <= self.spec.end
        ):
            sim.schedule(self.period, self, round_index + 1)


def _schedule_fault(spec: FaultSpec, cluster, index: int, instruments: List) -> None:
    """Arm one FaultSpec against the live cluster.

    Role names resolve when the fault *fires* (``schedule_at(start, ...)``),
    so ``attacker="leader"`` means whoever leads at that moment.  Any
    private randomness (loss draws, random churn victims) is derived here,
    at scheduling time, in fault-list order -- scenarios without such
    faults perform no extra ``derive_rng`` calls and stay bit-identical.
    Every scheduled action is a picklable driver class, so armed faults
    survive simulator checkpoints.
    """
    sim = cluster.sim
    network = cluster.network
    params = spec.params
    clock = SimClock(sim)

    if spec.kind == "delay":
        sim.schedule_at(
            spec.start, _DelayLauncher(spec, cluster, index, instruments, clock)
        )

    elif spec.kind == "delta_delay":
        sim.schedule_at(
            spec.start, _DeltaLauncher(spec, cluster, index, instruments, clock)
        )

    elif spec.kind == "crash":
        state: Dict[str, Any] = {}
        sim.schedule_at(
            spec.start, _CrashLauncher(spec, cluster, index, instruments, state)
        )
        if spec.end != math.inf:
            sim.schedule_at(
                spec.end, _CrashReviver(spec, cluster, index, instruments, state)
            )

    elif spec.kind == "churn":
        churn_rng = (
            sim.derive_rng(f"fault-{index}-churn")
            if params.get("random", False)
            else None
        )
        sim.schedule_at(
            spec.start, _ChurnLauncher(spec, cluster, index, instruments, churn_rng)
        )

    elif spec.kind == "partition":
        partition_state: Dict[str, Any] = {}
        sim.schedule_at(
            spec.start,
            _PartitionLauncher(spec, cluster, index, instruments, partition_state),
        )
        if spec.end != math.inf:
            sim.schedule_at(
                spec.end,
                _PartitionHealer(spec, cluster, index, instruments, partition_state),
            )

    elif spec.kind == "loss":
        attack = MessageLoss(
            rate=params["rate"],
            rng=sim.derive_rng(f"fault-{index}-loss"),
            senders=params.get("senders"),
            message_types=spec.message_types,
            start=spec.start,
            end=spec.end,
            now_fn=clock,
        )
        network.add_interceptor(attack)
        instruments.append((index, "loss", attack))

    elif spec.kind == "false_suspicion":
        if getattr(cluster.replicas[0], "optilog", None) is None:
            raise ValueError(
                "false_suspicion faults need an OptiLog-bearing cluster "
                "(protocol pbft-aware or pbft-optiaware)"
            )
        pool = (
            list(spec.attacker)
            if isinstance(spec.attacker, (tuple, list))
            else [spec.attacker]
        )
        period = params.get("period", 10.0)
        rounds = params.get("rounds", len(pool))
        counters = {"rounds_launched": 0}
        instruments.append((index, "false_suspicion", counters))
        driver = _SuspicionDriver(
            spec, cluster, index, instruments, counters, pool, period, rounds
        )
        sim.schedule_at(spec.start, driver, 0)

    else:  # pragma: no cover - __post_init__ rejects unknown kinds
        raise ValueError(f"unknown fault kind {spec.kind!r}")


# ----------------------------------------------------------------------
# Measurement plane selection
# ----------------------------------------------------------------------
def _metrics_mode(scenario: Scenario) -> str:
    policy = scenario.measurements
    return policy.metrics if policy is not None else "exact"


def _apply_measurement_mode(scenario: Scenario, cluster) -> None:
    """Swap replicas (and the workload) onto the streaming sketches.

    ``sketch`` replaces the per-commit lists outright; ``check``
    dual-writes so reads stay byte-identical to ``exact`` while
    :func:`_verify_measurements` can compare the two paths afterwards.
    """
    mode = _metrics_mode(scenario)
    if mode == "exact":
        return
    from repro.consensus.base import RunMetrics as ExactRunMetrics
    from repro.metrics import (
        CheckedRunMetrics,
        MetricsSketch,
        StreamingRunMetrics,
    )

    policy = scenario.measurements

    def make_metrics():
        sketch = MetricsSketch(
            bins_per_decade=policy.bins_per_decade, window=policy.window
        )
        streaming = StreamingRunMetrics(sketch)
        if mode == "check":
            return CheckedRunMetrics(ExactRunMetrics(), streaming)
        return streaming

    for replica in cluster.replicas:
        replica.use_metrics(make_metrics())
    workload = getattr(cluster, "workload", None)
    if workload is not None:
        workload.enable_streaming(
            MetricsSketch(
                bins_per_decade=policy.bins_per_decade, window=policy.window
            ),
            keep_exact=(mode == "check"),
        )


def _verify_measurements(scenario: Scenario, result: ScenarioResult) -> None:
    """``check`` mode epilogue: sketch vs exact, loudly."""
    from repro.metrics import MeasurementDivergence

    result.run_metrics.verify(scenario.duration)
    workload = result.workload if result.workload is not None else getattr(
        result.cluster, "workload", None
    )
    if workload is None or workload._stream_sketch is None:
        return
    sketch = workload._stream_sketch
    exact = workload.summary()  # keep_exact=True -> the exact path answers
    if sketch.blocks != exact["requests_completed"]:
        raise MeasurementDivergence(
            f"client sketch saw {sketch.blocks} completions, exact path "
            f"{exact['requests_completed']}"
        )
    stats = sketch.summary()
    if stats is None:
        return
    if not math.isclose(stats["mean"], exact["mean_latency"], rel_tol=1e-9):
        raise MeasurementDivergence(
            f"client mean diverged: sketch={stats['mean']!r} "
            f"exact={exact['mean_latency']!r}"
        )
    bound = sketch.error_bound()
    for sketch_key, exact_key in (
        ("p50", "p50_latency"), ("p90", "p90_latency"), ("p99", "p99_latency")
    ):
        want = exact[exact_key]
        relative = abs(stats[sketch_key] - want) / max(abs(want), 1e-12)
        if relative > bound * (1.0 + 1e-9):
            raise MeasurementDivergence(
                f"client {sketch_key} diverged by {relative:.3%} "
                f"(bound {bound:.3%}): sketch={stats[sketch_key]!r} want={want!r}"
            )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def prepare_scenario(scenario: Scenario) -> ScenarioResult:
    """Build everything a scenario needs without running it.

    Returns a :class:`ScenarioResult` whose cluster is armed (faults
    scheduled, measurement mode applied, workload resolved) but whose
    simulation has not advanced -- the campaign plane drives it in
    slices; :func:`run_scenario` drives it to completion in one call.
    """
    if scenario.protocol not in PROTOCOLS:
        known = ", ".join(sorted(PROTOCOLS))
        raise ValueError(
            f"unknown protocol {scenario.protocol!r} (known: {known})"
        )
    if scenario.plane in ("check", "check-fast"):
        raise ValueError(
            f"plane={scenario.plane!r} runs the scenario twice and cannot "
            "hand out one armed cluster; use run_scenario, or prepare the "
            "planes it compares separately"
        )
    deployment = resolve_deployment(scenario.deployment, seed=scenario.seed)
    workload = _resolve_workload(scenario)
    cluster = _build_cluster(scenario, deployment, workload)
    _apply_measurement_mode(scenario, cluster)
    instruments: List[Tuple[int, str, Any]] = []
    for index, fault in enumerate(scenario.faults):
        _schedule_fault(fault, cluster, index, instruments)
    return ScenarioResult(
        scenario=scenario,
        cluster=cluster,
        run_metrics=None,
        workload=workload,
        fault_instruments=instruments,
    )


class PlaneDivergence(RuntimeError):
    """A fast plane computed a different run than its reference plane.

    Raised by ``plane='check'`` (columnar vs object, bit-identity) and
    ``plane='check-fast'`` (columnar-fast vs columnar, final-metrics
    equivalence) scenarios; always a bug in a fast delivery path (or a
    batch handler violating its contract), never expected behaviour.
    """


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute one scenario end-to-end, deterministically under its seed."""
    if scenario.plane == "check":
        return _run_checked(scenario)
    if scenario.plane == "check-fast":
        return _run_checked_fast(scenario)
    result = prepare_scenario(scenario)
    result.run_metrics = result.cluster.run(scenario.duration)
    if _metrics_mode(scenario) == "check":
        _verify_measurements(scenario, result)
    return result


def _run_checked(scenario: Scenario) -> ScenarioResult:
    """``plane='check'``: run both planes, assert bit-identity, return
    the columnar result.

    Equality is judged twice: on :func:`state_trace_hash` (replica
    state, commits, network stats, clock, RNG streams) and on the
    metrics JSON (minus the plane tag itself).  Either mismatch raises
    :class:`PlaneDivergence` naming the first differing field.
    """
    from repro.experiments.trace import state_trace_hash

    if isinstance(scenario.workload, Workload):
        raise ValueError(
            "plane='check' reruns the scenario and needs a named workload "
            "(a Workload instance would be consumed by the first run)"
        )
    object_result = run_scenario(replace(scenario, plane="object"))
    columnar_result = run_scenario(replace(scenario, plane="columnar"))
    object_hash = state_trace_hash(object_result.cluster)
    columnar_hash = state_trace_hash(columnar_result.cluster)
    if object_hash != columnar_hash:
        raise PlaneDivergence(
            f"state-trace hash diverged for {scenario.describe()['name']}: "
            f"object={object_hash} columnar={columnar_hash}"
        )
    object_metrics = object_result.metrics()
    columnar_metrics = columnar_result.metrics()
    for metrics in (object_metrics, columnar_metrics):
        metrics["scenario"].pop("plane", None)
    object_json = json.dumps(object_metrics, sort_keys=True)
    columnar_json = json.dumps(columnar_metrics, sort_keys=True)
    if object_json != columnar_json:
        diverged = sorted(
            key
            for key in set(object_metrics) | set(columnar_metrics)
            if object_metrics.get(key) != columnar_metrics.get(key)
        )
        raise PlaneDivergence(
            f"metrics diverged for {scenario.describe()['name']} "
            f"in field(s): {', '.join(diverged)}"
        )
    # Report the scenario as requested (plane='check'), not the twin
    # that happened to produce the returned cluster.
    columnar_result.scenario = scenario
    return columnar_result


def _commit_heights(cluster) -> List[int]:
    """Per-replica commit heights: ``executed_seq`` (PBFT) or
    ``committed_height`` (HotStuff/Kauri)."""
    heights = []
    for replica in cluster.replicas:
        height = getattr(replica, "executed_seq", None)
        if height is None:
            height = getattr(replica, "committed_height", 0)
        heights.append(height)
    return heights


def _run_checked_fast(scenario: Scenario) -> ScenarioResult:
    """``plane='check-fast'``: run ``columnar`` and ``columnar-fast``,
    assert documented-equivalent final metrics, return the fast result.

    Unlike ``plane='check'`` this does NOT compare state-trace hashes --
    the relaxed plane coalesces deliveries inside barrier windows, so
    per-row interleavings (and with them RNG stream positions and exact
    latency digits) legitimately differ.  What MUST hold:

    * committed request totals, committed block counts and per-replica
      commit heights are EQUAL;
    * client request totals (sent and completed) are EQUAL;
    * every latency quantile (commit and client side) agrees within the
      :class:`repro.metrics.MetricsSketch` error bound.

    Jitter must be 0.0: jitter draws happen at send time in send order,
    and the planes send in different orders, so with jitter enabled the
    twins would see different per-message delays and the comparison
    would be meaningless rather than strict.
    """
    from repro.metrics import MetricsSketch

    if isinstance(scenario.workload, Workload):
        raise ValueError(
            "plane='check-fast' reruns the scenario and needs a named "
            "workload (a Workload instance would be consumed by the first "
            "run)"
        )
    if scenario.jitter != 0.0:
        raise ValueError(
            "plane='check-fast' requires jitter=0.0: jitter draws happen "
            "in send order, which legitimately differs between the exact "
            "and relaxed planes, so jittered twins are not comparable"
        )
    name = scenario.describe()["name"]
    exact_result = run_scenario(replace(scenario, plane="columnar"))
    fast_result = run_scenario(replace(scenario, plane="columnar-fast"))
    exact_metrics = exact_result.metrics()
    fast_metrics = fast_result.metrics()
    for field_name in ("committed_requests", "committed_blocks"):
        if exact_metrics.get(field_name) != fast_metrics.get(field_name):
            raise PlaneDivergence(
                f"{field_name} diverged for {name}: "
                f"columnar={exact_metrics.get(field_name)} "
                f"columnar-fast={fast_metrics.get(field_name)}"
            )
    exact_heights = _commit_heights(exact_result.cluster)
    fast_heights = _commit_heights(fast_result.cluster)
    if exact_heights != fast_heights:
        raise PlaneDivergence(
            f"per-replica commit heights diverged for {name}: "
            f"columnar={exact_heights} columnar-fast={fast_heights}"
        )
    exact_client = exact_metrics.get("client") or {}
    fast_client = fast_metrics.get("client") or {}
    for field_name in ("requests_sent", "requests_completed"):
        if exact_client.get(field_name) != fast_client.get(field_name):
            raise PlaneDivergence(
                f"client {field_name} diverged for {name}: "
                f"columnar={exact_client.get(field_name)} "
                f"columnar-fast={fast_client.get(field_name)}"
            )
    bound = MetricsSketch().error_bound()

    def _check_quantiles(label: str, exact: Any, fast: Any) -> None:
        if not isinstance(exact, dict) or not isinstance(fast, dict):
            return
        for key in exact:
            a = exact.get(key)
            b = fast.get(key)
            if not isinstance(a, float) or not isinstance(b, float):
                continue
            scale = max(abs(a), abs(b))
            if scale and abs(a - b) > bound * scale:
                raise PlaneDivergence(
                    f"{label}.{key} diverged for {name} beyond the sketch "
                    f"error bound ({bound:.4%}): columnar={a!r} "
                    f"columnar-fast={b!r}"
                )

    _check_quantiles(
        "commit_latency",
        exact_metrics.get("commit_latency"),
        fast_metrics.get("commit_latency"),
    )
    latency_keys = [k for k in exact_client if "latency" in k]
    _check_quantiles(
        "client",
        {k: exact_client[k] for k in latency_keys},
        {k: fast_client.get(k) for k in latency_keys},
    )
    # Report the scenario as requested (plane='check-fast'), not the
    # twin that happened to produce the returned cluster.
    fast_result.scenario = scenario
    return fast_result
