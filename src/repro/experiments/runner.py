"""Unified scenario runner: protocol x deployment x workload x faults.

A :class:`Scenario` declaratively combines

* a **protocol** -- ``pbft`` / ``pbft-aware`` / ``pbft-optiaware``
  (three-phase engine hosting Aware/OptiAware), ``hotstuff-fixed`` /
  ``hotstuff-rr``, ``kauri`` (pipelined, random tree), ``optitree`` /
  ``optitree-nopipe`` (tree from simulated annealing);
* a **deployment** -- one of the paper's named city sets (``Europe21``,
  ``NA-EU43``, ``Global73``, ``Stellar56``) or ``wonderproxy-N`` for a
  seeded random world placement of ``N`` replicas drawn from the
  WonderProxy-derived city table;
* a **workload** -- any name registered in :data:`repro.workloads.WORKLOADS`
  plus ``saturated`` (no clients; HotStuff/Kauri self-clock full blocks,
  the paper's §7.3 regime);
* a **fault schedule** -- :class:`FaultSpec` entries (delay attacks,
  crashes) resolved against the live cluster at their start times;
* a **reconfiguration policy** -- :class:`MeasurementPolicy`, the
  probe/publish/search cadence driving Aware/OptiAware reconfiguration.

:func:`run_scenario` builds the cluster, attaches everything, runs the
simulation and returns a :class:`ScenarioResult` whose
:meth:`ScenarioResult.metrics` dict (throughput, commit-latency
percentiles, reconfiguration count, message totals) serialises to
bit-identical JSON for identical scenarios.  The figure drivers (fig7,
fig9) and the ``python -m repro`` CLI are thin layers over this module.
"""

from __future__ import annotations

import json
import random
import re
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.consensus.base import RunMetrics
from repro.consensus.hotstuff import HotStuffCluster
from repro.consensus.kauri import KauriCluster
from repro.consensus.pbft import PbftCluster
from repro.faults.delay import DelayAttack
from repro.net.deployments import Deployment, deployment_for, random_world_deployment
from repro.optimize.annealing import AnnealingSchedule
from repro.tree.kauri_reconfig import KauriReconfigurer
from repro.tree.optitree import optitree_search
from repro.workloads import PIPELINE_DEPTH, Workload, make_workload, percentile

#: Protocols the runner can build, mapped to (family, variant).
PROTOCOLS: Dict[str, Tuple[str, str]] = {
    "pbft": ("pbft", "static"),
    "pbft-aware": ("pbft", "aware"),
    "pbft-optiaware": ("pbft", "optiaware"),
    "hotstuff-fixed": ("hotstuff", "fixed"),
    "hotstuff-rr": ("hotstuff", "rr"),
    "kauri": ("kauri", "random-tree"),
    "optitree": ("kauri", "optitree"),
    "optitree-nopipe": ("kauri", "optitree-nopipe"),
}

#: Named deployments, keyed by lowercase alias.
NAMED_DEPLOYMENTS = {
    "europe21": "Europe21",
    "na-eu43": "NA-EU43",
    "global73": "Global73",
    "stellar56": "Stellar56",
}

_WONDERPROXY = re.compile(r"^wonderproxy-(\d+)$")


@dataclass
class FaultSpec:
    """One scheduled Byzantine/crash behaviour.

    ``attacker`` is a replica id, or a role name resolved when the fault
    fires: ``"leader"`` (PBFT's current leader) / ``"root"`` (Kauri's
    tree root).
    """

    kind: str = "delay"  # "delay" | "crash"
    start: float = 0.0
    attacker: Union[int, str] = "leader"
    extra_delay: float = 0.5
    message_types: Tuple[str, ...] = ("PrePrepare",)

    def __post_init__(self) -> None:
        if self.kind not in ("delay", "crash"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if isinstance(self.message_types, str):
            # A bare string would iterate as characters inside DelayAttack
            # and silently never match any message type.
            self.message_types = (self.message_types,)
        elif isinstance(self.message_types, list):
            self.message_types = tuple(self.message_types)
        if self.kind == "delay":
            from repro.consensus import messages as protocol_messages

            for name in self.message_types:
                # A typo'd type would make the attack match nothing and
                # the experiment silently report healthy numbers.
                if not isinstance(getattr(protocol_messages, name, None), type):
                    raise ValueError(
                        f"unknown message type {name!r} in fault spec"
                    )


@dataclass
class MeasurementPolicy:
    """Aware/OptiAware reconfiguration cadence (the Fig. 7 schedule):
    probe peers, publish latency vectors, then search periodically."""

    probe_at: float = 5.0
    publish_at: float = 15.0
    first_search_at: float = 40.0
    search_period: float = 25.0
    horizon: Optional[float] = None  # defaults to the scenario duration


@dataclass
class Scenario:
    """A declarative experiment: everything needed to reproduce one run."""

    protocol: str = "pbft"
    deployment: str = "Europe21"
    workload: Union[str, Workload] = "closed-loop"
    workload_params: Dict[str, Any] = field(default_factory=dict)
    duration: float = 30.0
    seed: int = 0
    delta: float = 1.0
    jitter: float = 0.02
    client_city: Optional[int] = None
    faults: List[FaultSpec] = field(default_factory=list)
    measurements: Optional[MeasurementPolicy] = None
    search_iterations: int = 20_000  # OptiTree's annealing budget
    pipeline_depth: Optional[int] = None
    name: str = ""

    def describe(self) -> Dict[str, Any]:
        """JSON-able identity of the scenario (what was run)."""
        workload = (
            self.workload if isinstance(self.workload, str) else self.workload.name
        )
        return {
            "name": self.name or f"{self.protocol}/{self.deployment}/{workload}",
            "protocol": self.protocol,
            "deployment": self.deployment,
            "workload": workload,
            "workload_params": dict(sorted(self.workload_params.items())),
            "duration": self.duration,
            "seed": self.seed,
            "delta": self.delta,
            "jitter": self.jitter,
            "client_city": self.client_city,
            "search_iterations": self.search_iterations,
            "pipeline_depth": self.pipeline_depth,
            "measurements": (
                asdict(self.measurements) if self.measurements is not None else None
            ),
            "faults": [asdict(fault) for fault in self.faults],
        }


@dataclass
class ScenarioResult:
    """Outcome of one scenario: live objects plus JSON-able metrics."""

    scenario: Scenario
    cluster: Any
    run_metrics: RunMetrics
    workload: Optional[Workload]

    def metrics(self) -> Dict[str, Any]:
        duration = self.scenario.duration
        commit_latencies = sorted(
            event.latency for event in self.run_metrics.commits
        )
        out: Dict[str, Any] = {
            "scenario": self.scenario.describe(),
            "throughput_rps": self.run_metrics.throughput(duration),
            "committed_requests": self.run_metrics.total_requests(),
            "committed_blocks": len(self.run_metrics.commits),
            "reconfigurations": self.reconfiguration_count(),
            "messages_sent": self.cluster.network.stats.messages_sent,
            "messages_delivered": self.cluster.network.stats.messages_delivered,
            "bytes_sent": self.cluster.network.stats.bytes_sent,
        }
        if commit_latencies:
            out["commit_latency"] = {
                "mean": sum(commit_latencies) / len(commit_latencies),
                "p50": percentile(commit_latencies, 0.50),
                "p90": percentile(commit_latencies, 0.90),
                "p99": percentile(commit_latencies, 0.99),
            }
        if self.workload is not None:
            out["client"] = self.workload.summary()
        return out

    def reconfiguration_count(self) -> int:
        replicas = getattr(self.cluster, "replicas", None)
        if replicas and hasattr(replicas[0], "reconfigure_times"):
            return len(replicas[0].reconfigure_times)
        return 0

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.metrics(), sort_keys=True, indent=indent)


# ----------------------------------------------------------------------
# Resolution helpers
# ----------------------------------------------------------------------
def resolve_deployment(name: str, seed: int = 0) -> Deployment:
    """Named city set, or ``wonderproxy-N`` for a seeded random one."""
    match = _WONDERPROXY.match(name.lower())
    if match:
        n = int(match.group(1))
        if n < 4:
            raise ValueError("wonderproxy deployments need >= 4 replicas")
        return random_world_deployment(
            n, random.Random(seed), name=f"wonderproxy-{n}"
        )
    canonical = NAMED_DEPLOYMENTS.get(name.lower())
    if canonical is None:
        known = ", ".join(sorted(NAMED_DEPLOYMENTS.values()))
        raise ValueError(
            f"unknown deployment {name!r} (known: {known}, wonderproxy-N)"
        )
    return deployment_for(canonical)


def optitree_tree(
    deployment: Deployment, f: int, seed: int, search_iterations: int
):
    """The Fig. 9 OptiTree construction: one annealing search over the
    link-latency matrix, ranked with k = 2f+1 (§7.3)."""
    latency = deployment.latency.matrix_seconds() / 2.0
    n = deployment.n
    result = optitree_search(
        latency,
        n,
        f,
        candidates=frozenset(range(n)),
        u=0,
        rng=random.Random(seed),
        schedule=AnnealingSchedule(
            iterations=search_iterations, initial_temperature=0.05, cooling=0.9995
        ),
        k=2 * f + 1,
    )
    return result.best_state


def _resolve_workload(scenario: Scenario) -> Optional[Workload]:
    if isinstance(scenario.workload, Workload):
        if scenario.workload_params:
            raise ValueError(
                "workload_params only apply to named workloads; configure "
                "the Workload instance directly instead"
            )
        return scenario.workload
    if scenario.workload == "saturated":
        if scenario.workload_params:
            raise ValueError("'saturated' takes no workload params")
        return None
    return make_workload(scenario.workload, **scenario.workload_params)


# ----------------------------------------------------------------------
# Cluster construction
# ----------------------------------------------------------------------
def _build_cluster(
    scenario: Scenario, deployment: Deployment, workload: Optional[Workload]
):
    family, variant = PROTOCOLS[scenario.protocol]
    n = deployment.n
    f = (n - 1) // 3
    if family == "pbft":
        if workload is None:
            raise ValueError(
                "PBFT is client-driven; pick a client workload, not 'saturated'"
            )
        cluster = PbftCluster(
            deployment,
            mode=variant,
            seed=scenario.seed,
            delta=scenario.delta,
            jitter=scenario.jitter,
            client_city_index=scenario.client_city,
            workload=workload,
        )
        policy = scenario.measurements or MeasurementPolicy()
        if variant != "static":
            cluster.schedule_measurements(
                probe_at=policy.probe_at,
                publish_at=policy.publish_at,
                first_search_at=policy.first_search_at,
                search_period=policy.search_period,
                horizon=policy.horizon
                if policy.horizon is not None
                else scenario.duration,
            )
        return cluster
    if family == "hotstuff":
        if variant == "fixed":
            # Random fixed leader, per §7.4.
            leader = random.Random(scenario.seed).randrange(n)
            cluster = HotStuffCluster(
                deployment,
                leader_mode="fixed",
                fixed_leader=leader,
                seed=scenario.seed,
                jitter=scenario.jitter,
            )
        else:
            cluster = HotStuffCluster(
                deployment, leader_mode="rr", seed=scenario.seed,
                jitter=scenario.jitter,
            )
        if workload is not None:
            cluster.attach_workload(workload, client_city=scenario.client_city or 0)
        return cluster
    # family == "kauri"
    if variant == "random-tree":
        tree = KauriReconfigurer(n, rng=random.Random(scenario.seed)).tree_for_bin(0)
        depth = (
            scenario.pipeline_depth
            if scenario.pipeline_depth is not None
            else PIPELINE_DEPTH
        )
    else:
        tree = optitree_tree(deployment, f, scenario.seed, scenario.search_iterations)
        if scenario.pipeline_depth is not None:
            depth = scenario.pipeline_depth
        else:
            depth = 1 if variant == "optitree-nopipe" else PIPELINE_DEPTH
    cluster = KauriCluster(
        deployment,
        tree,
        pipeline_depth=depth,
        seed=scenario.seed,
        jitter=scenario.jitter,
        delta=scenario.delta,
    )
    if workload is not None:
        cluster.attach_workload(workload, client_city=scenario.client_city or 0)
    return cluster


# ----------------------------------------------------------------------
# Fault scheduling
# ----------------------------------------------------------------------
def _resolve_attacker(spec: FaultSpec, cluster) -> int:
    if isinstance(spec.attacker, int):
        return spec.attacker
    if spec.attacker == "leader":
        if hasattr(cluster, "current_leader"):
            return cluster.current_leader
        raise ValueError("'leader' fault target needs a PBFT cluster")
    if spec.attacker == "root":
        if hasattr(cluster, "tree"):
            return cluster.tree.root
        raise ValueError("'root' fault target needs a Kauri cluster")
    raise ValueError(f"unknown fault target {spec.attacker!r}")


def _schedule_fault(spec: FaultSpec, cluster) -> None:
    def launch() -> None:
        victim = _resolve_attacker(spec, cluster)
        if spec.kind == "crash":
            cluster.network.set_down(victim)
            return
        attack = DelayAttack(
            attacker=victim,
            message_types=spec.message_types,
            extra_delay=spec.extra_delay,
            start=spec.start,
            now_fn=lambda: cluster.sim.now,
        )
        cluster.network.add_interceptor(attack)

    cluster.sim.schedule_at(spec.start, launch)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute one scenario end-to-end, deterministically under its seed."""
    if scenario.protocol not in PROTOCOLS:
        known = ", ".join(sorted(PROTOCOLS))
        raise ValueError(
            f"unknown protocol {scenario.protocol!r} (known: {known})"
        )
    deployment = resolve_deployment(scenario.deployment, seed=scenario.seed)
    workload = _resolve_workload(scenario)
    cluster = _build_cluster(scenario, deployment, workload)
    for fault in scenario.faults:
        _schedule_fault(fault, cluster)
    run_metrics = cluster.run(scenario.duration)
    return ScenarioResult(
        scenario=scenario,
        cluster=cluster,
        run_metrics=run_metrics,
        workload=workload,
    )
