"""Fig. 13: proposal-size overhead of OptiLog's sensors (§7.8).

Average proposal size for 20/40/60/80 replicas, with increasing sensor
sets: none, a latency vector, + suspicions, + misbehavior proofs.  The
figure reports the size of proposals *carrying* each measurement type
(reports are infrequent -- at most one complaint per accused replica --
so a proposal carries at most one replica's vector, one suspicion pair,
or one complaint): at n = 80 the paper sees +~270 B for latency vectors
with suspicions and +~4.5 KB once proofs of misbehavior are included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.consensus.messages import Block
from repro.core.records import (
    ComplaintRecord,
    LatencyVectorRecord,
    SuspicionKind,
    SuspicionRecord,
)
from repro.core.misbehavior import EquivocationProof
from repro.crypto.signatures import KeyRegistry
from repro.crypto.threshold import aggregate
from repro.experiments.tables import format_table

SIZES = (20, 40, 60, 80)
SENSOR_SETS = ("No OptiLog", "Latency vector (lv)", "Suspicion+lv", "Misbehavior+lv")


@dataclass
class Fig13Cell:
    n: int
    sensors: str
    proposal_bytes: float


def _base_block(n: int) -> Block:
    return Block(height=1, proposer=0, parent="", payload_count=1000)


def _latency_records(n: int) -> List[LatencyVectorRecord]:
    # One replica's vector per proposal (replicas publish in turn).
    return [LatencyVectorRecord(sender=0, vector=tuple([0.01] * n))]


def _suspicion_records(n: int) -> List[SuspicionRecord]:
    # A slow suspicion plus its reciprocation -- the pair one attack or
    # delay event contributes to a proposal.
    return [
        SuspicionRecord(
            reporter=1, suspect=0, kind=SuspicionKind.SLOW, round_id=1
        ),
        SuspicionRecord(
            reporter=0, suspect=1, kind=SuspicionKind.FALSE, round_id=1
        ),
    ]


def _misbehavior_records(n: int, registry: KeyRegistry) -> List[ComplaintRecord]:
    # One equivocation complaint: two conflicting signed payloads plus a
    # supporting quorum certificate (2f+1 signatures), the shape IA-CCF
    # style receipts have.
    f = (n - 1) // 3
    payload_a = ("block", 7, "hash-a")
    payload_b = ("block", 7, "hash-b")
    proof = EquivocationProof(
        accused=1,
        view=0,
        round_id=7,
        payload_a=payload_a,
        sig_a=registry.sign(1, payload_a),
        payload_b=payload_b,
        sig_b=registry.sign(1, payload_b),
    )
    complaint = ComplaintRecord(reporter=0, accused=1, kind="equivocation", proof=proof)
    # The supporting certificate rides along as its own record, modelled
    # as a complaint carrying an aggregate of 2f+1 signatures.
    certificate = ComplaintRecord(
        reporter=0,
        accused=1,
        kind="equivocation-certificate",
        proof=aggregate(registry, payload_a, range(2 * f + 1)),
    )
    return [complaint, certificate]


def run(sizes=SIZES) -> List[Fig13Cell]:
    """Proposal size per sensor mix: base block plus the records a
    measurement-carrying proposal contains."""
    cells = []
    for n in sizes:
        registry = KeyRegistry(n)
        base = _base_block(n).wire_size
        lv_bytes = sum(r.wire_size for r in _latency_records(n))
        susp_bytes = sum(r.wire_size for r in _suspicion_records(n))
        misb_bytes = sum(r.wire_size for r in _misbehavior_records(n, registry))
        per_proposal = {
            "No OptiLog": 0.0,
            "Latency vector (lv)": lv_bytes,
            "Suspicion+lv": lv_bytes + susp_bytes,
            "Misbehavior+lv": lv_bytes + misb_bytes,
        }
        for sensors in SENSOR_SETS:
            cells.append(
                Fig13Cell(
                    n=n,
                    sensors=sensors,
                    proposal_bytes=base + per_proposal[sensors],
                )
            )
    return cells


def overhead_summary(cells: List[Fig13Cell], n: int = 80) -> dict:
    """The §7.8 numbers: extra bytes over the no-OptiLog baseline."""
    by_sensors = {c.sensors: c.proposal_bytes for c in cells if c.n == n}
    base = by_sensors["No OptiLog"]
    return {
        sensors: by_sensors[sensors] - base
        for sensors in SENSOR_SETS
        if sensors != "No OptiLog"
    }


def main() -> str:
    cells = run()
    table = format_table(
        ["n", "sensors", "proposal size [bytes]"],
        [[c.n, c.sensors, round(c.proposal_bytes, 1)] for c in cells],
        title="Fig. 13 -- proposal size including different measurements",
    )
    extra = overhead_summary(cells)
    lines = [table, "", "n=80 overhead vs baseline:"]
    for sensors, overhead in extra.items():
        lines.append(f"  {sensors}: +{overhead:,.0f} bytes")
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
