"""Fig. 7: OptiAware runtime behaviour under the Pre-Prepare delay attack.

21 European cities, one replica and one client per city (the measured
client sits in Nuremberg).  Timeline: all protocols start in the static
configuration; Aware and OptiAware optimize at ~40 s (−35% latency vs
BFT-SMaRt in the paper); at ~82 s the Byzantine leader starts delaying
its proposals; OptiAware's suspicions expel it from the candidate set and
the next reconfiguration restores low latency, while BFT-SMaRt and Aware
remain degraded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.parallel import parallel_map
from repro.experiments.runner import (
    FaultSpec,
    MeasurementPolicy,
    Scenario,
    run_scenario,
)
from repro.experiments.tables import format_table
from repro.net.deployments import EUROPE21

ATTACK_START = 82.0
ATTACK_DELAY = 0.8  # seconds added to every delayed proposal
DURATION = 180.0

#: Fig. 7 timeline modes -> runner protocol names.
PROTOCOL_OF_MODE = {
    "static": "pbft",
    "aware": "pbft-aware",
    "optiaware": "pbft-optiaware",
}


@dataclass
class Fig7Result:
    mode: str
    latency_series: List[Tuple[float, float]]
    reconfigure_times: List[float]
    phase_means: Dict[str, float] = field(default_factory=dict)

    def mean_between(self, start: float, end: float) -> float:
        window = [lat for t, lat in self.latency_series if start <= t < end]
        return sum(window) / len(window) if window else float("inf")


def run_mode(
    mode: str,
    duration: float = DURATION,
    attack_start: float = ATTACK_START,
    attack_delay: float = ATTACK_DELAY,
    seed: int = 0,
    fast: bool = False,
) -> Fig7Result:
    """Run one protocol mode through the Fig. 7 timeline.

    Expressed as a :class:`~repro.experiments.runner.Scenario`: PBFT in
    the given mode, Europe21, one closed-loop client in Nuremberg, and a
    delay fault against whoever leads when the attack starts.  ``fast``
    compresses the measurement cadence and timeline three-fold for
    CI-speed benchmarks; the phase structure is unchanged.
    """
    if fast:
        duration = duration / 3.0
        attack_start = attack_start / 3.0
        measurements = MeasurementPolicy(
            probe_at=2.0, publish_at=5.0, first_search_at=13.0, search_period=9.0
        )
    else:
        measurements = MeasurementPolicy()
    # δ=1.25 absorbs the network's delivery jitter (compounded over the
    # three protocol phases) so correct replicas are never suspected,
    # while the 0.8 s attack delay exceeds every δ·d_m by far (§7.6
    # discusses exactly this trade-off).
    scenario = Scenario(
        name=f"fig7/{mode}",
        protocol=PROTOCOL_OF_MODE[mode],
        deployment="Europe21",
        workload="closed-loop",
        duration=duration,
        seed=seed,
        delta=1.25,
        client_city=EUROPE21.index("Nuremberg"),
        measurements=measurements,
        faults=[
            # The Byzantine leader is whoever leads when the attack starts.
            FaultSpec(
                kind="delay",
                start=attack_start,
                attacker="leader",
                extra_delay=attack_delay,
                message_types=("PrePrepare",),
            )
        ],
    )
    cluster = run_scenario(scenario).cluster

    result = Fig7Result(
        mode=mode,
        latency_series=cluster.client.latency_series(duration),
        reconfigure_times=list(cluster.replicas[0].reconfigure_times),
    )
    first_search = 13.0 if fast else 40.0
    result.phase_means = {
        "initial": result.mean_between(2.0, first_search),
        "optimized": result.mean_between(first_search + 4.0, attack_start - 1.0),
        "under attack": result.mean_between(attack_start + 2.0, attack_start + 12.0),
        "final": result.mean_between(duration - 12.0, duration),
    }
    return result


def _run_mode_point(point: Tuple[str, float, int, bool]) -> Fig7Result:
    """Worker: one protocol mode through the full timeline."""
    mode, duration, seed, fast = point
    return run_mode(mode, duration=duration, seed=seed, fast=fast)


def run(
    duration: float = DURATION,
    seed: int = 0,
    fast: bool = False,
    jobs: Optional[int] = None,
) -> Dict[str, Fig7Result]:
    """All three timeline modes; each is an independent seeded run, so
    ``jobs=3`` shards them across processes with identical results."""
    modes = ("static", "aware", "optiaware")
    results = parallel_map(
        _run_mode_point,
        [(mode, duration, seed, fast) for mode in modes],
        jobs=jobs,
    )
    return dict(zip(modes, results))


def summary_rows(results: Dict[str, Fig7Result]) -> List[List]:
    labels = {
        "static": "BFT-SMaRt/Pbft",
        "aware": "Aware",
        "optiaware": "OptiAware",
    }
    rows = []
    for mode, result in results.items():
        phases = result.phase_means
        rows.append(
            [
                labels[mode],
                round(phases["initial"] * 1000, 1),
                round(phases["optimized"] * 1000, 1),
                round(phases["under attack"] * 1000, 1),
                round(phases["final"] * 1000, 1),
                len(result.reconfigure_times),
            ]
        )
    return rows


def main(
    duration: float = DURATION,
    seed: int = 0,
    fast: bool = False,
    jobs: Optional[int] = None,
) -> str:
    results = run(duration=duration, seed=seed, fast=fast, jobs=jobs)
    table = format_table(
        [
            "protocol",
            "initial [ms]",
            "optimized [ms]",
            "attack [ms]",
            "final [ms]",
            "reconfigs",
        ],
        summary_rows(results),
        title="Fig. 7 -- client latency (Nuremberg) through the attack timeline",
    )
    return table


if __name__ == "__main__":
    print(main())
