"""Named adversarial scenarios, registered alongside the figure drivers.

Each entry is a :class:`~repro.experiments.runner.Scenario` factory
parameterised by ``seed`` and (optionally) ``duration``; fault windows
scale with the duration so a CI-speed run exercises the same phase
structure as the full-length one.  They complement the paper figures:
fig7/fig9 reproduce published plots, these probe the fault space the
paper's evaluation motivates but does not enumerate -- partitions that
heal, sustained churn, undetectable δ-bounded delays, lossy WAN links,
and log-level smear campaigns.

Run them from the shell::

    python -m repro scenario partition-heal
    python -m repro scenario churn-storm --seed 3 --duration 20

or programmatically via :func:`make_scenario` / :func:`run_named`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.experiments.runner import (
    FaultSpec,
    MeasurementPolicy,
    Scenario,
    ScenarioResult,
    run_scenario,
)


def _partition_heal(seed: int, duration: Optional[float]) -> Scenario:
    d = 30.0 if duration is None else duration
    # Europe21, f = 6: a six-replica minority (15..20) splits off, the
    # weighted-quorum majority keeps committing, then the fabric heals
    # and the minority catches back up from live traffic.
    minority = tuple(range(15, 21))
    majority = tuple(range(0, 15))
    return Scenario(
        name="partition-heal",
        protocol="pbft",
        deployment="Europe21",
        workload="open-loop",
        workload_params={"rate": 40.0},
        duration=d,
        seed=seed,
        faults=[
            FaultSpec(
                kind="partition",
                start=d / 3.0,
                end=2.0 * d / 3.0,
                params={"groups": (minority, majority)},
            )
        ],
    )


def _churn_storm(seed: int, duration: Optional[float]) -> Scenario:
    d = 30.0 if duration is None else duration
    # Rotating-leader HotStuff under relentless random churn: one replica
    # of sixteen down at a time, revived with catch-up, for most of the
    # run.  Stresses the revival path and leader rotation together.
    return Scenario(
        name="churn-storm",
        protocol="hotstuff-rr",
        deployment="wonderproxy-16",
        workload="open-loop",
        workload_params={"rate": 60.0},
        duration=d,
        seed=seed,
        faults=[
            FaultSpec(
                kind="churn",
                start=0.1 * d,
                end=0.9 * d,
                params={
                    "period": d / 10.0,
                    "downtime": d / 20.0,
                    "random": True,
                },
            )
        ],
    )


def _stealth_delta(seed: int, duration: Optional[float]) -> Scenario:
    d = 20.0 if duration is None else duration
    # Fig. 11's trade-off, live: faulty intermediates stretch every link
    # to 95% of the suspicion budget delta*d_m -- maximal damage, zero
    # suspicions -- from a quarter of the run onward.
    return Scenario(
        name="stealth-delta",
        protocol="kauri",
        deployment="Europe21",
        workload="saturated",
        duration=d,
        seed=seed,
        delta=1.25,
        faults=[
            FaultSpec(
                kind="delta_delay",
                start=d / 4.0,
                attacker="intermediates",
                params={"delta": 1.25, "adaptive": True},
            )
        ],
    )


def _lossy_wan(seed: int, duration: Optional[float]) -> Scenario:
    d = 30.0 if duration is None else duration
    # 1% symmetric message loss on every link for the whole run: the
    # quorum-redundancy test (PBFT commits need quorum weight, not every
    # vote).  The engines deliberately have no retransmission or view
    # change, so a round that loses too many copies of one message
    # deadlocks -- at 1% that is vanishingly rare; push the rate up to
    # see the knee.
    return Scenario(
        name="lossy-wan",
        protocol="pbft",
        deployment="Europe21",
        workload="open-loop",
        workload_params={"rate": 40.0},
        duration=d,
        seed=seed,
        faults=[FaultSpec(kind="loss", params={"rate": 0.01})],
    )


def _smear_campaign(seed: int, duration: Optional[float]) -> Scenario:
    d = 90.0 if duration is None else duration
    # Fig. 10's false-suspicion attack on the OptiAware leader pipeline:
    # three faulty replicas take turns fabricating ⟨Slow⟩ records against
    # whoever leads; reciprocation excludes the smeared leader from K and
    # forces reconfigurations onto ever-worse candidates.
    return Scenario(
        name="smear-campaign",
        protocol="pbft-optiaware",
        deployment="Europe21",
        workload="closed-loop",
        duration=d,
        seed=seed,
        delta=1.25,
        measurements=MeasurementPolicy(
            probe_at=d / 18.0,
            publish_at=d / 6.0,
            first_search_at=4.0 * d / 9.0,
            search_period=2.0 * d / 9.0,
        ),
        faults=[
            FaultSpec(
                kind="false_suspicion",
                start=d / 3.0,
                attacker=(17, 18, 19),
                params={"period": d / 9.0, "rounds": 3},
            )
        ],
    )


#: name -> (factory, one-line description shown by ``python -m repro list``).
ADVERSARIAL_SCENARIOS: Dict[
    str, Tuple[Callable[[int, Optional[float]], Scenario], str]
] = {
    "partition-heal": (
        _partition_heal,
        "minority partition splits off mid-run, then heals (pbft/Europe21)",
    ),
    "churn-storm": (
        _churn_storm,
        "random crash/recover cycles under rotating leaders (hotstuff-rr)",
    ),
    "stealth-delta": (
        _stealth_delta,
        "intermediates delay to 95% of the suspicion budget (kauri, Fig. 11)",
    ),
    "lossy-wan": (
        _lossy_wan,
        "1% message loss on every link for the whole run (pbft/Europe21)",
    ),
    "smear-campaign": (
        _smear_campaign,
        "faulty replicas fabricate suspicions against the leader (optiaware)",
    ),
}


def format_scenario_registry() -> str:
    """The registry as sorted ``name  description`` lines.

    One source of truth for three consumers: ``repro scenario --list``,
    the unknown-name error below, and the adversary-synthesis reference
    points (:mod:`repro.experiments.attack` derives its arenas and
    hand-authored comparison attacks from the same registry).
    """
    width = max(len(name) for name in ADVERSARIAL_SCENARIOS)
    return "\n".join(
        f"  {name.ljust(width)}  {ADVERSARIAL_SCENARIOS[name][1]}"
        for name in sorted(ADVERSARIAL_SCENARIOS)
    )


def make_scenario(
    name: str, seed: int = 0, duration: Optional[float] = None
) -> Scenario:
    """Build a registered adversarial scenario by name."""
    try:
        factory, _ = ADVERSARIAL_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available scenarios:\n"
            + format_scenario_registry()
        ) from None
    return factory(seed, duration)


def run_named(
    name: str, seed: int = 0, duration: Optional[float] = None
) -> ScenarioResult:
    """Run a registered adversarial scenario end to end."""
    return run_scenario(make_scenario(name, seed=seed, duration=duration))
