"""Robustness frontiers: degradation as a function of adversary budget.

The tentpole question fig10/fig11 could not answer: *how bad is the
worst bounded adversary*?  A frontier sweeps one budget axis (the
adversary's faulty-replica allowance, or its stealth δ-bound), runs the
full synthesis search at each level, and reports the achieved
worst-of-k-seeds degradation -- with the hand-authored scenarios from
the registry evaluated on the same arena as reference points, so the
synthesized frontier and the five fixed attacks are directly
comparable (and the synthesized attack exceeding the best hand-authored
one at equal budget is visible, not asserted).

Determinism: each frontier point derives its search seed from the root
seed and its axis label (``derive_sweep_seed``), so adding or reordering
levels never perturbs other points, and any ``jobs`` value is
byte-identical to serial (the per-point searches inherit the search's
one-level parallelism rule).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.attack import (
    best_reference_degradation,
    ensure_baselines,
    evaluate_references,
    make_arena,
)
from repro.experiments.parallel import derive_sweep_seed
from repro.faults.genome import AdversaryBudget
from repro.optimize.adversary import DEFAULT_SCHEDULE, attack_search

#: Budget axes the frontier can sweep and their default levels.
FRONTIER_AXES: Dict[str, Sequence[float]] = {
    "faulty": (1, 3, 6),
    "delta": (1.0, 1.25, 1.5),
}


def budget_at(
    axis: str, level: float, base: Optional[AdversaryBudget] = None
) -> AdversaryBudget:
    """The base budget with one axis dialled to ``level``."""
    base = base or AdversaryBudget()
    if axis == "faulty":
        return dataclasses.replace(base, max_faulty=int(level))
    if axis == "delta":
        return dataclasses.replace(base, delta=float(level))
    known = ", ".join(sorted(FRONTIER_AXES))
    raise ValueError(f"unknown frontier axis {axis!r} (known: {known})")


def run_frontier(
    arena_name: str = "pbft",
    objective: str = "latency",
    axis: str = "faulty",
    levels: Optional[Sequence[float]] = None,
    base_budget: Optional[AdversaryBudget] = None,
    duration: Optional[float] = None,
    seeds: Sequence[int] = (0, 1),
    seed: int = 0,
    restarts: int = 2,
    schedule=None,
    jobs: Optional[int] = None,
    progress=None,
) -> Dict[str, Any]:
    """Sweep one budget axis, synthesizing the worst attack at each level."""
    if axis not in FRONTIER_AXES:
        known = ", ".join(sorted(FRONTIER_AXES))
        raise ValueError(f"unknown frontier axis {axis!r} (known: {known})")
    levels = list(levels if levels is not None else FRONTIER_AXES[axis])
    schedule = schedule or DEFAULT_SCHEDULE
    arena = make_arena(arena_name, duration=duration, seeds=seeds)
    ensure_baselines(arena)

    if progress is not None:
        progress(f"frontier {arena_name}/{objective}: evaluating references")
    references = evaluate_references(arena, objective)

    points: List[Dict[str, Any]] = []
    for level in levels:
        budget = budget_at(axis, level, base_budget)
        if progress is not None:
            progress(f"frontier {arena_name}/{objective}: {axis}={level}")
        search = attack_search(
            arena,
            budget,
            objective,
            seed=derive_sweep_seed(seed, f"frontier-{axis}-{level}"),
            restarts=restarts,
            schedule=schedule,
            jobs=jobs,
            progress=progress,
        )
        points.append(
            {
                "level": level,
                "budget": search["budget"],
                "degradation": search["best"]["degradation"],
                "genome": search["best"]["genome"],
                "label": search["best"]["label"],
                "evaluation": search["best"]["evaluation"],
                "scenario_runs": search["scenario_runs"],
            }
        )

    return {
        "frontier_version": 1,
        "arena": arena_name,
        "objective": objective,
        "axis": axis,
        "levels": levels,
        "duration": arena.base.duration,
        "seeds": list(arena.seeds),
        "seed": seed,
        "restarts": restarts,
        "iterations": schedule.iterations,
        "points": points,
        "references": [
            {
                "name": ref["name"],
                "degradation": ref["degradation"],
                "victims": ref["victims"],
                "per_seed": ref["per_seed"],
            }
            for ref in references
        ],
        "best_reference": best_reference_degradation(references),
        "scenario_runs": sum(point["scenario_runs"] for point in points),
    }


def format_frontier_table(report: Dict[str, Any]) -> str:
    """Human-readable frontier: one row per budget level + references."""
    lines = [
        f"robustness frontier -- arena {report['arena']} / objective "
        f"{report['objective']} (axis: {report['axis']}, "
        f"duration {report['duration']}s, seeds {report['seeds']})",
        f"{'budget':>10s}  {'degradation':>12s}  best synthesized attack",
    ]
    for point in report["points"]:
        lines.append(
            f"{report['axis']}={point['level']:<6g}  "
            f"{point['degradation']:>12.3f}  {point['label']}"
        )
    lines.append("hand-authored reference points:")
    for ref in report["references"]:
        lines.append(
            f"{'ref':>10s}  {ref['degradation']:>12.3f}  {ref['name']}"
        )
    return "\n".join(lines)


def write_frontier(report: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
