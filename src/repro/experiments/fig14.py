"""Fig. 14 (App. B.1): the cost of overprovisioning for robustness.

OptiTree optimises ``score(k, τ)`` with ``k = q + u``: larger ``u`` buys
tolerance to unresponsive leaves at the price of fault-free latency.
This sweep varies ``u`` from 5% to 30% of the tree size for worldwide
random placements; with 211 replicas the paper reports a 54% latency
increase at u = 30%.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import List

from repro.experiments.tables import format_table
from repro.net.deployments import random_world_deployment
from repro.optimize.annealing import AnnealingSchedule
from repro.tree.optitree import optitree_search

SIZES = (21, 43, 91, 111, 157, 211)
U_FRACTIONS = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30)


@dataclass
class Fig14Row:
    n: int
    u_fraction: float
    u: int
    mean_score: float


def run(
    sizes=SIZES,
    u_fractions=U_FRACTIONS,
    runs: int = 5,
    seed: int = 0,
    sa_iterations: int = 4000,
) -> List[Fig14Row]:
    rows = []
    for n in sizes:
        f = (n - 1) // 3
        q = n - f
        deployment = random_world_deployment(n, random.Random(seed + n))
        latency = deployment.latency.matrix_seconds() / 2.0
        for fraction in u_fractions:
            u = max(0, int(round(fraction * n)))
            k = min(q + u, n)  # cannot collect more votes than replicas
            scores = []
            for run_index in range(runs):
                result = optitree_search(
                    latency,
                    n,
                    f,
                    candidates=frozenset(range(n)),
                    u=u,
                    rng=random.Random(seed + 97 * run_index + n),
                    schedule=AnnealingSchedule(
                        iterations=sa_iterations, initial_temperature=0.05,
                        cooling=0.9995,
                    ),
                    k=k,
                )
                scores.append(result.best_score)
            rows.append(
                Fig14Row(
                    n=n,
                    u_fraction=fraction,
                    u=u,
                    mean_score=statistics.mean(scores),
                )
            )
    return rows


def degradation(rows: List[Fig14Row], n: int) -> float:
    """Latency increase from the smallest to the largest u, for size n."""
    sized = sorted(
        (row for row in rows if row.n == n), key=lambda row: row.u_fraction
    )
    if len(sized) < 2 or sized[0].mean_score == 0:
        return 0.0
    return sized[-1].mean_score / sized[0].mean_score - 1.0


def main(runs: int = 3, seed: int = 0) -> str:
    rows = run(runs=runs, seed=seed)
    table = format_table(
        ["n", "u/n", "u", "mean score [s]"],
        [[r.n, f"{r.u_fraction:.0%}", r.u, r.mean_score] for r in rows],
        title="Fig. 14 -- score degradation as tolerated faulty leaves grow",
    )
    summary = f"n=211 degradation 5%→30%: {degradation(rows, 211):+.1%}"
    return f"{table}\n\n{summary}"


if __name__ == "__main__":
    print(main())
