"""Fig. 15 (App. B.2): OptiTree reconfiguration under a failing root.

21 Europe-based replicas; the current tree root crashes every 10 seconds.
Each failure is detected by timeout, crash suspicions are recorded (the
crashed root cannot reciprocate, so it ages into the crashed set C),
simulated annealing searches for ~1 second, and the new tree is
installed -- after which throughput recovers.  The crashed replica
restarts as a leaf, keeping the run within the fault budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.consensus.kauri import KauriCluster
from repro.core.log import AppendOnlyLog
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.experiments.tables import format_table
from repro.net.deployments import deployment_for
from repro.optimize.annealing import AnnealingSchedule
from repro.tree.candidates import TreeSuspicionMonitor
from repro.tree.optitree import optitree_search
from repro.tree.score import PHASE_AGGREGATE


@dataclass
class Fig15Result:
    throughput_series: List[Tuple[float, float]]
    reconfigure_times: List[float]
    crash_times: List[float]

    def recovered_after(self, crash_time: float, window: float = 4.0) -> bool:
        """Did throughput come back within ``window`` s of the crash?"""
        for time, value in self.throughput_series:
            if crash_time + 1.0 <= time <= crash_time + window and value > 0:
                return True
        return False


def _merged_throughput(cluster: KauriCluster, duration: float, bucket: float = 1.0):
    """Union of commits over all replicas (roots change across segments)."""
    seen: Dict[int, Tuple[float, int]] = {}
    for replica in cluster.replicas:
        for event in replica.metrics.commits:
            if event.height not in seen or event.commit_time < seen[event.height][0]:
                seen[event.height] = (event.commit_time, event.payload_count)
    buckets = int(duration / bucket) + 1
    series = [0.0] * buckets
    for commit_time, payload in seen.values():
        index = int(commit_time / bucket)
        if 0 <= index < buckets:
            series[index] += payload / bucket
    return [(index * bucket, value) for index, value in enumerate(series)]


def run(
    duration: float = 90.0,
    crash_period: float = 10.0,
    detect_delay: float = 0.5,
    search_time: float = 1.0,
    seed: int = 0,
    sa_iterations: int = 4000,
) -> Fig15Result:
    deployment = deployment_for("Europe21")
    n = deployment.n
    f = (n - 1) // 3
    latency = deployment.latency.matrix_seconds() / 2.0
    rng = random.Random(seed)
    schedule = AnnealingSchedule(
        iterations=sa_iterations, initial_temperature=0.05, cooling=0.9995
    )

    # Driver-level OptiLog state: all replicas hold identical monitors, so
    # one deterministic instance stands for the fleet.
    log = AppendOnlyLog()
    monitor = TreeSuspicionMonitor(0, log, n=n, f=f)
    view = 0

    initial = optitree_search(
        latency, n, f, frozenset(range(n)), u=0, rng=rng, schedule=schedule
    ).best_state
    cluster = KauriCluster(deployment, initial, pipeline_depth=1, seed=seed)

    crash_times: List[float] = []
    reconfigure_times: List[float] = []

    def crash_root() -> None:
        nonlocal view
        root = cluster.tree.root
        cluster.network.set_down(root)
        crash_times.append(cluster.sim.now)
        cluster.sim.schedule(detect_delay, detect_failure, root)
        next_crash = cluster.sim.now + crash_period
        if next_crash < duration - crash_period / 2:
            cluster.sim.schedule(crash_period, crash_root)

    def detect_failure(root: int) -> None:
        nonlocal view
        cluster.pause()
        # Intermediates suspect the silent root; no reciprocation can come
        # back, so after f+1 views the root ages into C (crash suspicion).
        for reporter in cluster.tree.intermediates:
            log.append(
                SuspicionRecord(
                    reporter=reporter,
                    suspect=root,
                    kind=SuspicionKind.SLOW,
                    round_id=len(crash_times),
                    msg_type="propose",
                    phase=PHASE_AGGREGATE,
                    view=view,
                )
            )
        for _ in range(f + 2):
            view += 1
            monitor.advance_view(view)
        cluster.sim.schedule(search_time, install_new_tree, root)

    def install_new_tree(crashed_root: int) -> None:
        candidates, u = monitor.estimate()
        candidates = candidates - {crashed_root}
        result = optitree_search(
            latency, n, f, candidates, u, rng=rng, schedule=schedule
        )
        if result is None:
            return
        tree = result.best_state
        next_height = max(replica.next_height for replica in cluster.replicas)
        for replica in cluster.replicas:
            replica.next_height = next_height
            replica.committed_height = max(replica.committed_height, next_height - 1)
        cluster.install_tree(tree)
        cluster.network.set_down(crashed_root, False)  # restarts as a leaf
        reconfigure_times.append(cluster.sim.now)
        cluster.resume()

    cluster.sim.schedule_at(crash_period, crash_root)
    for replica in cluster.replicas:
        replica.start()
    cluster.sim.run(until=duration)
    cluster.pause()

    return Fig15Result(
        throughput_series=_merged_throughput(cluster, duration),
        reconfigure_times=reconfigure_times,
        crash_times=crash_times,
    )


def main(duration: float = 60.0, seed: int = 0) -> str:
    result = run(duration=duration, seed=seed)
    rows = [[f"{time:.0f}", round(value)] for time, value in result.throughput_series]
    table = format_table(
        ["time [s]", "throughput [op/s]"],
        rows,
        title="Fig. 15 -- throughput under a root failing every 10 s",
    )
    recoveries = sum(
        1 for crash in result.crash_times if result.recovered_after(crash)
    )
    return (
        f"{table}\n\ncrashes: {len(result.crash_times)}, "
        f"reconfigurations: {len(result.reconfigure_times)}, "
        f"recovered within 4 s: {recoveries}/{len(result.crash_times)}"
    )


if __name__ == "__main__":
    print(main())
