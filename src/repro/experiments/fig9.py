"""Fig. 9: throughput and latency of HotStuff, Kauri and OptiTree.

Deployments Europe21 / NA-EU43 / Stellar56 / Global73 (§7.4).  Protocols:
HotStuff-fixed, HotStuff-rr, pipelined Kauri with a random tree, OptiTree
with and without pipelining (tree found by one second of simulated
annealing, ranked with k = 2f+1 as §7.3 specifies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.parallel import parallel_map
from repro.experiments.runner import Scenario, run_scenario
from repro.experiments.tables import format_table

DEPLOYMENTS = ("Europe21", "NA-EU43", "Stellar56", "Global73")
PROTOCOLS = (
    "OptiTree",
    "OptiTree (no pipeline)",
    "Kauri (pipeline)",
    "HotStuff-rr",
    "HotStuff-fixed",
)

#: Fig. 9 labels -> runner protocol names.
RUNNER_PROTOCOL = {
    "HotStuff-fixed": "hotstuff-fixed",
    "HotStuff-rr": "hotstuff-rr",
    "Kauri (pipeline)": "kauri",
    "OptiTree": "optitree",
    "OptiTree (no pipeline)": "optitree-nopipe",
}


@dataclass
class Fig9Cell:
    deployment: str
    protocol: str
    throughput: float
    latency: float


def run_cell(
    deployment_name: str,
    protocol: str,
    duration: float = 20.0,
    seed: int = 0,
    search_iterations: int = 20_000,
) -> Fig9Cell:
    if protocol not in RUNNER_PROTOCOL:
        raise ValueError(f"unknown protocol {protocol!r}")
    scenario = Scenario(
        name=f"fig9/{deployment_name}/{protocol}",
        protocol=RUNNER_PROTOCOL[protocol],
        deployment=deployment_name,
        workload="saturated",  # §7.3: self-clocked blocks of 1000 proposals
        duration=duration,
        seed=seed,
        search_iterations=search_iterations,
    )
    metrics = run_scenario(scenario).run_metrics
    return Fig9Cell(
        deployment=deployment_name,
        protocol=protocol,
        throughput=metrics.throughput(duration),
        latency=metrics.mean_latency(),
    )


def _run_cell_point(point: Tuple[str, str, float, int, int]) -> Fig9Cell:
    """Worker: one (deployment, protocol) grid cell."""
    deployment, protocol, duration, seed, search_iterations = point
    return run_cell(
        deployment,
        protocol,
        duration=duration,
        seed=seed,
        search_iterations=search_iterations,
    )


def run(
    deployments=DEPLOYMENTS,
    protocols=PROTOCOLS,
    duration: float = 20.0,
    seed: int = 0,
    search_iterations: int = 20_000,
    jobs: Optional[int] = None,
) -> List[Fig9Cell]:
    """The full grid; cells are independent seeded runs, so ``jobs``
    shards them across processes with cell-identical results."""
    points = [
        (deployment, protocol, duration, seed, search_iterations)
        for deployment in deployments
        for protocol in protocols
    ]
    return parallel_map(_run_cell_point, points, jobs=jobs)


def improvement_summary(cells: List[Fig9Cell], deployment: str) -> Dict[str, float]:
    """OptiTree-vs-Kauri deltas the paper highlights (+159% tput, −39%
    latency at Global73; +67.5% / −36% at Stellar56)."""
    by_protocol = {c.protocol: c for c in cells if c.deployment == deployment}
    opti = by_protocol.get("OptiTree")
    kauri = by_protocol.get("Kauri (pipeline)")
    if opti is None or kauri is None or kauri.throughput == 0:
        return {}
    return {
        "throughput_gain": opti.throughput / kauri.throughput - 1.0,
        "latency_reduction": 1.0 - opti.latency / kauri.latency,
    }


def main(duration: float = 20.0, seed: int = 0, jobs: Optional[int] = None) -> str:
    cells = run(duration=duration, seed=seed, jobs=jobs)
    rows = [
        [c.deployment, c.protocol, round(c.throughput), round(c.latency, 3)]
        for c in cells
    ]
    table = format_table(
        ["deployment", "protocol", "throughput [op/s]", "latency [s]"],
        rows,
        title="Fig. 9 -- throughput and latency across geographic distributions",
    )
    lines = [table, ""]
    for deployment in ("Global73", "Stellar56"):
        summary = improvement_summary(cells, deployment)
        if summary:
            lines.append(
                f"{deployment}: OptiTree vs Kauri(pipeline): "
                f"throughput {summary['throughput_gain']:+.1%}, "
                f"latency {-summary['latency_reduction']:+.1%}"
            )
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
