"""Fig. 9: throughput and latency of HotStuff, Kauri and OptiTree.

Deployments Europe21 / NA-EU43 / Stellar56 / Global73 (§7.4).  Protocols:
HotStuff-fixed, HotStuff-rr, pipelined Kauri with a random tree, OptiTree
with and without pipelining (tree found by one second of simulated
annealing, ranked with k = 2f+1 as §7.3 specifies).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.consensus.hotstuff import HotStuffCluster
from repro.consensus.kauri import KauriCluster
from repro.experiments.tables import format_table
from repro.net.deployments import Deployment, deployment_for
from repro.optimize.annealing import AnnealingSchedule
from repro.tree.kauri_reconfig import KauriReconfigurer
from repro.tree.optitree import optitree_search
from repro.workloads import PIPELINE_DEPTH

DEPLOYMENTS = ("Europe21", "NA-EU43", "Stellar56", "Global73")
PROTOCOLS = (
    "OptiTree",
    "OptiTree (no pipeline)",
    "Kauri (pipeline)",
    "HotStuff-rr",
    "HotStuff-fixed",
)


@dataclass
class Fig9Cell:
    deployment: str
    protocol: str
    throughput: float
    latency: float


def _optitree_tree(deployment: Deployment, f: int, seed: int, search_iterations: int):
    latency = deployment.latency.matrix_seconds() / 2.0
    n = deployment.n
    result = optitree_search(
        latency,
        n,
        f,
        candidates=frozenset(range(n)),
        u=0,
        rng=random.Random(seed),
        schedule=AnnealingSchedule(
            iterations=search_iterations, initial_temperature=0.05, cooling=0.9995
        ),
        k=2 * f + 1,  # §7.3 default ranking
    )
    return result.best_state


def run_cell(
    deployment_name: str,
    protocol: str,
    duration: float = 20.0,
    seed: int = 0,
    search_iterations: int = 20_000,
) -> Fig9Cell:
    deployment = deployment_for(deployment_name)
    n = deployment.n
    f = (n - 1) // 3
    if protocol == "HotStuff-fixed":
        # Random fixed leader, per §7.4.
        leader = random.Random(seed).randrange(n)
        cluster = HotStuffCluster(
            deployment, leader_mode="fixed", fixed_leader=leader, seed=seed
        )
        metrics = cluster.run(duration)
    elif protocol == "HotStuff-rr":
        cluster = HotStuffCluster(deployment, leader_mode="rr", seed=seed)
        metrics = cluster.run(duration)
    elif protocol == "Kauri (pipeline)":
        tree = KauriReconfigurer(n, rng=random.Random(seed)).tree_for_bin(0)
        cluster = KauriCluster(
            deployment, tree, pipeline_depth=PIPELINE_DEPTH, seed=seed
        )
        metrics = cluster.run(duration)
    elif protocol in ("OptiTree", "OptiTree (no pipeline)"):
        tree = _optitree_tree(deployment, f, seed, search_iterations)
        depth = PIPELINE_DEPTH if protocol == "OptiTree" else 1
        cluster = KauriCluster(deployment, tree, pipeline_depth=depth, seed=seed)
        metrics = cluster.run(duration)
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    return Fig9Cell(
        deployment=deployment_name,
        protocol=protocol,
        throughput=metrics.throughput(duration),
        latency=metrics.mean_latency(),
    )


def run(
    deployments=DEPLOYMENTS,
    protocols=PROTOCOLS,
    duration: float = 20.0,
    seed: int = 0,
    search_iterations: int = 20_000,
) -> List[Fig9Cell]:
    return [
        run_cell(
            deployment,
            protocol,
            duration=duration,
            seed=seed,
            search_iterations=search_iterations,
        )
        for deployment in deployments
        for protocol in protocols
    ]


def improvement_summary(cells: List[Fig9Cell], deployment: str) -> Dict[str, float]:
    """OptiTree-vs-Kauri deltas the paper highlights (+159% tput, −39%
    latency at Global73; +67.5% / −36% at Stellar56)."""
    by_protocol = {c.protocol: c for c in cells if c.deployment == deployment}
    opti = by_protocol.get("OptiTree")
    kauri = by_protocol.get("Kauri (pipeline)")
    if opti is None or kauri is None or kauri.throughput == 0:
        return {}
    return {
        "throughput_gain": opti.throughput / kauri.throughput - 1.0,
        "latency_reduction": 1.0 - opti.latency / kauri.latency,
    }


def main(duration: float = 20.0, seed: int = 0) -> str:
    cells = run(duration=duration, seed=seed)
    rows = [
        [c.deployment, c.protocol, round(c.throughput), round(c.latency, 3)]
        for c in cells
    ]
    table = format_table(
        ["deployment", "protocol", "throughput [op/s]", "latency [s]"],
        rows,
        title="Fig. 9 -- throughput and latency across geographic distributions",
    )
    lines = [table, ""]
    for deployment in ("Global73", "Stellar56"):
        summary = improvement_summary(cells, deployment)
        if summary:
            lines.append(
                f"{deployment}: OptiTree vs Kauri(pipeline): "
                f"throughput {summary['throughput_gain']:+.1%}, "
                f"latency {-summary['latency_reduction']:+.1%}"
            )
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
