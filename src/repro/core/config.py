"""Configuration sensor and monitor (§4.2.4).

The ConfigSensor *searches* for a better configuration -- possibly
non-deterministically (simulated annealing) and possibly over a partition
of the search space (collaborative optimization) -- and proposes its best
find to the log.  The ConfigMonitor *selects* deterministically among
committed proposals: it validates each proposal (special roles must come
from the candidate set ``K``), re-computes its score from the shared
monitors (which is what holds proposers accountable for inflated claims),
waits for ``f+1`` proposals when the current configuration is invalid, and
requires a significant improvement before replacing a still-valid one.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.log import AppendOnlyLog, LogEntry
from repro.core.monitor import Monitor
from repro.core.records import Configuration, ConfigProposalRecord
from repro.core.sensor import Sensor, SensorApp

# A score function evaluates a configuration against the current metric
# state; lower is better and ``inf`` marks an infeasible configuration.
ScoreFn = Callable[[Configuration], float]
# A search function produces a configuration given (candidates, u, rng).
SearchFn = Callable[[FrozenSet[int], int, random.Random], Optional[Configuration]]


class ConfigSensor(Sensor):
    """Searches for configurations and proposes them (§4.2.4).

    The actual search strategy is injected: protocol integrations supply
    a ``search`` built on their score function (exhaustive for Aware-size
    cliques, simulated annealing for trees).  The sensor reads ``K`` and
    ``u`` from the local SuspicionMonitor through ``candidate_provider``
    -- sensor reading local monitors is the dashed arrow in Fig. 2.
    """

    name = "config-sensor"

    def __init__(
        self,
        replica_id: int,
        app: SensorApp,
        search: SearchFn,
        score: ScoreFn,
        candidate_provider: Callable[[], Tuple[FrozenSet[int], int]],
        rng: Optional[random.Random] = None,
    ):
        super().__init__(replica_id, app)
        self._search = search
        self._score = score
        self._candidates = candidate_provider
        self.rng = rng or random.Random(replica_id)
        self.searches_run = 0

    def search_and_propose(
        self, view: int = 0, basis_seq: int = -1
    ) -> Optional[ConfigProposalRecord]:
        """Run one search and propose the best configuration found.

        Returns None when the search finds nothing feasible (e.g. the
        candidate set is too small for the topology).
        """
        candidates, u = self._candidates()
        self.searches_run += 1
        configuration = self._search(candidates, u, self.rng)
        if configuration is None:
            return None
        score = self._score(configuration)
        if math.isinf(score):
            return None
        record = ConfigProposalRecord(
            proposer=self.replica_id,
            configuration=configuration,
            claimed_score=score,
            view=view,
            basis_seq=basis_seq,
        )
        self.record(record)
        return record


@dataclass
class ReconfigurationDecision:
    """Outcome the ConfigMonitor hands to the RSM."""

    configuration: Configuration
    score: float
    proposer: int
    reason: str  # "invalid-current" or "improvement"


class ConfigMonitor(Monitor):
    """Selects configurations deterministically from logged proposals.

    Parameters
    ----------
    score:
        Deterministic re-scoring function (same metric state on every
        replica, so the same value everywhere).
    validator:
        Structural validity check for a configuration (e.g. "is a
        well-formed tree over all replicas").
    candidate_provider:
        Returns the current ``(K, u)``; used both to validate proposals
        (special roles ⊆ K) and to detect that the *current*
        configuration became invalid.
    f:
        Fault threshold; reconfiguration out of an invalid configuration
        waits for ``f+1`` proposals so a faulty proposer cannot force a
        bad choice.
    improvement_factor:
        A still-valid configuration is only replaced when the new score
        is better by this factor (default 10%), avoiding reconfiguration
        churn.
    """

    name = "config-monitor"
    record_types = (ConfigProposalRecord,)

    def __init__(
        self,
        replica_id: int,
        log: AppendOnlyLog,
        score: ScoreFn,
        validator: Callable[[Configuration], bool],
        candidate_provider: Callable[[], Tuple[FrozenSet[int], int]],
        f: int,
        on_reconfigure: Optional[Callable[[ReconfigurationDecision], None]] = None,
        improvement_factor: float = 0.9,
    ):
        self._score = score
        self._validator = validator
        self._candidates = candidate_provider
        self.f = f
        self.improvement_factor = improvement_factor
        self.on_reconfigure = on_reconfigure
        self.current: Optional[Configuration] = None
        self.current_score = math.inf
        #: Valid proposals gathered since the last reconfiguration,
        #: keyed by proposer (a proposer's newer proposal replaces older).
        self._pending: Dict[int, Tuple[float, ConfigProposalRecord]] = {}
        self.reconfigurations: List[ReconfigurationDecision] = []
        self.invalid_proposals = 0
        super().__init__(replica_id, log)

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------
    def proposal_is_valid(self, configuration: Configuration) -> bool:
        """Valid iff structurally sound and special roles are candidates."""
        candidates, _u = self._candidates()
        if not self._validator(configuration):
            return False
        return configuration.special_replicas() <= candidates

    def current_is_valid(self) -> bool:
        """Does the active configuration still use only candidates?"""
        if self.current is None:
            return False
        return self.proposal_is_valid(self.current)

    # ------------------------------------------------------------------
    # Log consumption
    # ------------------------------------------------------------------
    def on_entry(self, entry: LogEntry) -> None:
        record: ConfigProposalRecord = entry.record
        if not self.proposal_is_valid(record.configuration):
            self.invalid_proposals += 1
            return
        # Re-score deterministically; the claimed score is advisory only.
        score = self._score(record.configuration)
        if math.isinf(score):
            self.invalid_proposals += 1
            return
        self._pending[record.proposer] = (score, record)
        self.evaluate()

    def recheck(self) -> None:
        """Re-evaluate after candidate-set changes (chained from the
        SuspicionMonitor via ``add_listener``)."""
        self.evaluate()

    def evaluate(self) -> None:
        """Apply the selection rule; triggers reconfiguration if due.

        Buffered proposals are re-validated against the *current*
        candidate set first: a proposal that was valid when logged may
        name a replica that has since been suspected (e.g. the old leader
        after an attack), and must not be reconfigured to.
        """
        self._pending = {
            proposer: (score, record)
            for proposer, (score, record) in self._pending.items()
            if self.proposal_is_valid(record.configuration)
        }
        if not self._pending:
            return
        best_proposer, (best_score, best_record) = min(
            self._pending.items(), key=lambda kv: (kv[1][0], kv[0])
        )
        if not self.current_is_valid():
            # Invalid (or missing) current configuration: wait for f+1
            # proposals, then take the best.
            if len(self._pending) >= self.f + 1 or self.current is None:
                self._activate(best_record, best_score, "invalid-current")
        else:
            # Valid current configuration: replace only on significant
            # improvement.
            if best_score < self.current_score * self.improvement_factor:
                self._activate(best_record, best_score, "improvement")

    def _activate(
        self, record: ConfigProposalRecord, score: float, reason: str
    ) -> None:
        decision = ReconfigurationDecision(
            configuration=record.configuration,
            score=score,
            proposer=record.proposer,
            reason=reason,
        )
        self.current = record.configuration
        self.current_score = score
        self._pending.clear()
        self.reconfigurations.append(decision)
        if self.on_reconfigure is not None:
            self.on_reconfigure(decision)

    def install(self, configuration: Configuration) -> None:
        """Adopt an initial configuration without a log proposal."""
        self.current = configuration
        self.current_score = self._score(configuration)

    @property
    def pending_count(self) -> int:
        return len(self._pending)
