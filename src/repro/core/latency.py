"""Latency sensor and monitor (§4.2.1).

The LatencySensor measures link latencies -- either by piggybacking on
protocol round-trips (HotStuff-style direct replies) or with dedicated
probe messages -- compiles them into a *latency vector*, and submits the
vector to the log.  Replicas that fail to reply are marked ``UNREACHABLE``.

The LatencyMonitor folds committed vectors into a symmetric *latency
matrix* ``L``:  ``L[A][B] = max(Lr(A,B), Lr(B,A))``, where ``Lr`` are the
recorded directional values.

Normalisation: matrix entries are **link latencies** (one-way ≈ RTT/2),
so that summing entries along a message path predicts the path's delay and
``d_m``/``d_rnd`` derived from the matrix (TR1-TR3) are directly comparable
with observed arrival times.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.log import AppendOnlyLog, LogEntry
from repro.core.monitor import Monitor
from repro.core.records import UNREACHABLE, LatencyVectorRecord
from repro.core.sensor import Sensor, SensorApp


class LatencySensor(Sensor):
    """Collects per-peer latency samples and emits latency vectors.

    Samples arrive through :meth:`observe_rtt` (protocol round trips) or
    :meth:`observe_link` (pre-halved probe estimates).  The most recent
    sample per peer wins; an exponentially-weighted option is deliberately
    omitted because the paper re-measures periodically and replaces rows
    wholesale.
    """

    name = "latency-sensor"

    def __init__(self, replica_id: int, n: int, app: SensorApp):
        super().__init__(replica_id, app)
        self.n = n
        self._samples: Dict[int, float] = {}

    def observe_rtt(self, peer: int, rtt_seconds: float) -> None:
        """Record a round-trip observation; stored as link latency RTT/2."""
        self._samples[peer] = rtt_seconds / 2.0

    def observe_link(self, peer: int, link_seconds: float) -> None:
        """Record an already-normalised link-latency observation."""
        self._samples[peer] = link_seconds

    def mark_unreachable(self, peer: int) -> None:
        """Mark a peer that failed to reply (∞ in the vector)."""
        self._samples[peer] = UNREACHABLE

    def compile_vector(self, view: int = 0) -> LatencyVectorRecord:
        """Build the latency vector; unmeasured peers count as unreachable."""
        vector = tuple(
            0.0 if peer == self.replica_id else self._samples.get(peer, UNREACHABLE)
            for peer in range(self.n)
        )
        return LatencyVectorRecord(sender=self.replica_id, vector=vector, view=view)

    def measure_and_record(self, view: int = 0) -> LatencyVectorRecord:
        """Compile the current vector and submit it to the log."""
        record = self.compile_vector(view)
        self.record(record)
        return record


class LatencyMonitor(Monitor):
    """Maintains the symmetric latency matrix ``L`` (§4.2.1).

    The matrix is ``n x n`` with ``inf`` for unmeasured or unreachable
    pairs and zero diagonal.  Symmetry uses the paper's rule
    ``L[A][B] = max(Lr(A,B), Lr(B,A))``; while only one direction has been
    recorded, that direction's value is used.
    """

    name = "latency-monitor"
    record_types = (LatencyVectorRecord,)

    def __init__(self, replica_id: int, log: AppendOnlyLog, n: int):
        self.n = n
        # Raw directional recordings; NaN = never recorded.
        self._recorded = np.full((n, n), math.nan)
        self.matrix = np.full((n, n), math.inf)
        np.fill_diagonal(self.matrix, 0.0)
        np.fill_diagonal(self._recorded, 0.0)
        self.vectors_seen = 0
        super().__init__(replica_id, log)

    def on_entry(self, entry: LogEntry) -> None:
        record: LatencyVectorRecord = entry.record
        sender = record.sender
        if sender < 0 or sender >= self.n or len(record.vector) != self.n:
            return  # malformed rows are ignored (sender may be Byzantine)
        self.vectors_seen += 1
        for peer in range(self.n):
            if peer == sender:
                continue
            value = record.vector[peer]
            if value < 0:
                continue  # negative latencies are nonsensical; skip entry
            self._recorded[sender, peer] = value
            self._merge(sender, peer)

    def _merge(self, a: int, b: int) -> None:
        ab = self._recorded[a, b]
        ba = self._recorded[b, a]
        if math.isnan(ab) and math.isnan(ba):
            merged = math.inf
        elif math.isnan(ab):
            merged = ba
        elif math.isnan(ba):
            merged = ab
        else:
            merged = max(ab, ba)
        self.matrix[a, b] = merged
        self.matrix[b, a] = merged

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def latency(self, a: int, b: int) -> float:
        """Symmetric link latency between ``a`` and ``b`` in seconds."""
        return float(self.matrix[a, b])

    def is_complete(self, among: Optional[List[int]] = None) -> bool:
        """True when every pair (of ``among``, default all) is measured."""
        ids = among if among is not None else list(range(self.n))
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if math.isinf(self.matrix[a, b]):
                    return False
        return True

    def reachable_peers(self, a: int) -> List[int]:
        return [
            b
            for b in range(self.n)
            if b != a and not math.isinf(self.matrix[a, b])
        ]


def probe_all_peers(
    sensor: LatencySensor,
    rtt_provider: Callable[[int, int], float],
    responsive: Optional[Callable[[int], bool]] = None,
) -> None:
    """Convenience probe loop: measure every peer through ``rtt_provider``.

    Stands in for the dedicated probe messages of §4.2.1 in analytical
    experiments; the simulation-driven experiments measure real message
    round trips instead.
    """
    for peer in range(sensor.n):
        if peer == sensor.replica_id:
            continue
        if responsive is not None and not responsive(peer):
            sensor.mark_unreachable(peer)
        else:
            sensor.observe_rtt(peer, rtt_provider(sensor.replica_id, peer))
