"""Per-replica wiring of OptiLog's sensors and monitors (Figs. 1-3).

An :class:`OptiLogPipeline` instantiates, for one replica, the four
sensor/monitor pairs of §4.2 and connects them:

* committed suspicions feed back into the SuspicionSensor so it can
  reciprocate (condition (c));
* the SuspicionMonitor chains into the ConfigMonitor so a candidate-set
  update re-checks the current configuration's validity;
* the ConfigSensor reads ``(K, u)`` from the SuspicionMonitor and the
  latency matrix from the LatencyMonitor (local-monitor input, the dashed
  arrow of Fig. 2).

The configuration stage is protocol-specific, so it is attached later via
:meth:`attach_config` (OptiAware and OptiTree each bring their own score,
search and validator).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.config import ConfigMonitor, ConfigSensor, ReconfigurationDecision
from repro.core.latency import LatencyMonitor, LatencySensor
from repro.core.log import AppendOnlyLog
from repro.core.misbehavior import MisbehaviorMonitor, MisbehaviorSensor
from repro.core.records import SuspicionRecord
from repro.core.sensor import SensorApp
from repro.core.suspicion import SuspicionMonitor, SuspicionSensor
from repro.crypto.signatures import KeyRegistry


@dataclass
class PipelineSettings:
    """Knobs shared by all pipeline components.

    Attributes mirror the paper's parameters: ``delta`` is the timer
    multiplier δ, ``stability_window`` the aging window ``w`` (views),
    ``improvement_factor`` the score ratio required to replace a valid
    configuration.
    """

    n: int
    f: int
    delta: float = 1.0
    stability_window: int = 10
    improvement_factor: float = 0.9
    exact_mis_threshold: int = 25
    clock_skew: float = 0.0
    seed: int = 0


class OptiLogPipeline:
    """All OptiLog components of a single replica, wired together."""

    def __init__(
        self,
        replica_id: int,
        settings: PipelineSettings,
        registry: Optional[KeyRegistry] = None,
        propose: Optional[Callable[[Any], None]] = None,
        log: Optional[AppendOnlyLog] = None,
        suspicion_monitor_factory: Optional[Callable[..., SuspicionMonitor]] = None,
    ):
        self.replica_id = replica_id
        self.settings = settings
        self.registry = registry or KeyRegistry(settings.n)
        self.log = log if log is not None else AppendOnlyLog()
        self.app = SensorApp(replica_id, propose=propose)
        self.rng = random.Random((settings.seed, replica_id).__repr__())

        # Sensors (non-deterministic, local).
        self.latency_sensor = LatencySensor(replica_id, settings.n, self.app)
        self.misbehavior_sensor = MisbehaviorSensor(replica_id, self.app)
        self.suspicion_sensor = SuspicionSensor(
            replica_id,
            self.app,
            delta=settings.delta,
            clock_skew=settings.clock_skew,
        )

        # Monitors (deterministic, log-driven).
        self.latency_monitor = LatencyMonitor(replica_id, self.log, settings.n)
        self.misbehavior_monitor = MisbehaviorMonitor(
            replica_id, self.log, self.registry
        )
        factory = suspicion_monitor_factory or SuspicionMonitor
        self.suspicion_monitor = factory(
            replica_id,
            self.log,
            n=settings.n,
            f=settings.f,
            misbehavior=self.misbehavior_monitor,
            stability_window=settings.stability_window,
            exact_mis_threshold=settings.exact_mis_threshold,
        )

        # Condition (c): reciprocate committed suspicions against us.
        self.log.subscribe(SuspicionRecord, self._maybe_reciprocate)

        # The configuration stage is attached by the protocol integration.
        self.config_sensor: Optional[ConfigSensor] = None
        self.config_monitor: Optional[ConfigMonitor] = None

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------
    def _maybe_reciprocate(self, entry) -> None:
        self.suspicion_sensor.on_suspicion_logged(
            entry.record, view=self.log.current_view
        )

    def attach_config(
        self,
        search,
        score,
        validator,
        on_reconfigure: Optional[Callable[[ReconfigurationDecision], None]] = None,
    ) -> None:
        """Attach the protocol-specific configuration stage (§4.2.4)."""
        self.config_sensor = ConfigSensor(
            self.replica_id,
            self.app,
            search=search,
            score=score,
            candidate_provider=self.suspicion_monitor.estimate,
            rng=self.rng,
        )
        self.config_monitor = ConfigMonitor(
            self.replica_id,
            self.log,
            score=score,
            validator=validator,
            candidate_provider=self.suspicion_monitor.estimate,
            f=self.settings.f,
            on_reconfigure=on_reconfigure,
            improvement_factor=self.settings.improvement_factor,
        )
        # Candidate-set updates re-check the current configuration.
        self.suspicion_monitor.add_listener(self.config_monitor.recheck)

    # ------------------------------------------------------------------
    # Convenience passthroughs
    # ------------------------------------------------------------------
    def advance_view(self, view: int) -> None:
        """Propagate a view change to the log and the SuspicionMonitor."""
        self.log.advance_view(view)
        self.suspicion_monitor.advance_view(view)

    @property
    def candidates(self):
        return self.suspicion_monitor.candidates

    @property
    def u(self) -> int:
        return self.suspicion_monitor.u

    @property
    def latency_matrix(self):
        return self.latency_monitor.matrix
