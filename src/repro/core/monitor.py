"""Monitor abstraction (§4.1, Table 1).

Monitors are the deterministic counterparts to sensors: they consume the
committed log (and metrics of other local monitors) and compute metrics
that are, by construction, identical on every correct replica.  The base
class wires a monitor to its record type(s) on the local log view.
"""

from __future__ import annotations

from typing import Callable, List, Type

from repro.core.log import AppendOnlyLog, LogEntry


class Monitor:
    """Base class for monitors (deterministic, log-driven).

    Subclasses implement :meth:`on_entry` and declare the record types
    they consume via ``record_types``.  Monitors may also expose derived
    metrics to other local monitors (e.g. the LatencyMonitor's matrix is
    read by the ConfigSensor), which stays deterministic because those
    metrics are themselves functions of the log prefix.
    """

    name: str = "monitor"
    record_types: tuple = ()

    def __init__(self, replica_id: int, log: AppendOnlyLog):
        self.replica_id = replica_id
        self.log = log
        self.entries_processed = 0
        self._listeners: List[Callable[[], None]] = []
        for record_type in self.record_types:
            log.subscribe(record_type, self._dispatch)

    def _dispatch(self, entry: LogEntry) -> None:
        self.entries_processed += 1
        self.on_entry(entry)
        # Most monitors have no chained listeners; skip the loop (and its
        # iterator setup) on the per-commit path in that case.
        listeners = self._listeners
        if listeners:
            for listener in listeners:
                listener()

    def on_entry(self, entry: LogEntry) -> None:
        """Process one committed record (deterministic)."""
        raise NotImplementedError

    def add_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback invoked after each processed entry.

        Used to chain monitors (Fig. 3), e.g. the ConfigMonitor re-checks
        configuration validity whenever the SuspicionMonitor updates K.
        """
        self._listeners.append(listener)
