"""Sensor abstraction and the sensor app (§4, §4.1).

Sensors capture *local*, possibly non-deterministic measurements and hand
them to the **sensor app**, which disseminates them through the consensus
engine so they commit to the shared log.  In this reproduction the sensor
app's transport is pluggable: a ``propose`` callable that either routes a
record through a consensus engine or, in standalone mode, appends directly
to a local log.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class SensorApp:
    """Collects sensor records and proposes them to the log (Fig. 1).

    Parameters
    ----------
    replica_id:
        The local replica; stamped on outgoing records for accountability.
    propose:
        Transport used to replicate a record.  Defaults to a buffer that a
        consensus engine (or a test) drains with :meth:`drain`.
    """

    def __init__(
        self,
        replica_id: int,
        propose: Optional[Callable[[Any], None]] = None,
    ):
        self.replica_id = replica_id
        self._propose = propose
        self._outbox: List[Any] = []
        self.records_submitted = 0

    def submit(self, record: Any) -> None:
        """Queue ``record`` for replication through the consensus engine."""
        self.records_submitted += 1
        if self._propose is not None:
            self._propose(record)
        else:
            self._outbox.append(record)

    def drain(self) -> List[Any]:
        """Take all buffered records (buffered transport mode only)."""
        drained, self._outbox = self._outbox, []
        return drained

    @property
    def pending(self) -> int:
        return len(self._outbox)


class Sensor:
    """Base class for sensors (Table 1: non-deterministic, local input).

    Subclasses capture measurements from the system or from local monitors
    and call :meth:`record` to submit them.  Sensors never read the log
    directly; consistency is the monitors' job.
    """

    name: str = "sensor"

    def __init__(self, replica_id: int, app: SensorApp):
        self.replica_id = replica_id
        self.app = app

    def record(self, record: Any) -> None:
        """Submit a measurement for replication."""
        self.app.submit(record)
