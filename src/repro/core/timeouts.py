"""Timeout derivation for clique protocols (TR1-TR3, Appendix C).

The SuspicionSensor needs, for every expected message ``m``, the delay
``d_m`` from the round's proposal timestamp to ``m``'s arrival, and the
expected round duration ``d_rnd``.  Appendix C gives three requirements:

* TR1: a message sent by the leader right after proposing has
  ``d_m = L(L, A)``;
* TR2: a message from A to B sent on receipt of an earlier message ``m'``
  has ``d_m = d_{m'} + L(A, B)``;
* TR3: ``d_rnd`` equals ``d_m`` of some message to the leader.

This module implements the PBFT/Aware instantiation (Example C.1):
Propose → Write (all-to-all) → Accept (all-to-all), with weighted quorums.
``pbft_round_duration`` *is* Aware's score function -- "the d_rnd developed
above is the same as the result of the score function defined by Aware."

Tree timeouts (Lemma 6) live in :mod:`repro.tree.score`.

Phases (used by suspicion filtering): 0 proposal timestamp, 1 propose,
2 write, 3 accept.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.suspicion import ExpectedMessage

PHASE_PROPOSAL = 0
PHASE_PROPOSE = 1
PHASE_WRITE = 2
PHASE_ACCEPT = 3


def quorum_formation_time(
    arrivals: Mapping[int, float],
    weights: Mapping[int, float],
    threshold: float,
) -> float:
    """Earliest time at which arrived messages reach ``threshold`` weight.

    This is the "min over quorums of max arrival" of Example C.1: sorting
    arrivals ascending and accumulating weight gives the fastest quorum.
    Returns ``inf`` when even all messages are too light.
    """
    total = 0.0
    for sender in sorted(arrivals, key=lambda s: (arrivals[s], s)):
        time = arrivals[sender]
        if math.isinf(time):
            break
        total += weights.get(sender, 0.0)
        if total >= threshold:
            return time
    return math.inf


def quorum_formation_times(
    arrivals: np.ndarray, weights: np.ndarray, threshold: float
) -> np.ndarray:
    """Vectorized :func:`quorum_formation_time`, one result per column.

    ``arrivals`` is a (senders × receivers) matrix; ``weights`` a vector
    over senders.  Per column: stable-sort by arrival (ties fall back to
    sender id, exactly the scalar key), accumulate weights in that order
    -- ``cumsum`` adds sequentially, so every partial sum is bit-identical
    to the scalar loop -- and take the first finite arrival at which the
    accumulated weight reaches ``threshold``.
    """
    order = np.argsort(arrivals, axis=0, kind="stable")
    times = np.take_along_axis(arrivals, order, axis=0)
    cumulative = np.cumsum(weights[order], axis=0)
    reached = (cumulative >= threshold) & np.isfinite(times)
    formed = reached.any(axis=0)
    first = reached.argmax(axis=0)
    columns = np.arange(arrivals.shape[1])
    return np.where(formed, times[first, columns], np.inf)


def weighted_round_duration(
    latency: np.ndarray,
    leader: int,
    weight_vector: np.ndarray,
    quorum_weight: float,
) -> float:
    """``d_rnd`` for a (leader, weight vector) pair, fully vectorized.

    The optimizer's innermost call: Aware/OptiAware score thousands of
    candidate configurations per search, so this avoids building a
    :class:`PbftTimeouts` (and its per-replica dicts) per evaluation.
    Bit-identical to ``PbftTimeouts(...).round_duration()`` -- both run
    the same operations through :func:`quorum_formation_times`.
    """
    propose = latency[leader]
    write = propose[:, None] + latency
    accept_send = quorum_formation_times(write, weight_vector, quorum_weight)
    arrivals = accept_send + latency[:, leader]
    return float(
        quorum_formation_times(arrivals[:, None], weight_vector, quorum_weight)[0]
    )


def uniform_weights(n: int) -> Dict[int, float]:
    """Unweighted voting: every replica has weight 1 (quorum = 2f+1)."""
    return {replica: 1.0 for replica in range(n)}


class PbftTimeouts:
    """Expected message delays for one PBFT/Aware configuration.

    Parameters
    ----------
    latency:
        Symmetric link-latency matrix (seconds, one-way per hop).
    leader:
        The round's leader.
    weights:
        Voting weights per replica (Wheat/Aware); uniform for plain PBFT.
    quorum_weight:
        Weight a quorum must reach (``2(f+Δ)+1`` for Aware, ``2f+1``
        unweighted).
    """

    def __init__(
        self,
        latency: np.ndarray,
        leader: int,
        weights: Mapping[int, float],
        quorum_weight: float,
    ):
        self.latency = latency
        self.leader = leader
        self.n = latency.shape[0]
        self.weights = dict(weights)
        self.quorum_weight = quorum_weight
        self._accept_send: Optional[np.ndarray] = None
        self._weight_vector: Optional[np.ndarray] = None

    def _weights_array(self) -> np.ndarray:
        if self._weight_vector is None:
            weights = self.weights
            self._weight_vector = np.fromiter(
                (weights.get(replica, 0.0) for replica in range(self.n)),
                dtype=float,
                count=self.n,
            )
        return self._weight_vector

    # -- building blocks ------------------------------------------------
    def propose_arrival(self, receiver: int) -> float:
        """TR1: the leader's Propose reaches ``receiver`` at L(L, A)."""
        return float(self.latency[self.leader, receiver])

    def write_arrival(self, sender: int, receiver: int) -> float:
        """TR2: Write(sender→receiver) = propose-to-sender + link.

        The leader's Propose doubles as its own Write (BFT-SMaRt
        convention), so for ``sender == leader`` this is just the link.
        """
        return self.propose_arrival(sender) + float(self.latency[sender, receiver])

    def accept_send_time(self, sender: int) -> float:
        """When ``sender`` has a Write quorum and can send its Accept.

        All senders are computed in one vectorized pass: the Write matrix
        ``W[s, r] = propose(s) + L(s, r)`` column-scanned by
        :func:`quorum_formation_times`.
        """
        if self._accept_send is None:
            latency = self.latency
            write = latency[self.leader][:, None] + latency
            self._accept_send = quorum_formation_times(
                write, self._weights_array(), self.quorum_weight
            )
        return float(self._accept_send[sender])

    def accept_arrival(self, sender: int, receiver: int) -> float:
        return self.accept_send_time(sender) + float(self.latency[sender, receiver])

    # -- TR3 --------------------------------------------------------------
    def round_duration(self) -> float:
        """``d_rnd``: the leader's Accept quorum time (Aware's score)."""
        self.accept_send_time(self.leader)  # materialise the Accept sends
        arrivals = self._accept_send + self.latency[:, self.leader]
        return float(
            quorum_formation_times(
                arrivals[:, None], self._weights_array(), self.quorum_weight
            )[0]
        )

    def round_duration_scalar(self) -> float:
        """Reference ``d_rnd``: the pre-vectorization per-dict scan.

        Kept as the checked reference for the equivalence tests; the
        vectorized path must match it to the bit.
        """
        accept_send = {}
        for replica in range(self.n):
            write_arrivals = {
                writer: self.write_arrival(writer, replica)
                for writer in range(self.n)
            }
            accept_send[replica] = quorum_formation_time(
                write_arrivals, self.weights, self.quorum_weight
            )
        arrivals = {
            sender: accept_send[sender] + float(self.latency[sender, self.leader])
            for sender in range(self.n)
        }
        return quorum_formation_time(arrivals, self.weights, self.quorum_weight)

    # -- SuspicionSensor feed ----------------------------------------------
    def expected_messages(self, receiver: int) -> list[ExpectedMessage]:
        """All messages ``receiver`` expects in a round, with their d_m."""
        expected = []
        if receiver != self.leader:
            expected.append(
                ExpectedMessage(
                    sender=self.leader,
                    msg_type="propose",
                    phase=PHASE_PROPOSE,
                    d_m=self.propose_arrival(receiver),
                )
            )
        for sender in range(self.n):
            if sender == receiver:
                continue
            if sender != self.leader:
                expected.append(
                    ExpectedMessage(
                        sender=sender,
                        msg_type="write",
                        phase=PHASE_WRITE,
                        d_m=self.write_arrival(sender, receiver),
                    )
                )
            expected.append(
                ExpectedMessage(
                    sender=sender,
                    msg_type="accept",
                    phase=PHASE_ACCEPT,
                    d_m=self.accept_arrival(sender, receiver),
                )
            )
        return expected


def pbft_round_duration(
    latency: np.ndarray,
    leader: int,
    weights: Optional[Mapping[int, float]] = None,
    quorum_weight: Optional[float] = None,
) -> float:
    """Predicted round duration for a (leader, weights) configuration.

    With uniform weights this is PBFT's expected commit latency; with
    Wheat weights it is Aware's score function.
    """
    n = latency.shape[0]
    if weights is None:
        weights = uniform_weights(n)
    if quorum_weight is None:
        f = (n - 1) // 3
        quorum_weight = 2 * f + 1
    return PbftTimeouts(latency, leader, weights, quorum_weight).round_duration()
