"""The append-only measurement log (§4, Fig. 1).

The log is OptiLog's central data structure: replicas append authenticated
measurements through the consensus engine, and every replica's monitors
observe the *same committed prefix in the same order*, which is what makes
their derived metrics consistent system-wide.

Two usage modes:

* **Replicated** -- each replica holds its own :class:`AppendOnlyLog`
  instance that the consensus engine feeds in commit order (the consensus
  engines in :mod:`repro.consensus` do this through the sensor app).
* **Standalone** -- analytical experiments (Figs. 8, 10, 12, 14) drive a
  single log directly, bypassing consensus; determinism of the monitors
  guarantees the outcome equals the replicated run with the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import merge as _heap_merge
from operator import attrgetter
from typing import Any, Callable, Dict, Iterator, List, Optional, Type

_by_seq = attrgetter("seq")


@dataclass(frozen=True)
class LogEntry:
    """A committed record with its position in the total order."""

    seq: int
    record: Any
    view: int = 0

    @property
    def wire_size(self) -> int:
        # Records are frozen, so the (property-computed, per-record) wire
        # size is a constant -- cache it on first read; the overhead
        # study (Fig. 13) and the append accounting both re-read it.
        cached = self.__dict__.get("_wire_size")
        if cached is None:
            cached = getattr(self.record, "wire_size", 0)
            object.__setattr__(self, "_wire_size", cached)
        return cached


class AppendOnlyLog:
    """Totally-ordered, append-only record log with typed subscriptions.

    Subscribers registered for a record type are notified synchronously,
    in registration order, whenever a record of that type (or a subclass)
    commits.  Monitors rely on this ordering being identical on every
    replica; it is, because it is a pure function of the append order.
    """

    def __init__(self):
        self._entries: List[LogEntry] = []
        self._subscribers: List[tuple] = []  # (record_type, callback)
        #: Exact record type -> its entries, in commit order.  Keeps
        #: :meth:`entries_of_type` from rescanning the whole log.
        self._by_type: Dict[type, List[LogEntry]] = {}
        #: Exact record type -> the subscriber callbacks that match it
        #: (in registration order), precomputed so :meth:`append` does not
        #: re-run isinstance over every subscriber per commit.  Cleared on
        #: :meth:`subscribe` (new matches possible for known types).
        self._dispatch_cache: Dict[type, tuple] = {}
        self._total_wire_size = 0
        self.current_view = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: Any, view: Optional[int] = None) -> LogEntry:
        """Commit ``record`` at the next sequence number and notify."""
        entry = LogEntry(
            seq=len(self._entries),
            record=record,
            view=self.current_view if view is None else view,
        )
        self._entries.append(entry)
        cls = record.__class__
        bucket = self._by_type.get(cls)
        if bucket is None:
            bucket = self._by_type[cls] = []
        bucket.append(entry)
        # Read the record directly: entry.wire_size would seed its lazy
        # cache, pure overhead on the append path.
        self._total_wire_size += getattr(record, "wire_size", 0)
        callbacks = self._dispatch_cache.get(cls)
        if callbacks is None:
            # Snapshot, like the old per-append list(...) copy: a callback
            # that subscribes mid-dispatch affects later appends only.
            callbacks = tuple(
                callback
                for record_type, callback in self._subscribers
                if issubclass(cls, record_type)
            )
            self._dispatch_cache[cls] = callbacks
        for callback in callbacks:
            callback(entry)
        return entry

    def append_many(self, records: List[Any], view: Optional[int] = None) -> List[LogEntry]:
        """Commit a burst of records back-to-back (record gossip flushes,
        catch-up replays).

        Exactly equivalent to one :meth:`append` per record -- same
        sequence numbers, view stamps and per-entry dispatch order (a
        callback that advances the view or subscribes mid-burst affects
        later records, just as with sequential appends) -- with the
        per-call attribute lookups hoisted out of the loop.
        """
        entries = self._entries
        by_type = self._by_type
        dispatch_cache = self._dispatch_cache
        committed: List[LogEntry] = []
        for record in records:
            entry = LogEntry(
                seq=len(entries),
                record=record,
                view=self.current_view if view is None else view,
            )
            entries.append(entry)
            cls = record.__class__
            bucket = by_type.get(cls)
            if bucket is None:
                bucket = by_type[cls] = []
            bucket.append(entry)
            self._total_wire_size += getattr(record, "wire_size", 0)
            callbacks = dispatch_cache.get(cls)
            if callbacks is None:
                callbacks = tuple(
                    callback
                    for record_type, callback in self._subscribers
                    if issubclass(cls, record_type)
                )
                dispatch_cache[cls] = callbacks
            for callback in callbacks:
                callback(entry)
            committed.append(entry)
        return committed

    def advance_view(self, view: int) -> None:
        """Record a view change; later appends carry the new view number."""
        if view < self.current_view:
            raise ValueError(
                f"view must not go backwards ({view} < {self.current_view})"
            )
        self.current_view = view

    # ------------------------------------------------------------------
    # Subscription and access
    # ------------------------------------------------------------------
    def subscribe(
        self, record_type: Type, callback: Callable[[LogEntry], None]
    ) -> None:
        """Call ``callback(entry)`` for every committed record of the type."""
        self._subscribers.append((record_type, callback))
        self._dispatch_cache.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, seq: int) -> LogEntry:
        return self._entries[seq]

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def entries_of_type(self, record_type: Type) -> List[LogEntry]:
        """All committed entries whose record is a ``record_type``.

        Served from the per-type index: subclass buckets (each already in
        commit order) are k-way merged by sequence number, so the result
        equals (in content and order) a full isinstance scan of the log
        in O(total · log k) without the rescan-and-sort.
        """
        buckets = [
            bucket
            for cls, bucket in self._by_type.items()
            if issubclass(cls, record_type)
        ]
        if not buckets:
            return []
        if len(buckets) == 1:
            return list(buckets[0])
        return list(_heap_merge(*buckets, key=_by_seq))

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest entry, or -1 when empty."""
        return len(self._entries) - 1

    def total_wire_size(self) -> int:
        """Sum of record wire sizes; maintained incrementally on append."""
        return self._total_wire_size

    def type_histogram(self) -> Dict[str, int]:
        """Per-type entry counts, keyed by type name in first-commit order."""
        histogram: Dict[str, int] = {}
        for cls, bucket in self._by_type.items():
            kind = cls.__name__
            histogram[kind] = histogram.get(kind, 0) + len(bucket)
        return histogram
