"""The append-only measurement log (§4, Fig. 1).

The log is OptiLog's central data structure: replicas append authenticated
measurements through the consensus engine, and every replica's monitors
observe the *same committed prefix in the same order*, which is what makes
their derived metrics consistent system-wide.

Two usage modes:

* **Replicated** -- each replica holds its own :class:`AppendOnlyLog`
  instance that the consensus engine feeds in commit order (the consensus
  engines in :mod:`repro.consensus` do this through the sensor app).
* **Standalone** -- analytical experiments (Figs. 8, 10, 12, 14) drive a
  single log directly, bypassing consensus; determinism of the monitors
  guarantees the outcome equals the replicated run with the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Type


@dataclass(frozen=True)
class LogEntry:
    """A committed record with its position in the total order."""

    seq: int
    record: Any
    view: int = 0

    @property
    def wire_size(self) -> int:
        return getattr(self.record, "wire_size", 0)


class AppendOnlyLog:
    """Totally-ordered, append-only record log with typed subscriptions.

    Subscribers registered for a record type are notified synchronously,
    in registration order, whenever a record of that type (or a subclass)
    commits.  Monitors rely on this ordering being identical on every
    replica; it is, because it is a pure function of the append order.
    """

    def __init__(self):
        self._entries: List[LogEntry] = []
        self._subscribers: List[tuple] = []  # (record_type, callback)
        self.current_view = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: Any, view: Optional[int] = None) -> LogEntry:
        """Commit ``record`` at the next sequence number and notify."""
        entry = LogEntry(
            seq=len(self._entries),
            record=record,
            view=self.current_view if view is None else view,
        )
        self._entries.append(entry)
        for record_type, callback in list(self._subscribers):
            if isinstance(record, record_type):
                callback(entry)
        return entry

    def advance_view(self, view: int) -> None:
        """Record a view change; later appends carry the new view number."""
        if view < self.current_view:
            raise ValueError(
                f"view must not go backwards ({view} < {self.current_view})"
            )
        self.current_view = view

    # ------------------------------------------------------------------
    # Subscription and access
    # ------------------------------------------------------------------
    def subscribe(
        self, record_type: Type, callback: Callable[[LogEntry], None]
    ) -> None:
        """Call ``callback(entry)`` for every committed record of the type."""
        self._subscribers.append((record_type, callback))

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, seq: int) -> LogEntry:
        return self._entries[seq]

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def entries_of_type(self, record_type: Type) -> List[LogEntry]:
        return [e for e in self._entries if isinstance(e.record, record_type)]

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest entry, or -1 when empty."""
        return len(self._entries) - 1

    def total_wire_size(self) -> int:
        """Sum of record wire sizes; used by the overhead study."""
        return sum(entry.wire_size for entry in self._entries)

    def type_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for entry in self._entries:
            kind = type(entry.record).__name__
            histogram[kind] = histogram.get(kind, 0) + 1
        return histogram
