"""Misbehavior sensor and monitor (§4.2.2).

Precise fault detection uses the proof-of-misbehavior technique: the
MisbehaviorSensor, integrated in the consensus engine, raises a signed
*complaint* when it observes a provable protocol violation (equivocation,
invalid signatures or aggregates, invalid complaints).  Every replica's
MisbehaviorMonitor verifies committed complaints; valid complaints add the
accused to the provably-faulty set ``F``, while an invalid complaint is
itself provable misbehavior by the *reporter*.

What constitutes misbehavior is protocol-specific (§4.2.2), so proofs are
polymorphic: each proof object knows how to verify itself against the key
registry.  OptiTree's extra aggregation-completeness rule (§6.3) is the
:class:`IncompleteAggregateProof`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Set

from repro.core.log import AppendOnlyLog, LogEntry
from repro.core.monitor import Monitor
from repro.core.records import ComplaintRecord
from repro.core.sensor import Sensor, SensorApp
from repro.crypto.signatures import SIGNATURE_SIZE, KeyRegistry, Signature
from repro.crypto.threshold import AggregateSignature


# ----------------------------------------------------------------------
# Proof objects
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EquivocationProof:
    """Two conflicting signed payloads from the same replica for one slot.

    Valid iff both signatures verify, both were produced by ``accused``
    for the same (view, round) slot, and the payloads differ.
    """

    accused: int
    view: int
    round_id: int
    payload_a: Any
    sig_a: Signature
    payload_b: Any
    sig_b: Signature

    @property
    def wire_size(self) -> int:
        return 2 * SIGNATURE_SIZE + 2 * 32 + 16  # sigs + payload digests + slot

    def verify(self, registry: KeyRegistry) -> bool:
        if self.sig_a.signer != self.accused or self.sig_b.signer != self.accused:
            return False
        if self.payload_a == self.payload_b:
            return False
        return registry.verify(self.sig_a, self.payload_a) and registry.verify(
            self.sig_b, self.payload_b
        )


@dataclass(frozen=True)
class InvalidSignatureProof:
    """A message whose signature does not verify.

    Note: in a real deployment an unverifiable signature cannot be pinned
    on the claimed signer (anyone can fabricate it); it *can* be pinned on
    the forwarding replica on authenticated channels.  ``accused`` is
    therefore the replica that *relayed* the bad artefact.
    """

    accused: int
    payload: Any
    signature: Signature

    @property
    def wire_size(self) -> int:
        return SIGNATURE_SIZE + 32 + 8

    def verify(self, registry: KeyRegistry) -> bool:
        # The proof is valid iff the contained signature is indeed invalid.
        return not registry.verify(self.signature, self.payload)


@dataclass(frozen=True)
class IncompleteAggregateProof:
    """OptiTree's aggregation rule (§6.3).

    An intermediate node's aggregate must contain, for each of its
    children, either the child's vote or a suspicion against it -- in
    total ``b + 1`` votes-or-suspicions including the node's own vote.  An
    aggregate violating this is proof-of-misbehavior against the node.
    """

    accused: int
    aggregate: AggregateSignature
    expected_children: FrozenSet[int]

    @property
    def wire_size(self) -> int:
        return self.aggregate.wire_size + 8 * len(self.expected_children) + 8

    def verify(self, registry: KeyRegistry) -> bool:
        if not self.aggregate.verify(registry):
            # A badly-signed aggregate from the accused is also misbehavior,
            # but it is the InvalidSignatureProof's job; reject here.
            return False
        if self.accused not in self.aggregate.signers:
            return False
        covered = self.aggregate.signers | self.aggregate.suspected
        missing = self.expected_children - covered
        return bool(missing)  # valid proof iff some child is uncovered


PROOF_TYPES = (EquivocationProof, InvalidSignatureProof, IncompleteAggregateProof)


# ----------------------------------------------------------------------
# Sensor
# ----------------------------------------------------------------------
class MisbehaviorSensor(Sensor):
    """Raises complaints when the consensus engine detects violations.

    The detection logic lives in the protocol (it is the only component
    that can judge protocol-specific behaviour, §4.2.2); engines call
    :meth:`complain` with a constructed proof.
    """

    name = "misbehavior-sensor"

    def __init__(self, replica_id: int, app: SensorApp):
        super().__init__(replica_id, app)
        self._complained_about: Set[int] = set()

    def complain(self, accused: int, kind: str, proof: Any, view: int = 0) -> Optional[ComplaintRecord]:
        """Submit a complaint; at most one complaint per accused replica.

        The per-accused cap matches §7.8 ("complaints are raised at most
        once per replica") and bounds log growth.
        """
        if accused in self._complained_about:
            return None
        self._complained_about.add(accused)
        record = ComplaintRecord(
            reporter=self.replica_id,
            accused=accused,
            kind=kind,
            proof=proof,
            view=view,
        )
        self.record(record)
        return record


# ----------------------------------------------------------------------
# Monitor
# ----------------------------------------------------------------------
class MisbehaviorMonitor(Monitor):
    """Verifies complaints and maintains the provably-faulty set ``F``."""

    name = "misbehavior-monitor"
    record_types = (ComplaintRecord,)

    def __init__(self, replica_id: int, log: AppendOnlyLog, registry: KeyRegistry):
        self.registry = registry
        self.faulty: Set[int] = set()
        self.valid_complaints = 0
        self.invalid_complaints = 0
        super().__init__(replica_id, log)

    def on_entry(self, entry: LogEntry) -> None:
        record: ComplaintRecord = entry.record
        proof = record.proof
        verify = getattr(proof, "verify", None)
        accused_matches = getattr(proof, "accused", record.accused) == record.accused
        if verify is not None and accused_matches and verify(self.registry):
            self.valid_complaints += 1
            self.faulty.add(record.accused)
        else:
            # An invalid complaint is provable misbehavior by the reporter.
            self.invalid_complaints += 1
            self.faulty.add(record.reporter)

    @property
    def F(self) -> FrozenSet[int]:  # noqa: N802 - paper notation
        """The provably-faulty set F (§4.2.2)."""
        return frozenset(self.faulty)

    def is_faulty(self, replica: int) -> bool:
        return replica in self.faulty
