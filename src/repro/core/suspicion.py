"""Suspicion sensor and monitor (§4.2.3, Appendix C).

The SuspicionSensor detects timing and omission faults relative to the
latencies replicas *reported* (the latency matrix ``L``):

========  ============================================================
(a)       consecutive proposal timestamps more than ``δ·d_rnd`` apart
          → ⟨Slow, A d L⟩ against the leader
(b)       message ``m`` from B missing ``δ·d_m`` after round start
          → ⟨Slow, A d B⟩
(c)       a suspicion ⟨_, B d A⟩ against the local replica
          → reciprocate ⟨False, A d B⟩
========  ============================================================

The SuspicionMonitor consumes committed suspicions, filters causally
related ones, distinguishes crash suspicions (never reciprocated within
``f+1`` views → crashed set ``C``) from mutual suspicions (edges of the
suspicion graph ``G``), and produces:

* the candidate set ``K`` -- a maximum independent set of ``G`` plus every
  unsuspected replica, always of size ≥ ``n − f`` (Lemma 1);
* the estimate ``u = |V| − |K|`` of misbehaving replicas.

Aging: after ``w`` stable views old suspicions are evicted oldest-first;
eviction also triggers when ``G`` no longer contains an independent set of
size ``n − f``.

OptiTree's alternative candidate rule (``E_d``/``T``, §6.4) subclasses
this monitor in :mod:`repro.tree.candidates`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.log import AppendOnlyLog, LogEntry
from repro.core.misbehavior import MisbehaviorMonitor
from repro.core.monitor import Monitor
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.core.sensor import Sensor, SensorApp
from repro.optimize.graphs import Graph
from repro.optimize.maxindset import greedy_independent_set, maximum_independent_set


# ----------------------------------------------------------------------
# Sensor
# ----------------------------------------------------------------------
@dataclass
class ExpectedMessage:
    """One message the protocol expects during a round.

    ``d_m`` is the expected delay from the round's proposal timestamp to
    the message's arrival (TR1/TR2); ``phase`` orders messages causally
    within the round (0 = proposal) and feeds the monitor's filtering.
    """

    sender: int
    msg_type: str
    phase: int
    d_m: float


@dataclass
class _RoundState:
    round_id: int
    leader: int
    proposal_timestamp: float
    expected: Dict[Tuple[int, str], ExpectedMessage] = field(default_factory=dict)
    received: Set[Tuple[int, str]] = field(default_factory=set)
    checked: bool = False
    #: Lowest phase already suspected this round; one late message delays
    #: every later phase, so later-phase suspicions are causally implied
    #: and not raised (the monitor filters them anyway, §4.2.3).
    suspected_phase: float = math.inf


class SuspicionSensor(Sensor):
    """Raises suspicions per conditions (a)-(c) of §4.2.3.

    The protocol adapter drives the sensor:

    * :meth:`begin_round` when a proposal (with the leader's timestamp)
      arrives, together with the round's expected messages and ``d_rnd``;
    * :meth:`on_message` when an expected message arrives;
    * :meth:`check_round` once the local clock passes the round's horizon
      (simulation engines schedule this; analytical tests call it with an
      explicit ``now``);
    * :meth:`on_suspicion_logged` for every committed suspicion, to
      reciprocate per condition (c).

    The sensor requires synchronised clocks (§4.2.3); in the simulator all
    replicas share virtual time, and clock skew can be injected through
    the ``clock_skew`` parameter for robustness experiments.
    """

    name = "suspicion-sensor"

    def __init__(
        self,
        replica_id: int,
        app: SensorApp,
        delta: float = 1.0,
        clock_skew: float = 0.0,
    ):
        super().__init__(replica_id, app)
        self.delta = delta
        self.clock_skew = clock_skew
        self._rounds: Dict[int, _RoundState] = {}
        self._last_proposal: Optional[Tuple[int, float, int]] = None  # (round, ts, leader)
        self._last_d_rnd: float = math.inf
        self._reciprocated: Set[Tuple[int, int]] = set()
        #: (suspect, round) pairs already reported slow: one ⟨Slow⟩ per
        #: suspect per round keeps reports rare (§7.8) while still giving
        #: the monitor one fresh edge per round of continued misbehavior.
        self._slow_reported: Set[Tuple[int, int]] = set()
        self.suspicions_raised = 0

    # -- protocol driving ------------------------------------------------
    def begin_round(
        self,
        round_id: int,
        leader: int,
        proposal_timestamp: float,
        d_rnd: float,
        expected: List[ExpectedMessage],
        view: int = 0,
    ) -> None:
        """Start tracking a round; checks condition (a) against the last one."""
        timestamp = proposal_timestamp + self.clock_skew
        if self._last_proposal is not None:
            last_round, last_ts, last_leader = self._last_proposal
            same_leader_next = leader == last_leader and round_id == last_round + 1
            gap = timestamp - last_ts
            if same_leader_next and gap > self.delta * self._last_d_rnd:
                self._raise_slow(
                    suspect=leader,
                    round_id=round_id,
                    msg_type="proposal-timestamp",
                    phase=0,
                    view=view,
                )
        self._last_proposal = (round_id, timestamp, leader)
        self._last_d_rnd = d_rnd
        self._rounds[round_id] = _RoundState(
            round_id=round_id,
            leader=leader,
            proposal_timestamp=timestamp,
            expected={(m.sender, m.msg_type): m for m in expected},
        )

    def on_message(self, round_id: int, sender: int, msg_type: str, now: float) -> None:
        """Record arrival of an expected message (condition (b) bookkeeping).

        A message arriving *after* its ``δ·d_m`` deadline is still a
        condition-(b) violation -- the suspicion is raised immediately
        rather than waiting for the round check.
        """
        state = self._rounds.get(round_id)
        if state is None:
            return
        expected = state.expected.get((sender, msg_type))
        if expected is not None and expected.phase <= state.suspected_phase:
            deadline = state.proposal_timestamp + self.delta * expected.d_m
            if now > deadline:
                if self._raise_slow(
                    suspect=sender,
                    round_id=round_id,
                    msg_type=msg_type,
                    phase=expected.phase,
                    view=0,
                ) is not None:
                    state.suspected_phase = min(state.suspected_phase, expected.phase)
        state.received.add((sender, msg_type))

    def round_horizon(self, round_id: int) -> Optional[float]:
        """Absolute time by which every expected message should have arrived."""
        state = self._rounds.get(round_id)
        if state is None or not state.expected:
            return None
        latest = max(m.d_m for m in state.expected.values())
        return state.proposal_timestamp + self.delta * latest

    def check_round(self, round_id: int, now: float, view: int = 0) -> List[SuspicionRecord]:
        """Raise ⟨Slow⟩ for every expected message still missing at ``now``.

        Idempotent per round; returns the suspicions raised (already
        submitted through the sensor app).
        """
        state = self._rounds.get(round_id)
        if state is None or state.checked:
            return []
        raised = []
        missing = sorted(
            (
                (expected.phase, sender, msg_type, expected)
                for (sender, msg_type), expected in state.expected.items()
                if (sender, msg_type) not in state.received
            ),
        )
        for phase, sender, msg_type, expected in missing:
            if phase > state.suspected_phase:
                break  # causally implied by the earlier-phase suspicion
            deadline = state.proposal_timestamp + self.delta * expected.d_m
            if now >= deadline:
                record = self._raise_slow(
                    suspect=sender,
                    round_id=round_id,
                    msg_type=msg_type,
                    phase=phase,
                    view=view,
                )
                if record is not None:
                    raised.append(record)
                    state.suspected_phase = min(state.suspected_phase, phase)
        state.checked = True
        return raised

    def forget_round(self, round_id: int) -> None:
        """Drop bookkeeping for an old round."""
        self._rounds.pop(round_id, None)

    # -- condition (c) ----------------------------------------------------
    def on_suspicion_logged(self, record: SuspicionRecord, view: int = 0) -> None:
        """Reciprocate a suspicion raised against the local replica."""
        if record.suspect != self.replica_id:
            return
        if record.reporter == self.replica_id:
            return
        key = (record.reporter, record.round_id)
        if key in self._reciprocated:
            return
        self._reciprocated.add(key)
        self._raise(
            suspect=record.reporter,
            kind=SuspicionKind.FALSE,
            round_id=record.round_id,
            msg_type="reciprocation",
            phase=record.phase,
            view=view,
        )

    def forgive(self, suspect: int) -> None:
        """Allow reporting ``suspect`` slow again (e.g. after a
        reconfiguration gave it a fresh start)."""
        self._slow_reported = {
            (reported, round_id)
            for reported, round_id in self._slow_reported
            if reported != suspect
        }

    # -- helpers ----------------------------------------------------------
    def _raise_slow(
        self,
        suspect: int,
        round_id: int,
        msg_type: str,
        phase: int,
        view: int,
    ) -> Optional[SuspicionRecord]:
        """Raise ⟨Slow⟩ at most once per (suspect, round)."""
        if (suspect, round_id) in self._slow_reported or suspect == self.replica_id:
            return None
        self._slow_reported.add((suspect, round_id))
        return self._raise(
            suspect=suspect,
            kind=SuspicionKind.SLOW,
            round_id=round_id,
            msg_type=msg_type,
            phase=phase,
            view=view,
        )

    def _raise(
        self,
        suspect: int,
        kind: SuspicionKind,
        round_id: int,
        msg_type: str,
        phase: int,
        view: int,
    ) -> SuspicionRecord:
        record = SuspicionRecord(
            reporter=self.replica_id,
            suspect=suspect,
            kind=kind,
            round_id=round_id,
            msg_type=msg_type,
            phase=phase,
            view=view,
        )
        self.suspicions_raised += 1
        self.record(record)
        return record


# ----------------------------------------------------------------------
# Monitor
# ----------------------------------------------------------------------
@dataclass
class _SuspicionItem:
    """An accepted (unfiltered) suspicion and its lifecycle state."""

    seq: int
    reporter: int
    suspect: int
    kind: SuspicionKind
    round_id: int
    phase: int
    view: int
    reciprocated: bool = False
    deadline_view: int = 0
    one_way: bool = False  # aged into a crash suspicion


class SuspicionMonitor(Monitor):
    """Builds C, G, K and u from committed suspicions (§4.2.3).

    Parameters
    ----------
    n, f:
        System size and fault threshold.
    misbehavior:
        The local MisbehaviorMonitor providing ``F``; vertices in ``F``
        are excluded from the graph (and the candidate set).
    stability_window:
        ``w``: views without new suspicions before aging starts.
    exact_mis_threshold:
        Largest graph solved with exact Bron-Kerbosch; beyond it the
        greedy heuristic is used (the paper likewise uses a heuristic
        variant, §7.2).
    """

    name = "suspicion-monitor"
    record_types = (SuspicionRecord,)

    def __init__(
        self,
        replica_id: int,
        log: AppendOnlyLog,
        n: int,
        f: int,
        misbehavior: Optional[MisbehaviorMonitor] = None,
        stability_window: int = 10,
        exact_mis_threshold: int = 25,
    ):
        self.n = n
        self.f = f
        self.misbehavior = misbehavior
        self.stability_window = stability_window
        self.exact_mis_threshold = exact_mis_threshold
        self._items: List[_SuspicionItem] = []
        self.current_view = 0
        self._last_suspicion_view = 0
        self.filtered_count = 0
        # Rounds in which the *leader* raised a suspicion (suppresses
        # proposal-timestamp suspicions for round+1, §4.2.3).
        self._leader_suspected_round: Set[int] = set()
        self._round_leaders: Dict[int, int] = {}
        # Derived state, rebuilt after every change.
        self.crashed: Set[int] = set()
        self.graph = Graph(vertices=range(n))
        self.candidates: FrozenSet[int] = frozenset(range(n))
        self.u = 0
        super().__init__(replica_id, log)
        # A new proof-of-misbehavior changes F and therefore V = Π\F\C.
        if misbehavior is not None:
            misbehavior.add_listener(self._rebuild)

    # ------------------------------------------------------------------
    # Log consumption
    # ------------------------------------------------------------------
    def note_round_leader(self, round_id: int, leader: int) -> None:
        """Tell the monitor who led a round (for leader-suspicion filtering)."""
        self._round_leaders[round_id] = leader

    def on_entry(self, entry: LogEntry) -> None:
        record: SuspicionRecord = entry.record
        if record.reporter == record.suspect:
            return
        if not (0 <= record.reporter < self.n and 0 <= record.suspect < self.n):
            return
        if record.kind == SuspicionKind.FALSE:
            self._apply_reciprocation(record)
            # A reciprocation also proves two-way-ness; it does not create
            # a new edge by itself if none exists (nothing to reciprocate).
            self._rebuild()
            return
        if self._is_filtered(record):
            self.filtered_count += 1
            return
        self._last_suspicion_view = max(self._last_suspicion_view, record.view, self.current_view)
        self._items.append(
            _SuspicionItem(
                seq=entry.seq,
                reporter=record.reporter,
                suspect=record.suspect,
                kind=record.kind,
                round_id=record.round_id,
                phase=record.phase,
                view=record.view,
                deadline_view=max(record.view, self.current_view) + self.f + 1,
            )
        )
        self._note_phase(record)
        self._rebuild()

    def _is_filtered(self, record: SuspicionRecord) -> bool:
        """Arrival-time filtering per §4.2.3 plus structural checks.

        * Proposal-phase suspicions (``propose``/``proposal-timestamp``)
          can only legitimately target the round's leader -- a Byzantine
          reporter cannot smuggle early-phase edges against arbitrary
          replicas.
        * If the leader raised a suspicion in round ``i``, suspicions
          against a delayed proposal timestamp in round ``i+1`` are
          filtered (the late round start is causally explained).

        Retention of only the *earliest-phase* suspicions of each round
        happens retroactively in :meth:`_rebuild`, so log-order races
        cannot defeat it.
        """
        leader = self._round_leaders.get(record.round_id)
        if (
            record.msg_type in ("propose", "proposal-timestamp")
            and leader is not None
            and record.suspect != leader
        ):
            return True
        if (
            record.msg_type == "proposal-timestamp"
            and (record.round_id - 1) in self._leader_suspected_round
        ):
            return True
        return False

    def _note_phase(self, record: SuspicionRecord) -> None:
        leader = self._round_leaders.get(record.round_id)
        if leader is not None and record.reporter == leader:
            self._leader_suspected_round.add(record.round_id)

    def _apply_reciprocation(self, record: SuspicionRecord) -> None:
        # record is ⟨False, A d B⟩: A (reporter) answers B's (suspect's)
        # earlier suspicion; it confirms the (A, B) edge as two-way.
        for item in self._items:
            if item.one_way:
                continue
            if {item.reporter, item.suspect} == {record.reporter, record.suspect}:
                item.reciprocated = True

    # ------------------------------------------------------------------
    # View progression, aging and overflow
    # ------------------------------------------------------------------
    def advance_view(self, view: int) -> None:
        """Advance the view; expires reciprocation deadlines and ages items."""
        if view <= self.current_view:
            return
        self.current_view = view
        changed = False
        for item in self._items:
            if (
                not item.one_way
                and not item.reciprocated
                and item.kind == SuspicionKind.SLOW
                and view >= item.deadline_view
            ):
                item.one_way = True  # suspect considered crashed
                changed = True
        if (
            self._items
            and view - self._last_suspicion_view >= self.stability_window
        ):
            # Stable system: remove the oldest suspicion per view (aging).
            self._items.pop(0)
            self._last_suspicion_view = view  # pace removals one per view
            changed = True
        if changed:
            self._rebuild()

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    def _faulty_set(self) -> Set[int]:
        if self.misbehavior is None:
            return set()
        return set(self.misbehavior.faulty)

    def _effective_items(self) -> List[_SuspicionItem]:
        """Causal filtering (§4.2.3), applied retroactively.

        For each round only the suspicions from the earliest phase are
        effective: a single delayed message delays every later phase, so
        later-phase suspicions of the same round are causally implied.
        Computing this over the full item set (rather than online) means
        a Byzantine replica cannot win by racing its later-phase
        suspicions into the log ahead of the legitimate ones.
        """
        min_phase: Dict[int, int] = {}
        for item in self._items:
            current = min_phase.get(item.round_id)
            if current is None or item.phase < current:
                min_phase[item.round_id] = item.phase
        return [
            item for item in self._items if item.phase == min_phase[item.round_id]
        ]

    def _rebuild(self) -> None:
        """Recompute C, G, K, u from the effective items (deterministic)."""
        while True:
            effective = self._effective_items()
            faulty = self._faulty_set()
            crashed: Set[int] = set()
            for item in effective:
                if item.one_way and item.suspect not in faulty:
                    crashed.add(item.suspect)
            vertices = [
                v for v in range(self.n) if v not in faulty and v not in crashed
            ]
            vertex_set = set(vertices)
            graph = Graph(vertices=vertices)
            for item in effective:
                if item.one_way:
                    continue
                if item.reporter in vertex_set and item.suspect in vertex_set:
                    graph.add_edge(item.reporter, item.suspect)
            candidates, u = self._derive(graph)
            # Overflow rule: evict oldest suspicions until K is large
            # enough ("too many suspicions occur when G no longer contains
            # an independent set of size n - f", Lemma 1).
            if len(candidates) >= self._min_candidates() or not self._items:
                break
            self._items.pop(0)
        self.crashed = crashed
        self.graph = graph
        self.candidates = candidates
        self.u = u

    def _min_candidates(self) -> int:
        """Smallest tolerable candidate set (n - f for the base monitor)."""
        return self.n - self.f

    def _derive(self, graph: Graph) -> Tuple[FrozenSet[int], int]:
        """(K, u) from the suspicion graph; overridden by the tree variant."""
        candidates = self._candidate_set(graph)
        u = max(0, len(graph) - len(candidates))
        return candidates, u

    def _candidate_set(self, graph: Graph) -> FrozenSet[int]:
        """Maximum independent set over the suspicion graph.

        Replicas with no suspicions at all are isolated vertices and are
        always included.  Overridden by the tree variant (§6.4).
        """
        contested = [v for v in graph.vertices() if graph.degree(v) > 0]
        isolated = frozenset(v for v in graph.vertices() if graph.degree(v) == 0)
        if not contested:
            return isolated
        sub = graph.subgraph(contested)
        if len(contested) <= self.exact_mis_threshold:
            mis = maximum_independent_set(sub)
        else:
            mis = greedy_independent_set(sub)
        return isolated | mis

    # ------------------------------------------------------------------
    # Queries (paper notation)
    # ------------------------------------------------------------------
    @property
    def C(self) -> FrozenSet[int]:  # noqa: N802 - paper notation
        return frozenset(self.crashed)

    @property
    def K(self) -> FrozenSet[int]:  # noqa: N802 - paper notation
        return self.candidates

    def estimate(self) -> Tuple[FrozenSet[int], int]:
        """The pair (K, u) consumed by the ConfigSensor."""
        return self.candidates, self.u

    def active_suspicions(self) -> List[Tuple[int, int]]:
        """Currently active (reporter, suspect) pairs, in log order."""
        return [(item.reporter, item.suspect) for item in self._items]
