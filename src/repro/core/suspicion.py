"""Suspicion sensor and monitor (§4.2.3, Appendix C).

The SuspicionSensor detects timing and omission faults relative to the
latencies replicas *reported* (the latency matrix ``L``):

========  ============================================================
(a)       consecutive proposal timestamps more than ``δ·d_rnd`` apart
          → ⟨Slow, A d L⟩ against the leader
(b)       message ``m`` from B missing ``δ·d_m`` after round start
          → ⟨Slow, A d B⟩
(c)       a suspicion ⟨_, B d A⟩ against the local replica
          → reciprocate ⟨False, A d B⟩
========  ============================================================

The SuspicionMonitor consumes committed suspicions, filters causally
related ones, distinguishes crash suspicions (never reciprocated within
``f+1`` views → crashed set ``C``) from mutual suspicions (edges of the
suspicion graph ``G``), and produces:

* the candidate set ``K`` -- a maximum independent set of ``G`` plus every
  unsuspected replica, always of size ≥ ``n − f`` (Lemma 1);
* the estimate ``u = |V| − |K|`` of misbehaving replicas.

Aging: after ``w`` stable views old suspicions are evicted oldest-first;
eviction also triggers when ``G`` no longer contains an independent set of
size ``n − f``.

OptiTree's alternative candidate rule (``E_d``/``T``, §6.4) subclasses
this monitor in :mod:`repro.tree.candidates`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.log import AppendOnlyLog, LogEntry
from repro.core.misbehavior import MisbehaviorMonitor
from repro.core.monitor import Monitor
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.core.sensor import Sensor, SensorApp
from repro.optimize.graphs import Edge, Graph, ordered_edge
from repro.optimize.maxindset import (
    greedy_independent_set_masks,
    maximum_independent_set_masks,
)


# ----------------------------------------------------------------------
# Sensor
# ----------------------------------------------------------------------
@dataclass
class ExpectedMessage:
    """One message the protocol expects during a round.

    ``d_m`` is the expected delay from the round's proposal timestamp to
    the message's arrival (TR1/TR2); ``phase`` orders messages causally
    within the round (0 = proposal) and feeds the monitor's filtering.
    """

    sender: int
    msg_type: str
    phase: int
    d_m: float


@dataclass
class _RoundState:
    round_id: int
    leader: int
    proposal_timestamp: float
    expected: Dict[Tuple[int, str], ExpectedMessage] = field(default_factory=dict)
    received: Set[Tuple[int, str]] = field(default_factory=set)
    checked: bool = False
    #: Lowest phase already suspected this round; one late message delays
    #: every later phase, so later-phase suspicions are causally implied
    #: and not raised (the monitor filters them anyway, §4.2.3).
    suspected_phase: float = math.inf


class SuspicionSensor(Sensor):
    """Raises suspicions per conditions (a)-(c) of §4.2.3.

    The protocol adapter drives the sensor:

    * :meth:`begin_round` when a proposal (with the leader's timestamp)
      arrives, together with the round's expected messages and ``d_rnd``;
    * :meth:`on_message` when an expected message arrives;
    * :meth:`check_round` once the local clock passes the round's horizon
      (simulation engines schedule this; analytical tests call it with an
      explicit ``now``);
    * :meth:`on_suspicion_logged` for every committed suspicion, to
      reciprocate per condition (c).

    The sensor requires synchronised clocks (§4.2.3); in the simulator all
    replicas share virtual time, and clock skew can be injected through
    the ``clock_skew`` parameter for robustness experiments.
    """

    name = "suspicion-sensor"

    def __init__(
        self,
        replica_id: int,
        app: SensorApp,
        delta: float = 1.0,
        clock_skew: float = 0.0,
    ):
        super().__init__(replica_id, app)
        self.delta = delta
        self.clock_skew = clock_skew
        self._rounds: Dict[int, _RoundState] = {}
        self._last_proposal: Optional[Tuple[int, float, int]] = None  # (round, ts, leader)
        self._last_d_rnd: float = math.inf
        self._reciprocated: Set[Tuple[int, int]] = set()
        #: (suspect, round) pairs already reported slow: one ⟨Slow⟩ per
        #: suspect per round keeps reports rare (§7.8) while still giving
        #: the monitor one fresh edge per round of continued misbehavior.
        self._slow_reported: Set[Tuple[int, int]] = set()
        self.suspicions_raised = 0

    # -- protocol driving ------------------------------------------------
    def begin_round(
        self,
        round_id: int,
        leader: int,
        proposal_timestamp: float,
        d_rnd: float,
        expected: List[ExpectedMessage],
        view: int = 0,
    ) -> None:
        """Start tracking a round; checks condition (a) against the last one."""
        timestamp = proposal_timestamp + self.clock_skew
        if self._last_proposal is not None:
            last_round, last_ts, last_leader = self._last_proposal
            same_leader_next = leader == last_leader and round_id == last_round + 1
            gap = timestamp - last_ts
            if same_leader_next and gap > self.delta * self._last_d_rnd:
                self._raise_slow(
                    suspect=leader,
                    round_id=round_id,
                    msg_type="proposal-timestamp",
                    phase=0,
                    view=view,
                )
        self._last_proposal = (round_id, timestamp, leader)
        self._last_d_rnd = d_rnd
        self._rounds[round_id] = _RoundState(
            round_id=round_id,
            leader=leader,
            proposal_timestamp=timestamp,
            expected={(m.sender, m.msg_type): m for m in expected},
        )

    def on_message(self, round_id: int, sender: int, msg_type: str, now: float) -> None:
        """Record arrival of an expected message (condition (b) bookkeeping).

        A message arriving *after* its ``δ·d_m`` deadline is still a
        condition-(b) violation -- the suspicion is raised immediately
        rather than waiting for the round check.
        """
        state = self._rounds.get(round_id)
        if state is None:
            return
        expected = state.expected.get((sender, msg_type))
        if expected is not None and expected.phase <= state.suspected_phase:
            deadline = state.proposal_timestamp + self.delta * expected.d_m
            if now > deadline:
                if self._raise_slow(
                    suspect=sender,
                    round_id=round_id,
                    msg_type=msg_type,
                    phase=expected.phase,
                    view=0,
                ) is not None:
                    state.suspected_phase = min(state.suspected_phase, expected.phase)
        state.received.add((sender, msg_type))

    def round_horizon(self, round_id: int) -> Optional[float]:
        """Absolute time by which every expected message should have arrived."""
        state = self._rounds.get(round_id)
        if state is None or not state.expected:
            return None
        latest = max(m.d_m for m in state.expected.values())
        return state.proposal_timestamp + self.delta * latest

    def check_round(self, round_id: int, now: float, view: int = 0) -> List[SuspicionRecord]:
        """Raise ⟨Slow⟩ for every expected message still missing at ``now``.

        Idempotent per round; returns the suspicions raised (already
        submitted through the sensor app).
        """
        state = self._rounds.get(round_id)
        if state is None or state.checked:
            return []
        raised = []
        missing = sorted(
            (
                (expected.phase, sender, msg_type, expected)
                for (sender, msg_type), expected in state.expected.items()
                if (sender, msg_type) not in state.received
            ),
        )
        for phase, sender, msg_type, expected in missing:
            if phase > state.suspected_phase:
                break  # causally implied by the earlier-phase suspicion
            deadline = state.proposal_timestamp + self.delta * expected.d_m
            if now >= deadline:
                record = self._raise_slow(
                    suspect=sender,
                    round_id=round_id,
                    msg_type=msg_type,
                    phase=phase,
                    view=view,
                )
                if record is not None:
                    raised.append(record)
                    state.suspected_phase = min(state.suspected_phase, phase)
        state.checked = True
        return raised

    def forget_round(self, round_id: int) -> None:
        """Drop bookkeeping for an old round."""
        self._rounds.pop(round_id, None)

    # -- condition (c) ----------------------------------------------------
    def on_suspicion_logged(self, record: SuspicionRecord, view: int = 0) -> None:
        """Reciprocate a suspicion raised against the local replica."""
        if record.suspect != self.replica_id:
            return
        if record.reporter == self.replica_id:
            return
        key = (record.reporter, record.round_id)
        if key in self._reciprocated:
            return
        self._reciprocated.add(key)
        self._raise(
            suspect=record.reporter,
            kind=SuspicionKind.FALSE,
            round_id=record.round_id,
            msg_type="reciprocation",
            phase=record.phase,
            view=view,
        )

    def forgive(self, suspect: int) -> None:
        """Allow reporting ``suspect`` slow again (e.g. after a
        reconfiguration gave it a fresh start)."""
        self._slow_reported = {
            (reported, round_id)
            for reported, round_id in self._slow_reported
            if reported != suspect
        }

    # -- helpers ----------------------------------------------------------
    def _raise_slow(
        self,
        suspect: int,
        round_id: int,
        msg_type: str,
        phase: int,
        view: int,
    ) -> Optional[SuspicionRecord]:
        """Raise ⟨Slow⟩ at most once per (suspect, round)."""
        if (suspect, round_id) in self._slow_reported or suspect == self.replica_id:
            return None
        self._slow_reported.add((suspect, round_id))
        return self._raise(
            suspect=suspect,
            kind=SuspicionKind.SLOW,
            round_id=round_id,
            msg_type=msg_type,
            phase=phase,
            view=view,
        )

    def _raise(
        self,
        suspect: int,
        kind: SuspicionKind,
        round_id: int,
        msg_type: str,
        phase: int,
        view: int,
    ) -> SuspicionRecord:
        record = SuspicionRecord(
            reporter=self.replica_id,
            suspect=suspect,
            kind=kind,
            round_id=round_id,
            msg_type=msg_type,
            phase=phase,
            view=view,
        )
        self.suspicions_raised += 1
        self.record(record)
        return record


# ----------------------------------------------------------------------
# Monitor
# ----------------------------------------------------------------------
@dataclass
class _SuspicionItem:
    """An accepted (unfiltered) suspicion and its lifecycle state."""

    seq: int
    reporter: int
    suspect: int
    kind: SuspicionKind
    round_id: int
    phase: int
    view: int
    reciprocated: bool = False
    deadline_view: int = 0
    one_way: bool = False  # aged into a crash suspicion


class SuspicionMonitor(Monitor):
    """Builds C, G, K and u from committed suspicions (§4.2.3).

    The derived state is maintained *incrementally*: per-round phase
    multisets give the causal filter's min-phase in O(1) per append, and
    the effective items' contributions live in two counters (two-way
    edge multiset, one-way crash multiset) that mutate on append,
    eviction and one-way aging.  The graph is only rebuilt -- and the
    MIS only re-solved -- when those counters actually changed (dirty
    flag + structural fingerprint).  ``check_rebuild=True`` re-derives
    everything from scratch after every mutation and asserts equality
    (the checked-reference mode, mirroring the optimizer layer's
    ``check_score``).

    Parameters
    ----------
    n, f:
        System size and fault threshold.
    misbehavior:
        The local MisbehaviorMonitor providing ``F``; vertices in ``F``
        are excluded from the graph (and the candidate set).
    stability_window:
        ``w``: views without new suspicions before aging starts.
    exact_mis_threshold:
        Largest graph solved with exact Bron-Kerbosch; beyond it the
        greedy heuristic is used (the paper likewise uses a heuristic
        variant, §7.2).
    check_rebuild:
        Verify every incremental update against the from-scratch
        rebuild (slow; for tests and debugging).
    """

    name = "suspicion-monitor"
    record_types = (SuspicionRecord,)

    def __init__(
        self,
        replica_id: int,
        log: AppendOnlyLog,
        n: int,
        f: int,
        misbehavior: Optional[MisbehaviorMonitor] = None,
        stability_window: int = 10,
        exact_mis_threshold: int = 25,
        check_rebuild: bool = False,
    ):
        self.n = n
        self.f = f
        self.misbehavior = misbehavior
        self.stability_window = stability_window
        self.exact_mis_threshold = exact_mis_threshold
        self.check_rebuild = check_rebuild
        self._items: Deque[_SuspicionItem] = deque()
        self.current_view = 0
        self._last_suspicion_view = 0
        self.filtered_count = 0
        # Rounds in which the *leader* raised a suspicion (suppresses
        # proposal-timestamp suspicions for round+1, §4.2.3).
        self._leader_suspected_round: Set[int] = set()
        self._round_leaders: Dict[int, int] = {}
        # Incremental registries (invariants in docs/ARCHITECTURE.md):
        # per-round phase multiset + its min (the causal filter), the
        # per-round item lists (for promote/demote on min changes), and
        # the effective items' contributions -- a (reporter, suspect)
        # edge multiset for two-way items, a per-suspect multiset for
        # one-way (crash) items.  Membership filtering against F and C
        # happens at graph-build time, not here.
        self._round_phase_counts: Dict[int, Dict[int, int]] = {}
        self._round_min_phase: Dict[int, int] = {}
        self._round_items: Dict[int, List[_SuspicionItem]] = {}
        # Items grouped by unordered (reporter, suspect) pair, so a
        # reciprocation touches only its own pair's items instead of
        # scanning the whole deque (adversarial smear/churn storms send
        # reciprocation counts far past the live-item count).
        self._pair_items: Dict[Edge, List[_SuspicionItem]] = {}
        self._edge_counts: Dict[Edge, int] = {}
        self._oneway_counts: Dict[int, int] = {}
        self._dirty = False
        self._derive_key: Optional[tuple] = None
        self._derive_cache: Optional[Tuple[FrozenSet[int], int]] = None
        # Derived state, refreshed whenever the registries change.
        self.crashed: Set[int] = set()
        self.graph = Graph(vertices=range(n))
        self.candidates: FrozenSet[int] = frozenset(range(n))
        self.u = 0
        super().__init__(replica_id, log)
        # A new proof-of-misbehavior changes F and therefore V = Π\F\C.
        if misbehavior is not None:
            misbehavior.add_listener(self._on_faulty_changed)

    # ------------------------------------------------------------------
    # Log consumption
    # ------------------------------------------------------------------
    def note_round_leader(self, round_id: int, leader: int) -> None:
        """Tell the monitor who led a round (for leader-suspicion filtering)."""
        self._round_leaders[round_id] = leader

    def on_entry(self, entry: LogEntry) -> None:
        record: SuspicionRecord = entry.record
        if record.reporter == record.suspect:
            return
        if not (0 <= record.reporter < self.n and 0 <= record.suspect < self.n):
            return
        if record.kind == SuspicionKind.FALSE:
            self._apply_reciprocation(record)
            # A reciprocation also proves two-way-ness; it does not create
            # a new edge by itself if none exists (nothing to reciprocate),
            # and it cannot change C, G, K or u -- no refresh needed.
            if self.check_rebuild:
                self._check_against_rebuild()
            return
        if self._is_filtered(record):
            self.filtered_count += 1
            return
        self._last_suspicion_view = max(self._last_suspicion_view, record.view, self.current_view)
        item = _SuspicionItem(
            seq=entry.seq,
            reporter=record.reporter,
            suspect=record.suspect,
            kind=record.kind,
            round_id=record.round_id,
            phase=record.phase,
            view=record.view,
            deadline_view=max(record.view, self.current_view) + self.f + 1,
        )
        self._items.append(item)
        self._pair_items.setdefault(
            ordered_edge(item.reporter, item.suspect), []
        ).append(item)
        self._register_item(item)
        self._note_phase(record)
        if self._dirty:
            self._refresh()
        if self.check_rebuild:
            self._check_against_rebuild()

    def _is_filtered(self, record: SuspicionRecord) -> bool:
        """Arrival-time filtering per §4.2.3 plus structural checks.

        * Proposal-phase suspicions (``propose``/``proposal-timestamp``)
          can only legitimately target the round's leader -- a Byzantine
          reporter cannot smuggle early-phase edges against arbitrary
          replicas.
        * If the leader raised a suspicion in round ``i``, suspicions
          against a delayed proposal timestamp in round ``i+1`` are
          filtered (the late round start is causally explained).

        Retention of only the *earliest-phase* suspicions of each round
        happens retroactively in :meth:`_rebuild`, so log-order races
        cannot defeat it.
        """
        leader = self._round_leaders.get(record.round_id)
        if (
            record.msg_type in ("propose", "proposal-timestamp")
            and leader is not None
            and record.suspect != leader
        ):
            return True
        if (
            record.msg_type == "proposal-timestamp"
            and (record.round_id - 1) in self._leader_suspected_round
        ):
            return True
        return False

    def _note_phase(self, record: SuspicionRecord) -> None:
        leader = self._round_leaders.get(record.round_id)
        if leader is not None and record.reporter == leader:
            self._leader_suspected_round.add(record.round_id)

    def _apply_reciprocation(self, record: SuspicionRecord) -> None:
        # record is ⟨False, A d B⟩: A (reporter) answers B's (suspect's)
        # earlier suspicion; it confirms the (A, B) edge as two-way.
        pair = ordered_edge(record.reporter, record.suspect)
        for item in self._pair_items.get(pair, ()):
            if not item.one_way:
                item.reciprocated = True

    # ------------------------------------------------------------------
    # View progression, aging and overflow
    # ------------------------------------------------------------------
    def advance_view(self, view: int) -> None:
        """Advance the view; expires reciprocation deadlines and ages items."""
        if view <= self.current_view:
            return
        self.current_view = view
        for item in self._items:
            if (
                not item.one_way
                and not item.reciprocated
                and item.kind == SuspicionKind.SLOW
                and view >= item.deadline_view
            ):
                # Suspect considered crashed: an effective item's
                # contribution moves from the edge to the one-way counter.
                # A non-effective item flips its flag without touching any
                # counter (derived state cannot change), so no refresh; a
                # later promotion reads the flag and counts it correctly.
                if self._item_effective(item):
                    self._remove_contribution(item)
                    item.one_way = True
                    self._add_contribution(item)
                    self._dirty = True
                else:
                    item.one_way = True
        if (
            self._items
            and view - self._last_suspicion_view >= self.stability_window
        ):
            # Stable system: remove the oldest suspicion per view (aging).
            self._evict_oldest()
            self._last_suspicion_view = view  # pace removals one per view
        if self._dirty:
            self._refresh()
        if self.check_rebuild:
            self._check_against_rebuild()

    # ------------------------------------------------------------------
    # Incremental registries
    # ------------------------------------------------------------------
    def _item_effective(self, item: _SuspicionItem) -> bool:
        return item.phase == self._round_min_phase[item.round_id]

    def _add_contribution(self, item: _SuspicionItem) -> None:
        """Count an item that just became effective."""
        if item.one_way:
            counts = self._oneway_counts
            counts[item.suspect] = counts.get(item.suspect, 0) + 1
        else:
            edge = ordered_edge(item.reporter, item.suspect)
            counts = self._edge_counts
            counts[edge] = counts.get(edge, 0) + 1

    def _remove_contribution(self, item: _SuspicionItem) -> None:
        """Retract an effective item's contribution (zeroes are deleted so
        the counters stay exactly the effective multiset)."""
        if item.one_way:
            counts = self._oneway_counts
            key = item.suspect
        else:
            counts = self._edge_counts
            key = ordered_edge(item.reporter, item.suspect)
        remaining = counts[key] - 1
        if remaining:
            counts[key] = remaining
        else:
            del counts[key]

    def _register_item(self, item: _SuspicionItem) -> None:
        """Fold a freshly appended item into the registries.

        A phase *below* the round's current minimum retroactively demotes
        every previously effective item of that round (the §4.2.3 causal
        filter); a phase above it leaves the derived state untouched.
        """
        round_id, phase = item.round_id, item.phase
        counts = self._round_phase_counts.setdefault(round_id, {})
        counts[phase] = counts.get(phase, 0) + 1
        bucket = self._round_items.setdefault(round_id, [])
        bucket.append(item)
        current = self._round_min_phase.get(round_id)
        if current is None:
            self._round_min_phase[round_id] = phase
            self._add_contribution(item)
            self._dirty = True
        elif phase < current:
            for other in bucket:
                if other.phase == current:
                    self._remove_contribution(other)
            self._round_min_phase[round_id] = phase
            self._add_contribution(item)
            self._dirty = True
        elif phase == current:
            self._add_contribution(item)
            self._dirty = True
        # phase > current: causally implied, not effective -- no change.

    def _unregister_item(self, item: _SuspicionItem) -> None:
        """Remove an evicted item from the registries; items promoted by a
        rising min-phase regain their contributions."""
        round_id, phase = item.round_id, item.phase
        bucket = self._round_items[round_id]
        if bucket and bucket[0] is item:  # eviction order: oldest first
            bucket.pop(0)
        else:
            bucket.remove(item)
        pair = ordered_edge(item.reporter, item.suspect)
        pair_bucket = self._pair_items[pair]
        if pair_bucket[0] is item:  # same oldest-first eviction order
            pair_bucket.pop(0)
        else:
            pair_bucket.remove(item)
        if not pair_bucket:
            del self._pair_items[pair]
        counts = self._round_phase_counts[round_id]
        remaining = counts[phase] - 1
        was_effective = phase == self._round_min_phase[round_id]
        if remaining:
            counts[phase] = remaining
        else:
            del counts[phase]
        if was_effective:
            self._remove_contribution(item)
            self._dirty = True
        if not counts:
            del self._round_phase_counts[round_id]
            del self._round_min_phase[round_id]
            del self._round_items[round_id]
        elif was_effective and phase not in counts:
            new_min = min(counts)
            self._round_min_phase[round_id] = new_min
            for other in bucket:
                if other.phase == new_min:
                    self._add_contribution(other)

    def _evict_oldest(self) -> None:
        self._unregister_item(self._items.popleft())

    def _on_faulty_changed(self) -> None:
        """F changed (new proof-of-misbehavior): V = Π\\F\\C moves even
        though the suspicion registries did not."""
        self._dirty = True
        self._refresh()
        if self.check_rebuild:
            self._check_against_rebuild()

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    def _faulty_set(self) -> Set[int]:
        if self.misbehavior is None:
            return set()
        return set(self.misbehavior.faulty)

    def _effective_items(self) -> List[_SuspicionItem]:
        """Causal filtering (§4.2.3), applied retroactively.

        For each round only the suspicions from the earliest phase are
        effective: a single delayed message delays every later phase, so
        later-phase suspicions of the same round are causally implied.
        Applying this over the full item set (rather than online) means
        a Byzantine replica cannot win by racing its later-phase
        suspicions into the log ahead of the legitimate ones.  Served
        from the incrementally maintained per-round min-phase map;
        :meth:`_rebuild` recomputes that map from scratch.
        """
        min_phase = self._round_min_phase
        return [
            item for item in self._items if item.phase == min_phase[item.round_id]
        ]

    def _refresh(self) -> None:
        """Re-derive C, G, K, u from the registries (deterministic).

        The MIS is only re-solved when the structural fingerprint --
        vertex set, edge set and (for order-sensitive subclasses) the
        effective edge order -- actually changed; the overflow rule loops
        through :meth:`_evict_oldest` until K is large enough ("too many
        suspicions occur when G no longer contains an independent set of
        size n - f", Lemma 1).
        """
        while True:
            faulty = self._faulty_set()
            if faulty:
                crashed = {s for s in self._oneway_counts if s not in faulty}
            else:
                crashed = set(self._oneway_counts)
            excluded = faulty | crashed
            if excluded:
                vertices = [v for v in range(self.n) if v not in excluded]
            else:
                vertices = list(range(self.n))
            vertex_set = set(vertices)
            edges = sorted(
                edge
                for edge in self._edge_counts
                if edge[0] in vertex_set and edge[1] in vertex_set
            )
            graph = Graph.from_parts(vertices, edges)
            key = self._structure_key(vertices, edges)
            if key == self._derive_key and self._derive_cache is not None:
                candidates, u = self._derive_cache
            else:
                candidates, u = self._derive(graph)
                self._derive_key = key
                self._derive_cache = (candidates, u)
            if len(candidates) >= self._min_candidates() or not self._items:
                break
            self._evict_oldest()
        self.crashed = crashed
        self.graph = graph
        self.candidates = candidates
        self.u = u
        self._dirty = False

    def _rebuild(self) -> None:
        """From-scratch rebuild: recompute the registries from the raw
        item deque, then refresh.  Kept as the reference path (and the
        recovery hatch) for the incremental mutations above; the checked
        mode compares against :meth:`_reference_state` instead, which
        does not touch ``self`` at all."""
        self._round_phase_counts = {}
        self._round_min_phase = {}
        self._round_items = {}
        self._edge_counts = {}
        self._oneway_counts = {}
        min_phase = self._round_min_phase
        for item in self._items:
            round_id, phase = item.round_id, item.phase
            counts = self._round_phase_counts.setdefault(round_id, {})
            counts[phase] = counts.get(phase, 0) + 1
            self._round_items.setdefault(round_id, []).append(item)
            current = min_phase.get(round_id)
            if current is None or phase < current:
                min_phase[round_id] = phase
        for item in self._items:
            if item.phase == min_phase[item.round_id]:
                self._add_contribution(item)
        self._dirty = True
        self._derive_key = None
        self._derive_cache = None
        self._refresh()

    def _reference_state(self) -> Tuple[Set[int], Graph, FrozenSet[int], int]:
        """(C, G, K, u) recomputed from scratch, without mutating self.

        This is the pre-incremental ``_rebuild`` body (minus overflow
        eviction, which the incremental path has already resolved); the
        checked mode asserts the incremental state equals it after every
        mutation."""
        min_phase: Dict[int, int] = {}
        for item in self._items:
            current = min_phase.get(item.round_id)
            if current is None or item.phase < current:
                min_phase[item.round_id] = item.phase
        effective = [
            item for item in self._items if item.phase == min_phase[item.round_id]
        ]
        faulty = self._faulty_set()
        crashed: Set[int] = set()
        for item in effective:
            if item.one_way and item.suspect not in faulty:
                crashed.add(item.suspect)
        vertices = [
            v for v in range(self.n) if v not in faulty and v not in crashed
        ]
        vertex_set = set(vertices)
        graph = Graph(vertices=vertices)
        for item in effective:
            if item.one_way:
                continue
            if item.reporter in vertex_set and item.suspect in vertex_set:
                graph.add_edge(item.reporter, item.suspect)
        candidates, u = self._derive(graph)
        return crashed, graph, candidates, u

    def _check_against_rebuild(self) -> None:
        """Checked-reference mode: assert incremental == from-scratch."""
        min_phase: Dict[int, int] = {}
        for item in self._items:
            current = min_phase.get(item.round_id)
            if current is None or item.phase < current:
                min_phase[item.round_id] = item.phase
        if min_phase != self._round_min_phase:
            raise AssertionError(
                "incremental min-phase diverged: "
                f"{self._round_min_phase} != {min_phase}"
            )
        crashed, graph, candidates, u = self._reference_state()
        if (
            crashed != self.crashed
            or graph.vertices() != self.graph.vertices()
            or graph.edges() != self.graph.edges()
            or candidates != self.candidates
            or u != self.u
        ):
            raise AssertionError(
                "incremental suspicion state diverged from rebuild: "
                f"C {sorted(self.crashed)} vs {sorted(crashed)}, "
                f"E {self.graph.edges()} vs {graph.edges()}, "
                f"K {sorted(self.candidates)} vs {sorted(candidates)}, "
                f"u {self.u} vs {u}"
            )

    def _min_candidates(self) -> int:
        """Smallest tolerable candidate set (n - f for the base monitor)."""
        return self.n - self.f

    def _structure_key(self, vertices: List[int], edges: List[Edge]) -> tuple:
        """Fingerprint of everything :meth:`_derive` reads.  The base
        monitor's K is a pure function of the graph; subclasses whose
        derivation is order-sensitive must extend this."""
        return (tuple(vertices), tuple(edges))

    def _derive(self, graph: Graph) -> Tuple[FrozenSet[int], int]:
        """(K, u) from the suspicion graph; overridden by the tree variant
        (which also reads the effective items' arrival order)."""
        candidates = self._candidate_set(graph)
        u = max(0, len(graph) - len(candidates))
        return candidates, u

    def _candidate_set(self, graph: Graph) -> FrozenSet[int]:
        """Maximum independent set over the suspicion graph.

        Replicas with no suspicions at all are isolated vertices and are
        always included.  Runs on the graph's bitmask adjacency directly
        (no subgraph materialisation): the greedy path solves the full
        graph -- its zero-degree batching picks every isolated vertex in
        one pass without touching contested degrees, so the result is
        exactly ``isolated | greedy(contested subgraph)`` -- while the
        exact path restricts the masks to the contested vertices, which
        also keeps the complement graph Bron-Kerbosch works on small.
        Overridden by the tree variant (§6.4).
        """
        vertices, masks = graph.adjacency_bitmasks()
        contested_count = sum(1 for mask in masks if mask)
        if not contested_count:
            return frozenset(vertices)
        if contested_count <= self.exact_mis_threshold:
            contested = [v for v, mask in zip(vertices, masks) if mask]
            isolated = frozenset(
                v for v, mask in zip(vertices, masks) if not mask
            )
            sub_vertices, sub_masks = graph.adjacency_bitmasks(keep=contested)
            return isolated | maximum_independent_set_masks(
                sub_vertices, sub_masks
            )
        return greedy_independent_set_masks(vertices, masks)

    # ------------------------------------------------------------------
    # Queries (paper notation)
    # ------------------------------------------------------------------
    @property
    def C(self) -> FrozenSet[int]:  # noqa: N802 - paper notation
        return frozenset(self.crashed)

    @property
    def K(self) -> FrozenSet[int]:  # noqa: N802 - paper notation
        return self.candidates

    def estimate(self) -> Tuple[FrozenSet[int], int]:
        """The pair (K, u) consumed by the ConfigSensor."""
        return self.candidates, self.u

    def active_suspicions(self) -> List[Tuple[int, int]]:
        """Currently active (reporter, suspect) pairs, in log order."""
        return [(item.reporter, item.suspect) for item in self._items]
