"""History-based selection of the timer multiplier δ (§7.6).

"OptiLog enables selecting an optimal δ through historical analysis of
recorded latencies.  By systematically analyzing past latency data,
OptiLog could determine δ values best suited for varying network
conditions" -- the paper leaves the evaluation to future work; this
module implements the mechanism.

The trade-off: a small δ turns benign latency variation into false
suspicions (and reconfiguration churn); a large δ hands Byzantine
replicas that much delay budget for free (Fig. 11).  Given a history of
per-link latency samples, :func:`recommend_delta` picks the smallest δ
that would have kept the false-suspicion rate below a target quantile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class LatencyHistory:
    """Per-link latency observations accumulated from committed vectors.

    Each sample is a (baseline, observed) pair: the latency the link
    *reported* into the matrix ``L`` versus a later protocol-message
    observation.  The ratio distribution is exactly what δ must cover.
    """

    samples: Dict[Tuple[int, int], List[Tuple[float, float]]] = field(
        default_factory=dict
    )

    def observe(self, a: int, b: int, baseline: float, observed: float) -> None:
        if baseline <= 0 or observed <= 0:
            return
        key = (a, b) if a < b else (b, a)
        self.samples.setdefault(key, []).append((baseline, observed))

    def ratios(self) -> List[float]:
        """Observed/baseline ratios over every link, sorted ascending."""
        result = [
            observed / baseline
            for pairs in self.samples.values()
            for baseline, observed in pairs
        ]
        result.sort()
        return result

    @property
    def sample_count(self) -> int:
        return sum(len(pairs) for pairs in self.samples.values())


def quantile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted values, q in [0, 1]."""
    if not sorted_values:
        raise ValueError("no samples")
    if q <= 0:
        return sorted_values[0]
    if q >= 1:
        return sorted_values[-1]
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def recommend_delta(
    history: LatencyHistory,
    false_suspicion_quantile: float = 0.999,
    headroom: float = 1.02,
    floor: float = 1.0,
    ceiling: float = 2.0,
) -> float:
    """Smallest δ covering the benign latency-variation distribution.

    ``false_suspicion_quantile`` is the fraction of benign messages that
    must arrive within ``δ·d_m`` (each miss is a false suspicion);
    ``headroom`` adds a small safety margin; the result is clamped to
    ``[floor, ceiling]`` -- the ceiling caps the delay budget handed to
    Byzantine replicas (Fig. 11's concern).
    """
    if not (0.0 < false_suspicion_quantile <= 1.0):
        raise ValueError("quantile must be in (0, 1]")
    ratios = history.ratios()
    if not ratios:
        return ceiling  # no evidence: be conservative about suspicions
    required = quantile(ratios, false_suspicion_quantile) * headroom
    return min(max(required, floor), ceiling)


def expected_false_suspicion_rate(history: LatencyHistory, delta: float) -> float:
    """Fraction of historical benign messages that δ would have suspected."""
    ratios = history.ratios()
    if not ratios:
        return 0.0
    late = sum(1 for ratio in ratios if ratio > delta)
    return late / len(ratios)
