"""Measurement records appended to the OptiLog log.

Each record type corresponds to one sensor of the pipeline in §4.2 and
carries a wire-size estimate used by the overhead study (Fig. 13).  Wire
sizes assume Ed25519-equivalent authentication of every proposal plus
compact binary encodings: 8-byte ids/floats, 2-byte message-type tags, a
small per-record header.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.crypto.signatures import SIGNATURE_SIZE

RECORD_HEADER_SIZE = 10  # type tag + sender + sequence hint

#: Sentinel used for replicas that failed to reply to a probe (§4.2.1:
#: "Any replica that fails to reply is marked as ∞ in the latency vector").
UNREACHABLE = math.inf


class SuspicionKind(enum.Enum):
    """The two suspicion flavours of §4.2.3's condition table."""

    SLOW = "slow"    # conditions (a) and (b)
    FALSE = "false"  # condition (c): reciprocation of a suspicion


@dataclass(frozen=True)
class LatencyVectorRecord:
    """One replica's latency vector (§4.2.1).

    ``vector[i]`` is the recorded link latency from ``sender`` to replica
    ``i`` in seconds, normalised to one-way (RTT/2) so that per-hop sums
    predict protocol delays directly; ``UNREACHABLE`` marks replicas that
    failed to reply.
    """

    sender: int
    vector: Tuple[float, ...]
    view: int = 0

    @property
    def wire_size(self) -> int:
        # 2-byte millisecond fixed-point per replica (0-65 s range), the
        # efficient encoding §7.2/§7.8 allude to.
        return RECORD_HEADER_SIZE + 2 * len(self.vector)

    def latency_to(self, other: int) -> float:
        return self.vector[other]


@dataclass(frozen=True)
class SuspicionRecord:
    """A suspicion ⟨Slow, A d B⟩ or ⟨False, A d B⟩ (§4.2.3).

    ``round_id`` and ``msg_type`` identify the message whose delay caused
    the suspicion, enabling the monitor's causal filtering; ``phase`` is
    the message's position in the round's causal order (0 = proposal).
    """

    reporter: int
    suspect: int
    kind: SuspicionKind
    round_id: int
    msg_type: str = ""
    phase: int = 0
    view: int = 0

    @property
    def wire_size(self) -> int:
        return RECORD_HEADER_SIZE + 8 + 8 + 1 + 8 + 2 + 2

    def involves(self, a: int, b: int) -> bool:
        return {self.reporter, self.suspect} == {a, b}


@dataclass(frozen=True)
class ComplaintRecord:
    """A signed proof-of-misbehavior complaint (§4.2.2).

    ``proof`` is one of the proof objects from
    :mod:`repro.core.misbehavior`; its validity is checked by every
    replica's MisbehaviorMonitor.  An *invalid* complaint is itself
    provable misbehavior by the reporter.
    """

    reporter: int
    accused: int
    kind: str
    proof: object
    view: int = 0

    @property
    def wire_size(self) -> int:
        proof_size = getattr(self.proof, "wire_size", 0)
        return RECORD_HEADER_SIZE + 8 + 8 + 2 + SIGNATURE_SIZE + proof_size


@dataclass(frozen=True)
class Configuration:
    """A role assignment (§2): base class for protocol-specific configs.

    Subclasses (weight configurations in :mod:`repro.aware`, tree
    configurations in :mod:`repro.tree`) define which replicas hold
    *special* roles; the ConfigMonitor checks those against the candidate
    set ``K``.
    """

    def special_replicas(self) -> FrozenSet[int]:
        """Replicas holding special roles (leader, internal nodes, ...)."""
        raise NotImplementedError

    def participants(self) -> FrozenSet[int]:
        """All replicas taking part in the configuration."""
        raise NotImplementedError

    @property
    def wire_size(self) -> int:
        return RECORD_HEADER_SIZE + 8 * len(self.participants())


@dataclass(frozen=True)
class ConfigProposalRecord:
    """A configuration found by some replica's ConfigSensor (§4.2.4).

    ``claimed_score`` is the proposer's own evaluation; monitors recompute
    the score from the shared log state, which is what makes proposers
    accountable for their claims.
    """

    proposer: int
    configuration: Configuration
    claimed_score: float
    view: int = 0
    #: Log sequence number of the last record the searcher consumed;
    #: lets monitors detect proposals computed from stale state.
    basis_seq: int = -1

    @property
    def wire_size(self) -> int:
        return (
            RECORD_HEADER_SIZE
            + 8
            + 8
            + 8
            + self.configuration.wire_size
            + SIGNATURE_SIZE
        )


#: Union of record payload types accepted by the log.
RECORD_TYPES = (
    LatencyVectorRecord,
    SuspicionRecord,
    ComplaintRecord,
    ConfigProposalRecord,
)
