"""OptiLog framework: append-only log, sensors, monitors and the pipeline.

This package implements the paper's primary contribution (§4): a shared
append-only log of measurements, the sensor/monitor abstraction
(non-deterministic capture, deterministic evaluation), and the four-stage
pipeline for low-latency role assignment:

* :mod:`repro.core.latency` -- LatencySensor / LatencyMonitor (§4.2.1)
* :mod:`repro.core.misbehavior` -- MisbehaviorSensor / Monitor (§4.2.2)
* :mod:`repro.core.suspicion` -- SuspicionSensor / Monitor (§4.2.3)
* :mod:`repro.core.config` -- ConfigSensor / ConfigMonitor (§4.2.4)

:mod:`repro.core.timeouts` derives the per-message and per-round timeouts
(TR1-TR3, Appendix C) and :mod:`repro.core.pipeline` wires one replica's
sensors and monitors together.
"""

from repro.core.log import AppendOnlyLog, LogEntry
from repro.core.pipeline import OptiLogPipeline, PipelineSettings
from repro.core.records import (
    ComplaintRecord,
    Configuration,
    ConfigProposalRecord,
    LatencyVectorRecord,
    SuspicionKind,
    SuspicionRecord,
)

__all__ = [
    "AppendOnlyLog",
    "ComplaintRecord",
    "ConfigProposalRecord",
    "Configuration",
    "LatencyVectorRecord",
    "LogEntry",
    "OptiLogPipeline",
    "PipelineSettings",
    "SuspicionKind",
    "SuspicionRecord",
]
