"""World-city dataset used by the latency model.

The paper's emulator draws per-link delays from a WonderProxy dataset of
220 world locations.  The dataset itself is proprietary, so this module
provides a substitute: 220 real cities with approximate coordinates,
grouped by region.  The latency model derives round-trip times from
great-circle distances, reproducing the envelope the paper reports
(intercontinental RTTs of 150-250 ms plus a 1 ms local delay).

Coordinates are approximate (sub-degree accuracy); only relative distances
matter for the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class City:
    """A named location with coordinates and a coarse region tag."""

    name: str
    country: str
    lat: float
    lon: float
    region: str  # EU, NA, SA, AS, AF, OC

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.country})"


def _c(name: str, country: str, lat: float, lon: float, region: str) -> City:
    return City(name, country, lat, lon, region)


# --------------------------------------------------------------------------
# Europe (70)
# --------------------------------------------------------------------------
_EUROPE: List[City] = [
    _c("London", "GB", 51.51, -0.13, "EU"),
    _c("Paris", "FR", 48.86, 2.35, "EU"),
    _c("Berlin", "DE", 52.52, 13.41, "EU"),
    _c("Madrid", "ES", 40.42, -3.70, "EU"),
    _c("Rome", "IT", 41.90, 12.50, "EU"),
    _c("Amsterdam", "NL", 52.37, 4.90, "EU"),
    _c("Brussels", "BE", 50.85, 4.35, "EU"),
    _c("Vienna", "AT", 48.21, 16.37, "EU"),
    _c("Zurich", "CH", 47.38, 8.54, "EU"),
    _c("Geneva", "CH", 46.20, 6.15, "EU"),
    _c("Frankfurt", "DE", 50.11, 8.68, "EU"),
    _c("Munich", "DE", 48.14, 11.58, "EU"),
    _c("Hamburg", "DE", 53.55, 9.99, "EU"),
    _c("Nuremberg", "DE", 49.45, 11.08, "EU"),
    _c("Stuttgart", "DE", 48.78, 9.18, "EU"),
    _c("Cologne", "DE", 50.94, 6.96, "EU"),
    _c("Milan", "IT", 45.46, 9.19, "EU"),
    _c("Naples", "IT", 40.85, 14.27, "EU"),
    _c("Turin", "IT", 45.07, 7.69, "EU"),
    _c("Barcelona", "ES", 41.39, 2.17, "EU"),
    _c("Valencia", "ES", 39.47, -0.38, "EU"),
    _c("Lisbon", "PT", 38.72, -9.14, "EU"),
    _c("Porto", "PT", 41.15, -8.61, "EU"),
    _c("Dublin", "IE", 53.35, -6.26, "EU"),
    _c("Edinburgh", "GB", 55.95, -3.19, "EU"),
    _c("Manchester", "GB", 53.48, -2.24, "EU"),
    _c("Birmingham", "GB", 52.48, -1.90, "EU"),
    _c("Glasgow", "GB", 55.86, -4.25, "EU"),
    _c("Oslo", "NO", 59.91, 10.75, "EU"),
    _c("Stockholm", "SE", 59.33, 18.07, "EU"),
    _c("Gothenburg", "SE", 57.71, 11.97, "EU"),
    _c("Copenhagen", "DK", 55.68, 12.57, "EU"),
    _c("Helsinki", "FI", 60.17, 24.94, "EU"),
    _c("Reykjavik", "IS", 64.15, -21.94, "EU"),
    _c("Stavanger", "NO", 58.97, 5.73, "EU"),
    _c("Bergen", "NO", 60.39, 5.32, "EU"),
    _c("Warsaw", "PL", 52.23, 21.01, "EU"),
    _c("Krakow", "PL", 50.06, 19.94, "EU"),
    _c("Prague", "CZ", 50.08, 14.44, "EU"),
    _c("Budapest", "HU", 47.50, 19.04, "EU"),
    _c("Bucharest", "RO", 44.43, 26.10, "EU"),
    _c("Sofia", "BG", 42.70, 23.32, "EU"),
    _c("Athens", "GR", 37.98, 23.73, "EU"),
    _c("Thessaloniki", "GR", 40.64, 22.94, "EU"),
    _c("Belgrade", "RS", 44.79, 20.45, "EU"),
    _c("Zagreb", "HR", 45.81, 15.98, "EU"),
    _c("Ljubljana", "SI", 46.06, 14.51, "EU"),
    _c("Bratislava", "SK", 48.15, 17.11, "EU"),
    _c("Vilnius", "LT", 54.69, 25.28, "EU"),
    _c("Riga", "LV", 56.95, 24.11, "EU"),
    _c("Tallinn", "EE", 59.44, 24.75, "EU"),
    _c("Kyiv", "UA", 50.45, 30.52, "EU"),
    _c("Chisinau", "MD", 47.01, 28.86, "EU"),
    _c("Istanbul", "TR", 41.01, 28.98, "EU"),
    _c("Ankara", "TR", 39.93, 32.86, "EU"),
    _c("Moscow", "RU", 55.76, 37.62, "EU"),
    _c("Saint Petersburg", "RU", 59.93, 30.34, "EU"),
    _c("Minsk", "BY", 53.90, 27.57, "EU"),
    _c("Luxembourg", "LU", 49.61, 6.13, "EU"),
    _c("Marseille", "FR", 43.30, 5.37, "EU"),
    _c("Lyon", "FR", 45.76, 4.84, "EU"),
    _c("Toulouse", "FR", 43.60, 1.44, "EU"),
    _c("Nice", "FR", 43.70, 7.27, "EU"),
    _c("Bordeaux", "FR", 44.84, -0.58, "EU"),
    _c("Rotterdam", "NL", 51.92, 4.48, "EU"),
    _c("Antwerp", "BE", 51.22, 4.40, "EU"),
    _c("Gdansk", "PL", 54.35, 18.65, "EU"),
    _c("Seville", "ES", 37.39, -5.98, "EU"),
    _c("Palma", "ES", 39.57, 2.65, "EU"),
    _c("Malmo", "SE", 55.60, 13.00, "EU"),
]

# --------------------------------------------------------------------------
# North America (50)
# --------------------------------------------------------------------------
_NORTH_AMERICA: List[City] = [
    _c("New York", "US", 40.71, -74.01, "NA"),
    _c("Los Angeles", "US", 34.05, -118.24, "NA"),
    _c("Chicago", "US", 41.88, -87.63, "NA"),
    _c("Houston", "US", 29.76, -95.37, "NA"),
    _c("Phoenix", "US", 33.45, -112.07, "NA"),
    _c("Philadelphia", "US", 39.95, -75.17, "NA"),
    _c("San Antonio", "US", 29.42, -98.49, "NA"),
    _c("San Diego", "US", 32.72, -117.16, "NA"),
    _c("Dallas", "US", 32.78, -96.80, "NA"),
    _c("San Jose", "US", 37.34, -121.89, "NA"),
    _c("San Francisco", "US", 37.77, -122.42, "NA"),
    _c("Seattle", "US", 47.61, -122.33, "NA"),
    _c("Denver", "US", 39.74, -104.99, "NA"),
    _c("Boston", "US", 42.36, -71.06, "NA"),
    _c("Miami", "US", 25.76, -80.19, "NA"),
    _c("Atlanta", "US", 33.75, -84.39, "NA"),
    _c("Washington", "US", 38.91, -77.04, "NA"),
    _c("Detroit", "US", 42.33, -83.05, "NA"),
    _c("Minneapolis", "US", 44.98, -93.27, "NA"),
    _c("Portland", "US", 45.52, -122.68, "NA"),
    _c("Las Vegas", "US", 36.17, -115.14, "NA"),
    _c("Salt Lake City", "US", 40.76, -111.89, "NA"),
    _c("Kansas City", "US", 39.10, -94.58, "NA"),
    _c("Saint Louis", "US", 38.63, -90.20, "NA"),
    _c("Charlotte", "US", 35.23, -80.84, "NA"),
    _c("Columbus", "US", 39.96, -83.00, "NA"),
    _c("Indianapolis", "US", 39.77, -86.16, "NA"),
    _c("Nashville", "US", 36.16, -86.78, "NA"),
    _c("Austin", "US", 30.27, -97.74, "NA"),
    _c("Raleigh", "US", 35.78, -78.64, "NA"),
    _c("Tampa", "US", 27.95, -82.46, "NA"),
    _c("New Orleans", "US", 29.95, -90.07, "NA"),
    _c("Toronto", "CA", 43.65, -79.38, "NA"),
    _c("Montreal", "CA", 45.50, -73.57, "NA"),
    _c("Vancouver", "CA", 49.28, -123.12, "NA"),
    _c("Ottawa", "CA", 45.42, -75.70, "NA"),
    _c("Calgary", "CA", 51.05, -114.07, "NA"),
    _c("Edmonton", "CA", 53.55, -113.49, "NA"),
    _c("Winnipeg", "CA", 49.90, -97.14, "NA"),
    _c("Quebec City", "CA", 46.81, -71.21, "NA"),
    _c("Halifax", "CA", 44.65, -63.58, "NA"),
    _c("Mexico City", "MX", 19.43, -99.13, "NA"),
    _c("Guadalajara", "MX", 20.67, -103.35, "NA"),
    _c("Monterrey", "MX", 25.69, -100.32, "NA"),
    _c("Cancun", "MX", 21.16, -86.85, "NA"),
    _c("Panama City", "PA", 8.98, -79.52, "NA"),
    _c("San Juan", "PR", 18.47, -66.11, "NA"),
    _c("Havana", "CU", 23.11, -82.37, "NA"),
    _c("Guatemala City", "GT", 14.63, -90.51, "NA"),
    _c("San Jose CR", "CR", 9.93, -84.08, "NA"),
]

# --------------------------------------------------------------------------
# Asia & Middle East (45)
# --------------------------------------------------------------------------
_ASIA: List[City] = [
    _c("Tokyo", "JP", 35.68, 139.69, "AS"),
    _c("Osaka", "JP", 34.69, 135.50, "AS"),
    _c("Nagoya", "JP", 35.18, 136.91, "AS"),
    _c("Fukuoka", "JP", 33.59, 130.40, "AS"),
    _c("Sapporo", "JP", 43.06, 141.35, "AS"),
    _c("Seoul", "KR", 37.57, 126.98, "AS"),
    _c("Busan", "KR", 35.18, 129.08, "AS"),
    _c("Beijing", "CN", 39.90, 116.41, "AS"),
    _c("Shanghai", "CN", 31.23, 121.47, "AS"),
    _c("Shenzhen", "CN", 22.54, 114.06, "AS"),
    _c("Guangzhou", "CN", 23.13, 113.26, "AS"),
    _c("Chengdu", "CN", 30.57, 104.07, "AS"),
    _c("Hong Kong", "HK", 22.32, 114.17, "AS"),
    _c("Taipei", "TW", 25.03, 121.57, "AS"),
    _c("Singapore", "SG", 1.35, 103.82, "AS"),
    _c("Kuala Lumpur", "MY", 3.14, 101.69, "AS"),
    _c("Bangkok", "TH", 13.76, 100.50, "AS"),
    _c("Jakarta", "ID", -6.21, 106.85, "AS"),
    _c("Manila", "PH", 14.60, 120.98, "AS"),
    _c("Ho Chi Minh City", "VN", 10.82, 106.63, "AS"),
    _c("Hanoi", "VN", 21.03, 105.85, "AS"),
    _c("Mumbai", "IN", 19.08, 72.88, "AS"),
    _c("Delhi", "IN", 28.70, 77.10, "AS"),
    _c("Bangalore", "IN", 12.97, 77.59, "AS"),
    _c("Chennai", "IN", 13.08, 80.27, "AS"),
    _c("Hyderabad", "IN", 17.39, 78.49, "AS"),
    _c("Kolkata", "IN", 22.57, 88.36, "AS"),
    _c("Karachi", "PK", 24.86, 67.01, "AS"),
    _c("Lahore", "PK", 31.55, 74.34, "AS"),
    _c("Islamabad", "PK", 33.68, 73.05, "AS"),
    _c("Dhaka", "BD", 23.81, 90.41, "AS"),
    _c("Colombo", "LK", 6.93, 79.85, "AS"),
    _c("Kathmandu", "NP", 27.72, 85.32, "AS"),
    _c("Dubai", "AE", 25.20, 55.27, "AS"),
    _c("Abu Dhabi", "AE", 24.45, 54.38, "AS"),
    _c("Doha", "QA", 25.29, 51.53, "AS"),
    _c("Riyadh", "SA", 24.71, 46.68, "AS"),
    _c("Jeddah", "SA", 21.49, 39.19, "AS"),
    _c("Tel Aviv", "IL", 32.09, 34.78, "AS"),
    _c("Jerusalem", "IL", 31.77, 35.21, "AS"),
    _c("Amman", "JO", 31.96, 35.95, "AS"),
    _c("Beirut", "LB", 33.89, 35.50, "AS"),
    _c("Baku", "AZ", 40.41, 49.87, "AS"),
    _c("Almaty", "KZ", 43.22, 76.85, "AS"),
    _c("Tashkent", "UZ", 41.30, 69.24, "AS"),
]

# --------------------------------------------------------------------------
# South America (20)
# --------------------------------------------------------------------------
_SOUTH_AMERICA: List[City] = [
    _c("Sao Paulo", "BR", -23.55, -46.63, "SA"),
    _c("Rio de Janeiro", "BR", -22.91, -43.17, "SA"),
    _c("Brasilia", "BR", -15.79, -47.88, "SA"),
    _c("Fortaleza", "BR", -3.73, -38.53, "SA"),
    _c("Salvador", "BR", -12.97, -38.50, "SA"),
    _c("Porto Alegre", "BR", -30.03, -51.22, "SA"),
    _c("Recife", "BR", -8.05, -34.88, "SA"),
    _c("Buenos Aires", "AR", -34.60, -58.38, "SA"),
    _c("Cordoba", "AR", -31.42, -64.18, "SA"),
    _c("Santiago", "CL", -33.45, -70.67, "SA"),
    _c("Valparaiso", "CL", -33.05, -71.62, "SA"),
    _c("Lima", "PE", -12.05, -77.04, "SA"),
    _c("Bogota", "CO", 4.71, -74.07, "SA"),
    _c("Medellin", "CO", 6.25, -75.56, "SA"),
    _c("Quito", "EC", -0.18, -78.47, "SA"),
    _c("Guayaquil", "EC", -2.17, -79.92, "SA"),
    _c("Caracas", "VE", 10.48, -66.90, "SA"),
    _c("Montevideo", "UY", -34.90, -56.16, "SA"),
    _c("Asuncion", "PY", -25.26, -57.58, "SA"),
    _c("La Paz", "BO", -16.49, -68.12, "SA"),
]

# --------------------------------------------------------------------------
# Africa (20)
# --------------------------------------------------------------------------
_AFRICA: List[City] = [
    _c("Cairo", "EG", 30.04, 31.24, "AF"),
    _c("Alexandria", "EG", 31.20, 29.92, "AF"),
    _c("Lagos", "NG", 6.52, 3.38, "AF"),
    _c("Abuja", "NG", 9.06, 7.40, "AF"),
    _c("Accra", "GH", 5.60, -0.19, "AF"),
    _c("Nairobi", "KE", -1.29, 36.82, "AF"),
    _c("Addis Ababa", "ET", 9.01, 38.75, "AF"),
    _c("Johannesburg", "ZA", -26.20, 28.05, "AF"),
    _c("Cape Town", "ZA", -33.92, 18.42, "AF"),
    _c("Durban", "ZA", -29.86, 31.03, "AF"),
    _c("Casablanca", "MA", 33.57, -7.59, "AF"),
    _c("Rabat", "MA", 34.02, -6.84, "AF"),
    _c("Algiers", "DZ", 36.75, 3.06, "AF"),
    _c("Tunis", "TN", 36.81, 10.18, "AF"),
    _c("Dakar", "SN", 14.72, -17.47, "AF"),
    _c("Kampala", "UG", 0.35, 32.58, "AF"),
    _c("Dar es Salaam", "TZ", -6.79, 39.21, "AF"),
    _c("Kinshasa", "CD", -4.44, 15.27, "AF"),
    _c("Luanda", "AO", -8.84, 13.23, "AF"),
    _c("Harare", "ZW", -17.83, 31.05, "AF"),
]

# --------------------------------------------------------------------------
# Oceania & Pacific (15)
# --------------------------------------------------------------------------
_OCEANIA: List[City] = [
    _c("Sydney", "AU", -33.87, 151.21, "OC"),
    _c("Melbourne", "AU", -37.81, 144.96, "OC"),
    _c("Brisbane", "AU", -27.47, 153.03, "OC"),
    _c("Perth", "AU", -31.95, 115.86, "OC"),
    _c("Adelaide", "AU", -34.93, 138.60, "OC"),
    _c("Canberra", "AU", -35.28, 149.13, "OC"),
    _c("Hobart", "AU", -42.88, 147.33, "OC"),
    _c("Darwin", "AU", -12.46, 130.84, "OC"),
    _c("Auckland", "NZ", -36.85, 174.76, "OC"),
    _c("Wellington", "NZ", -41.29, 174.78, "OC"),
    _c("Christchurch", "NZ", -43.53, 172.64, "OC"),
    _c("Honolulu", "US", 21.31, -157.86, "OC"),
    _c("Suva", "FJ", -18.14, 178.44, "OC"),
    _c("Port Moresby", "PG", -9.44, 147.18, "OC"),
    _c("Noumea", "NC", -22.26, 166.45, "OC"),
]

ALL_CITIES: List[City] = (
    _EUROPE + _NORTH_AMERICA + _ASIA + _SOUTH_AMERICA + _AFRICA + _OCEANIA
)

_BY_NAME: Dict[str, City] = {city.name: city for city in ALL_CITIES}

if len(_BY_NAME) != len(ALL_CITIES):  # pragma: no cover - dataset sanity
    raise RuntimeError("duplicate city names in dataset")


def city_by_name(name: str) -> City:
    """Look up a city by its exact name; raises ``KeyError`` if unknown."""
    return _BY_NAME[name]


def cities_in_region(region: str) -> List[City]:
    """All cities with the given region tag (EU, NA, SA, AS, AF, OC)."""
    return [city for city in ALL_CITIES if city.region == region]
