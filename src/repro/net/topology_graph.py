"""Graph topology latency backend: real internet graphs as base tables.

Ingests an internet topology graph -- GML (the format Internet Topology
Zoo and the monerosim/Shadow pipeline use) or a plain edge list -- and
derives the inter-region RTT table of a
:class:`~repro.net.hierarchy.HierarchicalLatencyModel` from **shortest
paths over the graph's nodes** (the "region gateways"): traffic between
two regions follows the cheapest multi-hop route through the backbone,
not the great circle.

Edge cost (RTT milliseconds) comes from, in order of preference:

* an explicit ``latency`` / ``delay`` / ``rtt`` / ``weight`` edge
  attribute (interpreted as ms);
* the haversine distance between the endpoints' coordinates times
  ``MS_PER_KM`` (propagation only -- the ``LOCAL_RTT_MS`` floor is added
  once per *path*, matching the distance model's envelope, not once per
  hop).

The parsers are deliberately small: GML's ``key value`` / nested-block
grammar and whitespace edge lists cover the real datasets without
pulling in a graph library (the container has none to add).
"""

from __future__ import annotations

import random
import re
from heapq import heappop, heappush
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.cities import City
from repro.net.geo import haversine_km
from repro.net.hierarchy import HierarchicalLatencyModel
from repro.net.latency_model import LOCAL_RTT_MS, MS_PER_KM

#: Bundled example graph (an abstracted intercontinental backbone) so
#: ``topo-N`` deployments work out of the box.
EXAMPLE_GRAPH = Path(__file__).with_name("data") / "example_topology.gml"

#: Edge attributes accepted as RTT milliseconds, in preference order.
_EDGE_LATENCY_KEYS = ("latency", "delay", "rtt", "weight")

#: Node attributes accepted as coordinates.
_LAT_KEYS = ("lat", "latitude")
_LON_KEYS = ("lon", "longitude")
_LABEL_KEYS = ("label", "name")


class TopologyGraph:
    """A parsed topology: labelled nodes and undirected weighted edges."""

    def __init__(
        self,
        labels: Sequence[str],
        coords: Sequence[Optional[Tuple[float, float]]],
        edges: Sequence[Tuple[int, int, float]],
    ):
        self.labels = list(labels)
        self.coords = list(coords)
        #: ``(u, v, rtt_ms)`` with node indices into ``labels``.
        self.edges = list(edges)

    @property
    def node_count(self) -> int:
        return len(self.labels)

    def adjacency(self) -> List[List[Tuple[int, float]]]:
        adj: List[List[Tuple[int, float]]] = [[] for _ in self.labels]
        for u, v, w in self.edges:
            adj[u].append((v, w))
            adj[v].append((u, w))
        return adj


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
_GML_TOKEN = re.compile(r'"[^"]*"|\[|\]|[^\s\[\]]+')


def _parse_gml(text: str) -> TopologyGraph:
    """Minimal GML reader: ``node``/``edge`` blocks with scalar attrs.

    Handles nested blocks (skipped generically), quoted strings and
    numeric literals; enough for Topology Zoo files and the Shadow-style
    graphs the monerosim pipeline feeds.
    """
    tokens = _GML_TOKEN.findall(text)
    pos = 0

    def parse_block() -> Dict[str, object]:
        nonlocal pos
        block: Dict[str, object] = {}
        while pos < len(tokens):
            token = tokens[pos]
            if token == "]":
                pos += 1
                return block
            key = token.lower()
            pos += 1
            if pos >= len(tokens):
                break
            value = tokens[pos]
            if value == "[":
                pos += 1
                inner = parse_block()
                existing = block.setdefault(key, [])
                if isinstance(existing, list):
                    existing.append(inner)
            else:
                pos += 1
                if value.startswith('"'):
                    block[key] = value.strip('"')
                else:
                    try:
                        block[key] = float(value) if "." in value or "e" in value.lower() else int(value)
                    except ValueError:
                        block[key] = value
        return block

    top = parse_block()
    graph = top.get("graph")
    if isinstance(graph, list) and graph:
        graph = graph[0]
    if not isinstance(graph, dict):
        raise ValueError("GML input has no 'graph' block")

    raw_nodes = graph.get("node", [])
    raw_edges = graph.get("edge", [])
    if not isinstance(raw_nodes, list) or not raw_nodes:
        raise ValueError("GML graph has no nodes")
    index_of: Dict[object, int] = {}
    labels: List[str] = []
    coords: List[Optional[Tuple[float, float]]] = []
    for node in raw_nodes:
        node_id = node.get("id", len(labels))
        index_of[node_id] = len(labels)
        label = None
        for key in _LABEL_KEYS:
            if key in node:
                label = str(node[key])
                break
        labels.append(label if label is not None else f"node{node_id}")
        lat = next((node[k] for k in _LAT_KEYS if k in node), None)
        lon = next((node[k] for k in _LON_KEYS if k in node), None)
        if isinstance(lat, (int, float)) and isinstance(lon, (int, float)):
            coords.append((float(lat), float(lon)))
        else:
            coords.append(None)
    edges: List[Tuple[int, int, float]] = []
    for edge in raw_edges if isinstance(raw_edges, list) else []:
        try:
            u = index_of[edge["source"]]
            v = index_of[edge["target"]]
        except KeyError as exc:
            raise ValueError(f"GML edge references unknown node: {exc}")
        edges.append((u, v, _edge_ms(edge, coords[u], coords[v])))
    return TopologyGraph(labels, coords, edges)


def _parse_edge_list(text: str) -> TopologyGraph:
    """``src dst [rtt_ms]`` per line; ``#`` comments; labels are free
    strings (AS numbers, city names) mapped to indices on first sight."""
    index_of: Dict[str, int] = {}
    labels: List[str] = []
    edges: List[Tuple[int, int, float]] = []

    def node(label: str) -> int:
        idx = index_of.get(label)
        if idx is None:
            idx = len(labels)
            index_of[label] = idx
            labels.append(label)
        return idx

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"edge line needs 'src dst [rtt_ms]': {raw!r}")
        u = node(parts[0])
        v = node(parts[1])
        if len(parts) >= 3:
            weight = float(parts[2])
        else:
            raise ValueError(
                f"edge {parts[0]}-{parts[1]} has no latency and edge-list "
                "nodes carry no coordinates to derive one"
            )
        edges.append((u, v, weight))
    if not labels:
        raise ValueError("edge-list input has no edges")
    return TopologyGraph(labels, [None] * len(labels), edges)


def _edge_ms(
    attrs: Dict[str, object],
    a: Optional[Tuple[float, float]],
    b: Optional[Tuple[float, float]],
) -> float:
    for key in _EDGE_LATENCY_KEYS:
        value = attrs.get(key)
        if isinstance(value, (int, float)):
            return float(value)
    if a is not None and b is not None:
        return haversine_km(a[0], a[1], b[0], b[1]) * MS_PER_KM
    raise ValueError(
        "edge has no latency attribute and its endpoints have no "
        "coordinates to derive one"
    )


def load_graph(path) -> TopologyGraph:
    """Load a topology graph from ``path`` (GML or edge list).

    Format is chosen by extension (``.gml``) with a content sniff
    fallback (a leading ``graph [`` block means GML).
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".gml" or re.match(r"\s*(#[^\n]*\n\s*)*graph\s*\[", text):
        return _parse_gml(text)
    return _parse_edge_list(text)


# ----------------------------------------------------------------------
# Shortest paths -> inter-region base table
# ----------------------------------------------------------------------
def shortest_path_ms(graph: TopologyGraph) -> np.ndarray:
    """All-pairs shortest-path RTT (ms) over the graph's gateways.

    Dijkstra from every node (r is small -- tens to a few hundred
    gateways -- so r * E log r is instant).  The returned table adds the
    ``LOCAL_RTT_MS`` floor once per distinct pair, mirroring the
    distance model's ``LOCAL_RTT_MS + km * MS_PER_KM`` envelope, and has
    a zero diagonal.  Raises if the graph is disconnected: a partitioned
    topology cannot serve as a latency substrate.
    """
    r = graph.node_count
    adj = graph.adjacency()
    out = np.zeros((r, r), dtype=float)
    for source in range(r):
        dist = [float("inf")] * r
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heappush(heap, (nd, v))
        unreachable = [i for i, d in enumerate(dist) if d == float("inf")]
        if unreachable:
            raise ValueError(
                f"topology graph is disconnected: {graph.labels[source]!r} "
                f"cannot reach {len(unreachable)} nodes "
                f"(first: {graph.labels[unreachable[0]]!r})"
            )
        row = np.array(dist, dtype=float) + LOCAL_RTT_MS
        row[source] = 0.0
        out[source] = row
    # Undirected edges make Dijkstra symmetric up to float association
    # order; mirror the upper triangle so the table is symmetric by
    # copy, exactly like the dense matrix construction.
    upper = np.triu_indices(r, k=1)
    out[(upper[1], upper[0])] = out[upper]
    return out


# ----------------------------------------------------------------------
# Deployments over a graph
# ----------------------------------------------------------------------
def graph_cities(graph: TopologyGraph) -> List[City]:
    """One synthetic ``City`` per gateway (coords default to 0, 0)."""
    cities = []
    for label, coord in zip(graph.labels, graph.coords):
        lat, lon = coord if coord is not None else (0.0, 0.0)
        cities.append(City(label, "NET", lat, lon, "NET"))
    return cities


def graph_latency_model(
    graph: TopologyGraph,
    regions: Sequence[int],
    offsets_km: Optional[Sequence[float]] = None,
) -> HierarchicalLatencyModel:
    """Hierarchical model whose base table is the graph's shortest paths."""
    gateway_cities = graph_cities(graph)
    cities = [gateway_cities[r] for r in regions]
    return HierarchicalLatencyModel(
        cities,
        offsets_km=offsets_km,
        regions=list(regions),
        base_ms=shortest_path_ms(graph),
    )


def assign_replicas(
    graph: TopologyGraph,
    n: int,
    rng: random.Random,
    jitter_km: float = 0.0,
) -> Tuple[List[int], List[float]]:
    """Deterministic replica placement over the graph's gateways.

    The first ``min(n, r)`` replicas cover a random permutation of the
    gateways (every region is populated before any repeats); the rest
    draw uniformly.  Repeat placements get an intra-region offset in
    ``[0, jitter_km]`` from a generator *derived* from ``rng`` (the
    ``derive_rng`` idiom), so enabling jitter never perturbs the
    placement draw sequence.
    """
    r = graph.node_count
    order = list(range(r))
    rng.shuffle(order)
    regions = [order[i] for i in range(min(n, r))]
    regions += [rng.choice(order) for _ in range(n - len(regions))]
    jitter_rng = random.Random(f"{rng.random()}:topo-jitter")
    offsets: List[float] = []
    seen: set = set()
    for region in regions:
        if region in seen and jitter_km > 0.0:
            offsets.append(jitter_rng.uniform(0.0, jitter_km))
        else:
            offsets.append(0.0)
            seen.add(region)
    return regions, offsets


def topology_deployment(
    n: int,
    rng: Optional[random.Random] = None,
    name: Optional[str] = None,
    path=None,
    jitter_km: float = 0.0,
    check: bool = False,
):
    """A ``Deployment`` of ``n`` replicas over a topology graph.

    Loads ``path`` (the bundled :data:`EXAMPLE_GRAPH` by default),
    derives the inter-region table from shortest paths, places replicas
    with :func:`assign_replicas` and wraps the result in the standard
    ``Deployment`` API.  ``check=True`` runs the scalar/row/symmetry
    consistency twin (there is no dense reference for graph-derived
    tables).
    """
    from repro.net.deployments import Deployment
    from repro.net.hierarchy import verify_self_consistent

    rng = rng or random.Random(0)
    graph = load_graph(path or EXAMPLE_GRAPH)
    regions, offsets = assign_replicas(graph, n, rng, jitter_km=jitter_km)
    model = graph_latency_model(graph, regions, offsets)
    if check:
        verify_self_consistent(model, random.Random(f"{n}:check"))
    return Deployment(
        name=name or f"Topo{n}", cities=model.cities, latency=model
    )
