"""Geographic latency substrate.

The paper's network emulator injects per-link delays taken from a
WonderProxy measurement dataset covering 220 world locations, with
intercontinental round trips between 150 and 250 ms plus a 1 ms local
delay.  We reproduce that envelope from first principles: each location is
a real city with coordinates, and round-trip times follow great-circle
distance through fibre with a routing-inflation factor (see
:mod:`repro.net.latency_model`).
"""

from repro.net.cities import ALL_CITIES, City, city_by_name
from repro.net.deployments import (
    EUROPE21,
    GLOBAL73,
    NA_EU43,
    Deployment,
    deployment_for,
    random_world_deployment,
)
from repro.net.latency_model import LatencyModel
from repro.net.stellar import STELLAR_VALIDATORS, stellar_deployment

__all__ = [
    "ALL_CITIES",
    "City",
    "Deployment",
    "EUROPE21",
    "GLOBAL73",
    "LatencyModel",
    "NA_EU43",
    "STELLAR_VALIDATORS",
    "city_by_name",
    "deployment_for",
    "random_world_deployment",
    "stellar_deployment",
]
