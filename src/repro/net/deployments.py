"""Named replica deployments used by the evaluation.

The paper distributes replicas across predefined city sets: 21 European
cities (Fig. 7, Fig. 11, Fig. 15), 43 cities across Europe and North
America, and 73 cities worldwide (Fig. 9), plus random world-wide
placements for the scoring studies (Figs. 10, 12, 14).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.net.cities import ALL_CITIES, City, city_by_name
from repro.net.latency_model import LatencyModel, _OneWay  # noqa: F401  (re-export)

# 21 European cities (one replica each); includes Nuremberg, the client
# location shown in Fig. 7.
EUROPE21: List[str] = [
    "London",
    "Paris",
    "Berlin",
    "Madrid",
    "Rome",
    "Amsterdam",
    "Brussels",
    "Vienna",
    "Zurich",
    "Frankfurt",
    "Munich",
    "Nuremberg",
    "Milan",
    "Barcelona",
    "Lisbon",
    "Dublin",
    "Oslo",
    "Stockholm",
    "Copenhagen",
    "Helsinki",
    "Warsaw",
]

# 43 cities across Europe and North America.
NA_EU43: List[str] = EUROPE21 + [
    "Prague",
    "Budapest",
    "Athens",
    "New York",
    "Los Angeles",
    "Chicago",
    "Houston",
    "Philadelphia",
    "Dallas",
    "San Francisco",
    "Seattle",
    "Denver",
    "Boston",
    "Miami",
    "Atlanta",
    "Washington",
    "Toronto",
    "Montreal",
    "Vancouver",
    "Mexico City",
    "Minneapolis",
    "Salt Lake City",
]

# 73 cities worldwide.
GLOBAL73: List[str] = NA_EU43 + [
    "Tokyo",
    "Osaka",
    "Seoul",
    "Beijing",
    "Shanghai",
    "Hong Kong",
    "Taipei",
    "Singapore",
    "Kuala Lumpur",
    "Bangkok",
    "Jakarta",
    "Manila",
    "Mumbai",
    "Delhi",
    "Bangalore",
    "Dubai",
    "Tel Aviv",
    "Sao Paulo",
    "Rio de Janeiro",
    "Buenos Aires",
    "Santiago",
    "Lima",
    "Bogota",
    "Cairo",
    "Lagos",
    "Nairobi",
    "Johannesburg",
    "Cape Town",
    "Sydney",
    "Melbourne",
]


@dataclass
class Deployment:
    """A concrete placement of ``n`` replicas in cities.

    Attributes
    ----------
    name:
        Label used in experiment output (e.g. ``Europe21``).
    cities:
        One city per replica; index equals replica id.
    latency:
        The latency model for this placement: a dense
        :class:`LatencyModel` or a
        :class:`~repro.net.hierarchy.HierarchicalLatencyModel`.
    """

    name: str
    cities: List[City]
    latency: LatencyModel

    def __post_init__(self) -> None:
        # The model picks its own provider: eager nested lists for small
        # n (list indexing is the fastest per-message lookup), a lazy
        # row-serving view for large n.  Either way the provider answers
        # scalar calls and ``row(src)`` bit-identically to
        # ``latency.one_way`` (same float ops on the same doubles).
        self.one_way = self.latency.one_way_provider()

    @property
    def n(self) -> int:
        return len(self.cities)

    def one_way(self, a: int, b: int) -> float:
        # Shadowed by the provider installed in __post_init__; kept for
        # type checkers and as documentation of the signature.
        return self.latency.one_way(a, b)


def _build(name: str, city_names: Sequence[str]) -> Deployment:
    cities = [city_by_name(city_name) for city_name in city_names]
    return Deployment(name=name, cities=cities, latency=LatencyModel(cities))


def deployment_for(name: str) -> Deployment:
    """Build one of the paper's named deployments.

    ``name`` is one of ``Europe21``, ``NA-EU43``, ``Global73`` or
    ``Stellar56`` (the latter is delegated to :mod:`repro.net.stellar`).
    """
    if name == "Europe21":
        return _build(name, EUROPE21)
    if name == "NA-EU43":
        return _build(name, NA_EU43)
    if name == "Global73":
        return _build(name, GLOBAL73)
    if name == "Stellar56":
        from repro.net.stellar import stellar_deployment

        return stellar_deployment()
    raise ValueError(f"unknown deployment {name!r}")


def random_world_deployment(
    n: int,
    rng: Optional[random.Random] = None,
    name: Optional[str] = None,
    hierarchical: bool = False,
    jitter_km: float = 0.0,
    check: bool = False,
) -> Deployment:
    """Place ``n`` replicas in cities sampled worldwide (with replacement
    once the pool is exhausted), as in the paper's scoring studies.

    ``hierarchical=True`` swaps the O(n²) dense matrix for the
    region-tiered :class:`~repro.net.hierarchy.HierarchicalLatencyModel`
    over the **same city draw** -- with ``jitter_km=0`` the two are
    bit-identical, so ``world-N`` scenarios replay ``wonderproxy-N``
    traces exactly.  ``jitter_km > 0`` spreads repeat placements up to
    that many route-km from their anchor city, drawing offsets from a
    generator *derived* from ``rng`` (the ``derive_rng`` idiom) so
    enabling jitter never perturbs the placement draws.  ``check=True``
    attaches the verification twin: bit-equality against the dense
    reference when one exists (zero offsets, n small enough), internal
    scalar/row/symmetry consistency otherwise.
    """
    rng = rng or random.Random(0)
    pool = list(ALL_CITIES)
    rng.shuffle(pool)
    if n <= len(pool):
        cities = pool[:n]
    else:
        cities = pool + [rng.choice(ALL_CITIES) for _ in range(n - len(pool))]
    if not hierarchical:
        if jitter_km or check:
            raise ValueError("jitter_km/check require hierarchical=True")
        return Deployment(
            name=name or f"World{n}", cities=cities, latency=LatencyModel(cities)
        )
    from repro.net import hierarchy

    offsets = None
    if jitter_km > 0.0:
        jitter_rng = random.Random(f"{rng.random()}:world-jitter")
        offsets = []
        seen = set()
        for city in cities:
            key = (city.lat, city.lon)
            if key in seen:
                offsets.append(jitter_rng.uniform(0.0, jitter_km))
            else:
                offsets.append(0.0)
                seen.add(key)
    latency = hierarchy.HierarchicalLatencyModel(cities, offsets_km=offsets)
    if check:
        if offsets is None and n <= hierarchy.CHECK_MAX_N:
            hierarchy.verify_against_dense(latency, random.Random(f"{n}:check"))
        else:
            hierarchy.verify_self_consistent(latency, random.Random(f"{n}:check"))
    return Deployment(name=name or f"World{n}", cities=cities, latency=latency)
