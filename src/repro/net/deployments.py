"""Named replica deployments used by the evaluation.

The paper distributes replicas across predefined city sets: 21 European
cities (Fig. 7, Fig. 11, Fig. 15), 43 cities across Europe and North
America, and 73 cities worldwide (Fig. 9), plus random world-wide
placements for the scoring studies (Figs. 10, 12, 14).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.net.cities import ALL_CITIES, City, city_by_name
from repro.net.latency_model import LatencyModel

# 21 European cities (one replica each); includes Nuremberg, the client
# location shown in Fig. 7.
EUROPE21: List[str] = [
    "London",
    "Paris",
    "Berlin",
    "Madrid",
    "Rome",
    "Amsterdam",
    "Brussels",
    "Vienna",
    "Zurich",
    "Frankfurt",
    "Munich",
    "Nuremberg",
    "Milan",
    "Barcelona",
    "Lisbon",
    "Dublin",
    "Oslo",
    "Stockholm",
    "Copenhagen",
    "Helsinki",
    "Warsaw",
]

# 43 cities across Europe and North America.
NA_EU43: List[str] = EUROPE21 + [
    "Prague",
    "Budapest",
    "Athens",
    "New York",
    "Los Angeles",
    "Chicago",
    "Houston",
    "Philadelphia",
    "Dallas",
    "San Francisco",
    "Seattle",
    "Denver",
    "Boston",
    "Miami",
    "Atlanta",
    "Washington",
    "Toronto",
    "Montreal",
    "Vancouver",
    "Mexico City",
    "Minneapolis",
    "Salt Lake City",
]

# 73 cities worldwide.
GLOBAL73: List[str] = NA_EU43 + [
    "Tokyo",
    "Osaka",
    "Seoul",
    "Beijing",
    "Shanghai",
    "Hong Kong",
    "Taipei",
    "Singapore",
    "Kuala Lumpur",
    "Bangkok",
    "Jakarta",
    "Manila",
    "Mumbai",
    "Delhi",
    "Bangalore",
    "Dubai",
    "Tel Aviv",
    "Sao Paulo",
    "Rio de Janeiro",
    "Buenos Aires",
    "Santiago",
    "Lima",
    "Bogota",
    "Cairo",
    "Lagos",
    "Nairobi",
    "Johannesburg",
    "Cape Town",
    "Sydney",
    "Melbourne",
]


class _OneWay:
    """Matrix-backed one-way delay callable.

    A ``__slots__`` class rather than a closure: the callable ends up
    inside every checkpointed object graph (network, fault adversaries),
    and closures do not pickle.  The exposed ``rows`` attribute lets
    batch senders (``Network.multicast``) index the matrix directly
    instead of calling per destination, exactly as before.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: List[List[float]]):
        self.rows = rows

    def __call__(self, a: int, b: int) -> float:
        return self.rows[a][b]


@dataclass
class Deployment:
    """A concrete placement of ``n`` replicas in cities.

    Attributes
    ----------
    name:
        Label used in experiment output (e.g. ``Europe21``).
    cities:
        One city per replica; index equals replica id.
    latency:
        The derived :class:`LatencyModel` for this placement.
    """

    name: str
    cities: List[City]
    latency: LatencyModel

    def __post_init__(self) -> None:
        # Plain nested lists: ``one_way`` sits on the per-message hot path
        # of every simulation, where numpy scalar indexing is ~10x slower.
        # Values are bit-identical to ``latency.one_way`` (same ops on the
        # same doubles).
        rows = self.latency.one_way_rows()
        self._one_way_rows = rows
        self.one_way = _OneWay(rows)

    @property
    def n(self) -> int:
        return len(self.cities)

    def one_way(self, a: int, b: int) -> float:
        # Shadowed by the callable installed in __post_init__; kept for
        # type checkers and as documentation of the signature.
        return self._one_way_rows[a][b]


def _build(name: str, city_names: Sequence[str]) -> Deployment:
    cities = [city_by_name(city_name) for city_name in city_names]
    return Deployment(name=name, cities=cities, latency=LatencyModel(cities))


def deployment_for(name: str) -> Deployment:
    """Build one of the paper's named deployments.

    ``name`` is one of ``Europe21``, ``NA-EU43``, ``Global73`` or
    ``Stellar56`` (the latter is delegated to :mod:`repro.net.stellar`).
    """
    if name == "Europe21":
        return _build(name, EUROPE21)
    if name == "NA-EU43":
        return _build(name, NA_EU43)
    if name == "Global73":
        return _build(name, GLOBAL73)
    if name == "Stellar56":
        from repro.net.stellar import stellar_deployment

        return stellar_deployment()
    raise ValueError(f"unknown deployment {name!r}")


def random_world_deployment(
    n: int, rng: Optional[random.Random] = None, name: Optional[str] = None
) -> Deployment:
    """Place ``n`` replicas in cities sampled worldwide (with replacement
    once the pool is exhausted), as in the paper's scoring studies."""
    rng = rng or random.Random(0)
    pool = list(ALL_CITIES)
    rng.shuffle(pool)
    if n <= len(pool):
        cities = pool[:n]
    else:
        cities = pool + [rng.choice(ALL_CITIES) for _ in range(n - len(pool))]
    return Deployment(
        name=name or f"World{n}", cities=cities, latency=LatencyModel(cities)
    )
