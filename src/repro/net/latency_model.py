"""Distance-based round-trip-time model.

The paper reports that its emulator's intercontinental delays range from
150 to 250 ms, plus the 1 ms actual network delay of the cluster.  We
reproduce that envelope analytically:

``rtt_ms(A, B) = LOCAL_RTT_MS + distance_km(A, B) * MS_PER_KM``

with ``MS_PER_KM = 0.0125``: light in fibre covers ~100 km per millisecond
of RTT on a great-circle path, and real routes are ~25% longer than the
great circle.  Antipodal pairs (~20,000 km) then see ~250 ms and nearby
European pairs 5-40 ms, matching the paper's envelope.

The model is symmetric and deterministic; per-message jitter is applied by
the network layer, not here.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.net.cities import City
from repro.net.geo import EARTH_RADIUS_KM, haversine_km

LOCAL_RTT_MS = 1.0
MS_PER_KM = 0.0125


def _pairwise_rtt_ms(lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """Vectorized RTT matrix, bit-identical to the scalar pair loop.

    Everything is computed in float64 numpy ops that match ``math``'s
    libm results exactly (radians/sin/cos/sqrt verified identical), with
    two deliberate exceptions where numpy's defaults diverge by one ulp
    on some inputs:

    * ``x ** 2`` -- CPython routes ``float ** 2`` through libm ``pow``,
      numpy squares (``x * x``); ``np.float_power`` restores ``pow``.
    * ``asin`` -- numpy's SIMD ``arcsin`` differs from ``math.asin`` in
      the last ulp for some inputs, so the final arc step runs through
      ``math.asin`` over the n*(n-1)/2 upper-triangle values -- still
      milliseconds at n=512, versus seconds for the full scalar loop.

    Only the upper triangle is computed and mirrored, exactly like the
    scalar construction, so the matrix is symmetric by copy, not by
    floating-point luck.
    """
    n = lats.shape[0]
    rtt = np.zeros((n, n), dtype=float)
    if n < 2:
        return rtt
    upper_i, upper_j = np.triu_indices(n, k=1)
    phi = np.radians(lats)
    cos_phi = np.cos(phi)
    dphi = np.radians(lats[upper_j] - lats[upper_i])
    dlam = np.radians(lons[upper_j] - lons[upper_i])
    a = (
        np.float_power(np.sin(dphi / 2.0), 2.0)
        + cos_phi[upper_i] * cos_phi[upper_j] * np.float_power(np.sin(dlam / 2.0), 2.0)
    )
    arg = np.minimum(1.0, np.sqrt(a))
    asin = math.asin
    distance_km = np.fromiter(
        (asin(x) for x in arg.tolist()), dtype=float, count=arg.shape[0]
    ) * (2.0 * EARTH_RADIUS_KM)
    values = LOCAL_RTT_MS + distance_km * MS_PER_KM
    rtt[upper_i, upper_j] = values
    rtt[upper_j, upper_i] = values
    return rtt


class LatencyModel:
    """Round-trip and one-way latencies for a fixed list of locations.

    The model is indexed by replica id (position in ``cities``), matching
    how the consensus engines address replicas.  Latencies are cached in a
    dense matrix at construction.

    Parameters
    ----------
    cities:
        One entry per replica; the same city may appear multiple times
        (co-located replicas see only the 1 ms local RTT).
    """

    def __init__(self, cities: Sequence[City]):
        self.cities = list(cities)
        lats = np.array([city.lat for city in self.cities], dtype=float)
        lons = np.array([city.lon for city in self.cities], dtype=float)
        self._rtt_ms = _pairwise_rtt_ms(lats, lons)

    @staticmethod
    def _pair_rtt_ms(a: City, b: City) -> float:
        """Scalar reference for one pair; the constructor is vectorized
        (see :func:`_pairwise_rtt_ms`) but must stay bit-identical to
        this formula -- the equivalence test compares the two."""
        distance = haversine_km(a.lat, a.lon, b.lat, b.lon)
        return LOCAL_RTT_MS + distance * MS_PER_KM

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cities)

    def rtt(self, a: int, b: int) -> float:
        """Round-trip time between replicas ``a`` and ``b`` in seconds."""
        if a == b:
            return 0.0
        return float(self._rtt_ms[a, b]) / 1000.0

    def rtt_ms(self, a: int, b: int) -> float:
        """Round-trip time in milliseconds (paper's unit)."""
        if a == b:
            return 0.0
        return float(self._rtt_ms[a, b])

    def one_way(self, a: int, b: int) -> float:
        """One-way delay in seconds (half the RTT)."""
        return self.rtt(a, b) / 2.0

    def matrix_seconds(self) -> np.ndarray:
        """Full symmetric RTT matrix in seconds (zero diagonal)."""
        return self._rtt_ms / 1000.0

    def one_way_rows(self) -> List[List[float]]:
        """One-way delays in seconds as nested Python lists.

        ``rows[a][b]`` equals :meth:`one_way`\\ ``(a, b)`` bit-for-bit
        (same float ops on the same doubles); plain list indexing is what
        the per-message simulation hot path uses instead of numpy scalar
        indexing, which costs an order of magnitude more per lookup.
        """
        # Elementwise IEEE divisions match the scalar (v / 1000.0) / 2.0
        # exactly; tolist() converts without changing any double.
        return ((self._rtt_ms / 1000.0) / 2.0).tolist()

    def matrix_ms(self) -> np.ndarray:
        """Full symmetric RTT matrix in milliseconds (zero diagonal)."""
        return self._rtt_ms.copy()

    def stats_ms(self) -> Dict[str, float]:
        """Envelope statistics over all distinct pairs, in milliseconds."""
        n = len(self.cities)
        upper = self._rtt_ms[np.triu_indices(n, k=1)]
        if upper.size == 0:
            return {"min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "min": float(upper.min()),
            "max": float(upper.max()),
            "mean": float(upper.mean()),
        }

    def closest_index(self, lat: float, lon: float) -> int:
        """Index of the model city closest to (lat, lon).

        Used to map external validator locations (e.g. the Stellar set)
        onto the emulated network, as the paper does.
        """
        best: Tuple[float, int] = (float("inf"), -1)
        for idx, city in enumerate(self.cities):
            dist = haversine_km(lat, lon, city.lat, city.lon)
            if dist < best[0]:
                best = (dist, idx)
        return best[1]
