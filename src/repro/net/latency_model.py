"""Distance-based round-trip-time model.

The paper reports that its emulator's intercontinental delays range from
150 to 250 ms, plus the 1 ms actual network delay of the cluster.  We
reproduce that envelope analytically:

``rtt_ms(A, B) = LOCAL_RTT_MS + distance_km(A, B) * MS_PER_KM``

with ``MS_PER_KM = 0.0125``: light in fibre covers ~100 km per millisecond
of RTT on a great-circle path, and real routes are ~25% longer than the
great circle.  Antipodal pairs (~20,000 km) then see ~250 ms and nearby
European pairs 5-40 ms, matching the paper's envelope.

The model is symmetric and deterministic; per-message jitter is applied by
the network layer, not here.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.net.cities import City
from repro.net.geo import EARTH_RADIUS_KM, haversine_km

LOCAL_RTT_MS = 1.0
MS_PER_KM = 0.0125

#: Largest n for which the dense provider eagerly tolist's the full
#: one-way matrix.  Beyond this the nested Python lists dominate the
#: footprint (~540 MB at n=4096, on top of the 134 MB float64 matrix),
#: so larger models serve rows lazily from the matrix instead.
EAGER_ROWS_MAX_N = 512


class _OneWay:
    """Eager matrix-backed one-way delay provider (small n).

    A ``__slots__`` class rather than a closure: the callable ends up
    inside every checkpointed object graph (network, fault adversaries),
    and closures do not pickle.  The exposed ``rows`` attribute lets
    batch senders (``Network.multicast``) index the matrix directly
    instead of calling per destination, exactly as before.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: List[List[float]]):
        self.rows = rows

    def __call__(self, a: int, b: int) -> float:
        return self.rows[a][b]

    def row(self, src: int) -> List[float]:
        return self.rows[src]

    def delay_floor(self) -> float:
        """Smallest cross-node delay (seconds); the relaxed message
        plane's window cap (``sim.network._drain_fast``) needs a lower
        bound on every delay this provider can ever answer."""
        matrix = np.asarray(self.rows, dtype=float)
        n = matrix.shape[0]
        if n < 2:
            return 0.0
        off = matrix[~np.eye(n, dtype=bool)]
        return float(off.min())


class _LazyOneWay:
    """Lazy matrix-backed one-way delay provider (large n).

    Serves scalar lookups straight off the float64 RTT matrix
    (``.item()`` unboxes the exact double; the scalar division chain
    matches ``LatencyModel.one_way`` bitwise) and synthesizes row lists
    on demand into a bounded LRU, so the n x n nested-list twin of the
    matrix is never materialized.
    """

    __slots__ = ("matrix_ms", "_cache")

    #: Rows kept per provider; a 4096-wide row of boxed floats is
    #: ~130 KB, so the cache tops out around 17 MB.
    CACHE_SIZE = 128

    def __init__(self, matrix_ms: np.ndarray):
        self.matrix_ms = matrix_ms
        self._cache: "OrderedDict[int, List[float]]" = OrderedDict()

    def __call__(self, a: int, b: int) -> float:
        # Same IEEE chain as LatencyModel.one_way: (ms / 1000.0) / 2.0
        # on the exact matrix double (zero diagonal included).
        return (self.matrix_ms.item(a, b) / 1000.0) / 2.0

    def row(self, src: int) -> List[float]:
        cache = self._cache
        row = cache.get(src)
        if row is not None:
            cache.move_to_end(src)
            return row
        # Elementwise IEEE divisions match the scalar chain exactly;
        # tolist() converts without changing any double.
        row = ((self.matrix_ms[src] / 1000.0) / 2.0).tolist()
        cache[src] = row
        if len(cache) > self.CACHE_SIZE:
            cache.popitem(last=False)
        return row

    def delay_floor(self) -> float:
        """Smallest cross-node one-way delay in seconds (see
        ``_OneWay.delay_floor``)."""
        n = self.matrix_ms.shape[0]
        if n < 2:
            return 0.0
        off = self.matrix_ms[~np.eye(n, dtype=bool)]
        return (float(off.min()) / 1000.0) / 2.0

    def __getstate__(self):
        return self.matrix_ms

    def __setstate__(self, state):
        self.matrix_ms = state
        self._cache = OrderedDict()


def _pairwise_rtt_ms(lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """Vectorized RTT matrix, bit-identical to the scalar pair loop.

    Everything is computed in float64 numpy ops that match ``math``'s
    libm results exactly (radians/sin/cos/sqrt verified identical), with
    two deliberate exceptions where numpy's defaults diverge by one ulp
    on some inputs:

    * ``x ** 2`` -- CPython routes ``float ** 2`` through libm ``pow``,
      numpy squares (``x * x``); ``np.float_power`` restores ``pow``.
    * ``asin`` -- numpy's SIMD ``arcsin`` differs from ``math.asin`` in
      the last ulp for some inputs, so the final arc step runs through
      ``math.asin`` over the n*(n-1)/2 upper-triangle values -- still
      milliseconds at n=512, versus seconds for the full scalar loop.

    Only the upper triangle is computed and mirrored, exactly like the
    scalar construction, so the matrix is symmetric by copy, not by
    floating-point luck.
    """
    n = lats.shape[0]
    rtt = np.zeros((n, n), dtype=float)
    if n < 2:
        return rtt
    upper_i, upper_j = np.triu_indices(n, k=1)
    phi = np.radians(lats)
    cos_phi = np.cos(phi)
    dphi = np.radians(lats[upper_j] - lats[upper_i])
    dlam = np.radians(lons[upper_j] - lons[upper_i])
    a = (
        np.float_power(np.sin(dphi / 2.0), 2.0)
        + cos_phi[upper_i] * cos_phi[upper_j] * np.float_power(np.sin(dlam / 2.0), 2.0)
    )
    arg = np.minimum(1.0, np.sqrt(a))
    asin = math.asin
    distance_km = np.fromiter(
        (asin(x) for x in arg.tolist()), dtype=float, count=arg.shape[0]
    ) * (2.0 * EARTH_RADIUS_KM)
    values = LOCAL_RTT_MS + distance_km * MS_PER_KM
    rtt[upper_i, upper_j] = values
    rtt[upper_j, upper_i] = values
    return rtt


class LatencyModel:
    """Round-trip and one-way latencies for a fixed list of locations.

    The model is indexed by replica id (position in ``cities``), matching
    how the consensus engines address replicas.  Latencies are cached in a
    dense matrix at construction.

    Parameters
    ----------
    cities:
        One entry per replica; the same city may appear multiple times
        (co-located replicas see only the 1 ms local RTT).
    """

    def __init__(self, cities: Sequence[City]):
        self.cities = list(cities)
        lats = np.array([city.lat for city in self.cities], dtype=float)
        lons = np.array([city.lon for city in self.cities], dtype=float)
        self._rtt_ms = _pairwise_rtt_ms(lats, lons)

    @staticmethod
    def _pair_rtt_ms(a: City, b: City) -> float:
        """Scalar reference for one pair; the constructor is vectorized
        (see :func:`_pairwise_rtt_ms`) but must stay bit-identical to
        this formula -- the equivalence test compares the two."""
        distance = haversine_km(a.lat, a.lon, b.lat, b.lon)
        return LOCAL_RTT_MS + distance * MS_PER_KM

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cities)

    def rtt(self, a: int, b: int) -> float:
        """Round-trip time between replicas ``a`` and ``b`` in seconds."""
        if a == b:
            return 0.0
        return float(self._rtt_ms[a, b]) / 1000.0

    def rtt_ms(self, a: int, b: int) -> float:
        """Round-trip time in milliseconds (paper's unit)."""
        if a == b:
            return 0.0
        return float(self._rtt_ms[a, b])

    def one_way(self, a: int, b: int) -> float:
        """One-way delay in seconds (half the RTT)."""
        return self.rtt(a, b) / 2.0

    def matrix_seconds(self) -> np.ndarray:
        """Full symmetric RTT matrix in seconds (zero diagonal)."""
        return self._rtt_ms / 1000.0

    def one_way_rows(self) -> List[List[float]]:
        """One-way delays in seconds as nested Python lists.

        ``rows[a][b]`` equals :meth:`one_way`\\ ``(a, b)`` bit-for-bit
        (same float ops on the same doubles); plain list indexing is what
        the per-message simulation hot path uses instead of numpy scalar
        indexing, which costs an order of magnitude more per lookup.
        """
        # Elementwise IEEE divisions match the scalar (v / 1000.0) / 2.0
        # exactly; tolist() converts without changing any double.
        return ((self._rtt_ms / 1000.0) / 2.0).tolist()

    def one_way_provider(self):
        """The network-facing delay provider for this model.

        Small models eagerly tolist the one-way matrix (list indexing is
        the fastest per-message lookup); past ``EAGER_ROWS_MAX_N`` the
        provider serves rows lazily from the float64 matrix so the
        nested-list twin never doubles the footprint.  Both providers
        answer ``(a, b)`` calls and ``row(src)`` bit-identically to
        :meth:`one_way`.
        """
        if len(self.cities) <= EAGER_ROWS_MAX_N:
            return _OneWay(self.one_way_rows())
        return _LazyOneWay(self._rtt_ms)

    def matrix_ms(self) -> np.ndarray:
        """Full symmetric RTT matrix in milliseconds (zero diagonal)."""
        return self._rtt_ms.copy()

    def stats_ms(self) -> Dict[str, float]:
        """Envelope statistics over all distinct pairs, in milliseconds."""
        n = len(self.cities)
        upper = self._rtt_ms[np.triu_indices(n, k=1)]
        if upper.size == 0:
            return {"min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "min": float(upper.min()),
            "max": float(upper.max()),
            "mean": float(upper.mean()),
        }

    def closest_index(self, lat: float, lon: float) -> int:
        """Index of the model city closest to (lat, lon).

        Used to map external validator locations (e.g. the Stellar set)
        onto the emulated network, as the paper does.
        """
        best: Tuple[float, int] = (float("inf"), -1)
        for idx, city in enumerate(self.cities):
            dist = haversine_km(lat, lon, city.lat, city.lon)
            if dist < best[0]:
                best = (dist, idx)
        return best[1]
