"""Distance-based round-trip-time model.

The paper reports that its emulator's intercontinental delays range from
150 to 250 ms, plus the 1 ms actual network delay of the cluster.  We
reproduce that envelope analytically:

``rtt_ms(A, B) = LOCAL_RTT_MS + distance_km(A, B) * MS_PER_KM``

with ``MS_PER_KM = 0.0125``: light in fibre covers ~100 km per millisecond
of RTT on a great-circle path, and real routes are ~25% longer than the
great circle.  Antipodal pairs (~20,000 km) then see ~250 ms and nearby
European pairs 5-40 ms, matching the paper's envelope.

The model is symmetric and deterministic; per-message jitter is applied by
the network layer, not here.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.net.cities import City
from repro.net.geo import haversine_km

LOCAL_RTT_MS = 1.0
MS_PER_KM = 0.0125


class LatencyModel:
    """Round-trip and one-way latencies for a fixed list of locations.

    The model is indexed by replica id (position in ``cities``), matching
    how the consensus engines address replicas.  Latencies are cached in a
    dense matrix at construction.

    Parameters
    ----------
    cities:
        One entry per replica; the same city may appear multiple times
        (co-located replicas see only the 1 ms local RTT).
    """

    def __init__(self, cities: Sequence[City]):
        self.cities = list(cities)
        n = len(self.cities)
        self._rtt_ms = np.zeros((n, n), dtype=float)
        for i in range(n):
            for j in range(i + 1, n):
                rtt = self._pair_rtt_ms(self.cities[i], self.cities[j])
                self._rtt_ms[i, j] = rtt
                self._rtt_ms[j, i] = rtt

    @staticmethod
    def _pair_rtt_ms(a: City, b: City) -> float:
        distance = haversine_km(a.lat, a.lon, b.lat, b.lon)
        return LOCAL_RTT_MS + distance * MS_PER_KM

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cities)

    def rtt(self, a: int, b: int) -> float:
        """Round-trip time between replicas ``a`` and ``b`` in seconds."""
        if a == b:
            return 0.0
        return float(self._rtt_ms[a, b]) / 1000.0

    def rtt_ms(self, a: int, b: int) -> float:
        """Round-trip time in milliseconds (paper's unit)."""
        if a == b:
            return 0.0
        return float(self._rtt_ms[a, b])

    def one_way(self, a: int, b: int) -> float:
        """One-way delay in seconds (half the RTT)."""
        return self.rtt(a, b) / 2.0

    def matrix_seconds(self) -> np.ndarray:
        """Full symmetric RTT matrix in seconds (zero diagonal)."""
        return self._rtt_ms / 1000.0

    def matrix_ms(self) -> np.ndarray:
        """Full symmetric RTT matrix in milliseconds (zero diagonal)."""
        return self._rtt_ms.copy()

    def stats_ms(self) -> Dict[str, float]:
        """Envelope statistics over all distinct pairs, in milliseconds."""
        n = len(self.cities)
        upper = self._rtt_ms[np.triu_indices(n, k=1)]
        if upper.size == 0:
            return {"min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "min": float(upper.min()),
            "max": float(upper.max()),
            "mean": float(upper.mean()),
        }

    def closest_index(self, lat: float, lon: float) -> int:
        """Index of the model city closest to (lat, lon).

        Used to map external validator locations (e.g. the Stellar set)
        onto the emulated network, as the paper does.
        """
        best: Tuple[float, int] = (float("inf"), -1)
        for idx, city in enumerate(self.cities):
            dist = haversine_km(lat, lon, city.lat, city.lon)
            if dist < best[0]:
                best = (dist, idx)
        return best[1]
