"""Hierarchical (region-tiered) latency substrate.

The dense :class:`~repro.net.latency_model.LatencyModel` materializes an
n x n float64 RTT matrix -- ~134 MB at n=4096 before the one-way rows
double it -- which is the memory ceiling ROADMAP item 1 names.  This
module replaces it for large deployments with a two-tier model:

* an **inter-region base table**: an r x r RTT matrix over the distinct
  *anchor* locations (r <= 220 for the wonderproxy city pool, or the
  node set of an ingested topology graph), plus
* a **per-replica intra-region offset** in km: replica ``i`` sits
  ``offset_km[i]`` of route away from its region anchor, so

  ``rtt_ms(a, b) = base_ms[region(a), region(b)]
                   + (offset_km[a] + offset_km[b]) * MS_PER_KM``

  with ``base_ms`` replaced by ``LOCAL_RTT_MS`` when the regions match.

Memory is O(n + r^2) instead of O(n^2).  Rows for the network's
multicast path are synthesized on demand and kept in a bounded LRU, so
even an access pattern touching every source stays O(n * cache).

Bit-identity contract (load-bearing; pinned by tests and the
``latency="check"`` deployment twin): with all offsets zero the model is
**bit-identical** to the dense model over the same cities.  Same-region
pairs reduce to ``LOCAL_RTT_MS + 0.0 * MS_PER_KM``, which is exactly the
dense zero-distance value; cross-region pairs serve the *same double*
the dense matrix holds, because :func:`_pairwise_rtt_ms` is elementwise
in its input pair (and bitwise symmetric: ``sin(-x) = -sin(x)`` and IEEE
multiplication commute), so anchor-table entries equal dense-matrix
entries regardless of index order, and ``x + 0.0 == x`` for the
non-negative offset term.  The scalar path and the vectorized row path
apply the same IEEE operations in the same order, so ``one_way(a, b)``
equals ``row(a)[b]`` bitwise -- with or without offsets.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import List, Optional, Sequence

import numpy as np

from repro.net.cities import City
from repro.net.latency_model import (
    LOCAL_RTT_MS,
    MS_PER_KM,
    LatencyModel,
    _pairwise_rtt_ms,
)

#: Rows kept by the per-model LRU; at n=4096 a row of boxed floats is
#: ~100 KB, so the default cache tops out around 13 MB.
ROW_CACHE_SIZE = 128


class LatencyDivergence(AssertionError):
    """A checked latency twin found two backends disagreeing."""


class _HierOneWay:
    """One-way delay provider over a hierarchical model.

    The network-facing twin of ``_OneWay``: scalar calls answer
    ``(src, dst)`` lookups and ``row(src)`` feeds the multicast batch
    paths.  Deliberately exposes **no** ``rows`` attribute -- an eager
    n x n materialization is exactly what this backend exists to avoid.
    A ``__slots__`` class so it pickles into checkpoint graphs.
    """

    __slots__ = ("model",)

    def __init__(self, model: "HierarchicalLatencyModel"):
        self.model = model

    def __call__(self, a: int, b: int) -> float:
        return self.model.one_way(a, b)

    def row(self, src: int) -> List[float]:
        return self.model.row(src)

    def delay_floor(self) -> float:
        return self.model.one_way_floor()


class HierarchicalLatencyModel:
    """Region-tiered latency model, API-compatible with ``LatencyModel``.

    Parameters
    ----------
    cities:
        One entry per replica (the *anchor* city of its region); the
        same city appearing repeatedly is what creates shared regions.
    offsets_km:
        Optional per-replica route distance from the anchor; ``None``
        means every replica sits exactly at its anchor (the bit-identical
        -to-dense configuration).
    regions / base_ms:
        Direct region assignment and inter-region RTT table (ms, zero
        diagonal), for backends that do not derive the table from city
        coordinates (the topology-graph backend).  When omitted, regions
        are keyed by distinct ``(lat, lon)`` in first-appearance order
        and the table is the haversine formula over the anchors.
    """

    def __init__(
        self,
        cities: Sequence[City],
        offsets_km: Optional[Sequence[float]] = None,
        regions: Optional[Sequence[int]] = None,
        base_ms: Optional[np.ndarray] = None,
    ):
        self.cities = list(cities)
        n = len(self.cities)
        if (regions is None) != (base_ms is None):
            raise ValueError("regions and base_ms must be given together")
        if regions is None:
            anchor_index: dict = {}
            region_of: List[int] = []
            anchors: List[City] = []
            for city in self.cities:
                key = (city.lat, city.lon)
                idx = anchor_index.get(key)
                if idx is None:
                    idx = len(anchors)
                    anchor_index[key] = idx
                    anchors.append(city)
                region_of.append(idx)
            lats = np.array([c.lat for c in anchors], dtype=float)
            lons = np.array([c.lon for c in anchors], dtype=float)
            base_ms = _pairwise_rtt_ms(lats, lons)
            regions = region_of
            self.anchors = anchors
        else:
            base_ms = np.asarray(base_ms, dtype=float)
            if base_ms.ndim != 2 or base_ms.shape[0] != base_ms.shape[1]:
                raise ValueError(f"base_ms must be square, got {base_ms.shape}")
            if any(r < 0 or r >= base_ms.shape[0] for r in regions):
                raise ValueError("region index out of range for base_ms")
            self.anchors = []
        if len(regions) != n:
            raise ValueError(f"{len(regions)} regions for {n} replicas")
        self._base_ms = base_ms
        #: Python-list twin of the base table: the scalar hot path reads
        #: plain floats (same doubles; tolist converts exactly).
        self._base_rows = base_ms.tolist()
        self._region = list(regions)
        self._region_arr = np.array(regions, dtype=np.intp)
        if offsets_km is None:
            offsets = [0.0] * n
        else:
            offsets = [float(v) for v in offsets_km]
            if len(offsets) != n:
                raise ValueError(f"{len(offsets)} offsets for {n} replicas")
            if any(v < 0.0 for v in offsets):
                raise ValueError("offsets_km must be non-negative")
        self._off = offsets
        self._off_arr = np.array(offsets, dtype=float)
        self._row_cache: "OrderedDict[int, List[float]]" = OrderedDict()

    @property
    def region_count(self) -> int:
        return self._base_ms.shape[0]

    def regions(self) -> List[int]:
        """Per-replica region indices (a copy)."""
        return list(self._region)

    def offsets_km(self) -> List[float]:
        """Per-replica intra-region offsets in km (a copy)."""
        return list(self._off)

    # ------------------------------------------------------------------
    # Lookup (scalar path)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cities)

    def rtt_ms(self, a: int, b: int) -> float:
        """Round-trip time in milliseconds (paper's unit)."""
        if a == b:
            return 0.0
        ra = self._region[a]
        rb = self._region[b]
        base = LOCAL_RTT_MS if ra == rb else self._base_rows[ra][rb]
        off = self._off
        # Same IEEE op order as the vectorized row: offsets summed first,
        # scaled, then added to the base term.
        return base + (off[a] + off[b]) * MS_PER_KM

    def rtt(self, a: int, b: int) -> float:
        """Round-trip time in seconds."""
        if a == b:
            return 0.0
        return self.rtt_ms(a, b) / 1000.0

    def one_way(self, a: int, b: int) -> float:
        """One-way delay in seconds (half the RTT), bit-identical to the
        dense model's ``(rtt_ms / 1000.0) / 2.0`` for zero offsets."""
        if a == b:
            return 0.0
        return (self.rtt_ms(a, b) / 1000.0) / 2.0

    # ------------------------------------------------------------------
    # Row path (vectorized, LRU-cached)
    # ------------------------------------------------------------------
    def _row_ms(self, src: int) -> np.ndarray:
        """RTT ms from ``src`` to every replica (zero at ``src``)."""
        ra = self._region[src]
        region_arr = self._region_arr
        # Gather the base column for src's region, patch same-region
        # pairs to the local RTT, add the offset term elementwise -- the
        # exact scalar expression, one IEEE op at a time.
        row_ms = self._base_ms[ra][region_arr]
        row_ms = np.where(region_arr == ra, LOCAL_RTT_MS, row_ms)
        row_ms = row_ms + (self._off[src] + self._off_arr) * MS_PER_KM
        row_ms[src] = 0.0
        return row_ms

    def _row_seconds(self, src: int) -> List[float]:
        seconds = (self._row_ms(src) / 1000.0) / 2.0
        row = seconds.tolist()
        row[src] = 0.0
        return row

    def row(self, src: int) -> List[float]:
        """One-way delays (seconds) from ``src`` to every replica.

        ``row(src)[dst]`` equals :meth:`one_way`\\ ``(src, dst)`` bitwise.
        Rows are built on demand and kept in a bounded LRU so the
        multicast send path pays one vectorized synthesis per miss, not
        one scalar call per destination.
        """
        cache = self._row_cache
        row = cache.get(src)
        if row is not None:
            cache.move_to_end(src)
            return row
        row = self._row_seconds(src)
        cache[src] = row
        if len(cache) > ROW_CACHE_SIZE:
            cache.popitem(last=False)
        return row

    def one_way_floor(self) -> float:
        """Lower bound (seconds) on the one-way delay of every distinct
        pair, without materializing any O(n^2) view.

        Distinct pairs pay at least the base term (``LOCAL_RTT_MS`` in
        region, the base table across regions) and offsets only add, so
        the minimum over the region table bounds every pair from below.
        Conservative is fine here -- the consumer (the relaxed message
        plane's drain window) only needs *a* positive lower bound.
        """
        base = self._base_ms
        regions = base.shape[0]
        floor_ms = LOCAL_RTT_MS
        if regions > 1:
            off = base[~np.eye(regions, dtype=bool)]
            floor_ms = min(floor_ms, float(off.min()))
        if len(self.cities) < 2 or floor_ms <= 0.0:
            return 0.0
        return (floor_ms / 1000.0) / 2.0

    def one_way_provider(self) -> _HierOneWay:
        """The network-facing delay provider for this model."""
        return _HierOneWay(self)

    # ------------------------------------------------------------------
    # Dense views (small-n analysis only -- these are O(n^2) on purpose)
    # ------------------------------------------------------------------
    def matrix_ms(self) -> np.ndarray:
        """Full RTT matrix in ms.  O(n^2) memory: for figures, search
        and the check twin at small n, never the simulation hot path."""
        n = len(self.cities)
        out = np.empty((n, n), dtype=float)
        for a in range(n):
            out[a] = self._row_ms(a)
        return out

    def matrix_seconds(self) -> np.ndarray:
        """Full RTT matrix in seconds (zero diagonal).  O(n^2); see
        :meth:`matrix_ms`."""
        n = len(self.cities)
        out = np.empty((n, n), dtype=float)
        for a in range(n):
            out[a] = self._row_ms(a) / 1000.0
        return out

    def stats_ms(self) -> dict:
        """Envelope statistics over all distinct pairs, in ms.

        Streams one synthesized row at a time (O(n) memory), so it works
        at n=4096 without materializing the matrix.
        """
        n = len(self.cities)
        if n < 2:
            return {"min": 0.0, "max": 0.0, "mean": 0.0}
        lo = float("inf")
        hi = 0.0
        total = 0.0
        count = 0
        for a in range(n - 1):
            row_ms = self._row_ms(a)[a + 1 :]
            lo = min(lo, float(row_ms.min()))
            hi = max(hi, float(row_ms.max()))
            total += float(row_ms.sum())
            count += row_ms.shape[0]
        return {"min": lo, "max": hi, "mean": total / count}


# ----------------------------------------------------------------------
# Checked twins
# ----------------------------------------------------------------------
#: Largest n the dense cross-check twin will materialize a reference for.
CHECK_MAX_N = 512

#: Sampled pairs per check (on top of a handful of full rows).
CHECK_SAMPLES = 4096


def verify_against_dense(
    model: HierarchicalLatencyModel,
    rng: Optional[random.Random] = None,
    samples: int = CHECK_SAMPLES,
) -> int:
    """Cross-check the hierarchical model against the dense reference.

    Builds a dense :class:`LatencyModel` over the same cities (only
    valid for zero offsets -- the configuration where both models are
    defined on the same inputs) and asserts **bit equality** on a few
    full rows plus ``samples`` uniformly drawn pairs, through both the
    scalar and the row path.  Returns the number of pairs compared;
    raises :class:`LatencyDivergence` naming the first differing pair.
    """
    n = len(model.cities)
    if n > CHECK_MAX_N:
        raise ValueError(
            f"dense check twin caps at n={CHECK_MAX_N} (got {n}): the "
            "reference is the O(n^2) matrix being avoided"
        )
    if any(v != 0.0 for v in model.offsets_km()):
        raise ValueError(
            "dense check twin requires zero offsets; jittered replicas "
            "have no dense-model coordinates (use verify_self_consistent)"
        )
    rng = rng or random.Random(0)
    dense = LatencyModel(model.cities)
    compared = 0
    # A handful of full rows: every dst for a few srcs, via the row path.
    row_srcs = sorted({0, n - 1, *(rng.randrange(n) for _ in range(6))})
    for src in row_srcs:
        row = model.row(src)
        for dst in range(n):
            expect = dense.one_way(src, dst)
            if row[dst] != expect:
                raise LatencyDivergence(
                    f"row({src})[{dst}] = {row[dst]!r} != dense {expect!r}"
                )
        compared += n
    # Sampled pairs through the scalar path.
    for _ in range(samples):
        a = rng.randrange(n)
        b = rng.randrange(n)
        got = model.one_way(a, b)
        expect = dense.one_way(a, b)
        if got != expect:
            raise LatencyDivergence(
                f"one_way({a}, {b}) = {got!r} != dense {expect!r}"
            )
        compared += 1
    return compared


def verify_self_consistent(
    model: HierarchicalLatencyModel,
    rng: Optional[random.Random] = None,
    samples: int = CHECK_SAMPLES,
) -> int:
    """Internal consistency check for configurations with no dense
    reference (non-zero offsets, graph-derived base tables): the scalar
    path, the row path and symmetry must agree bitwise on sampled pairs.
    """
    n = len(model.cities)
    rng = rng or random.Random(0)
    compared = 0
    for _ in range(samples):
        a = rng.randrange(n)
        b = rng.randrange(n)
        scalar = model.one_way(a, b)
        via_row = model.row(a)[b]
        if scalar != via_row:
            raise LatencyDivergence(
                f"one_way({a}, {b}) = {scalar!r} != row({a})[{b}] = {via_row!r}"
            )
        mirrored = model.one_way(b, a)
        if scalar != mirrored:
            raise LatencyDivergence(
                f"one_way({a}, {b}) = {scalar!r} != one_way({b}, {a}) = "
                f"{mirrored!r}"
            )
        compared += 1
    return compared
