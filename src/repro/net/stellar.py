"""Simulated Stellar validator network (Stellar56 deployment).

The paper maps the 56 validators of the public Stellar network (as listed
by stellarbeat.io at the time of their experiment) to the closest cities of
its network emulator.  The live validator list is not redistributable, so
we synthesise a 56-validator placement that mirrors the network's published
geographic concentration: heavily clustered in US and European data-centre
regions, with a smaller presence in Asia-Pacific and South America.
"""

from __future__ import annotations

from typing import List

from repro.net.cities import City, city_by_name
from repro.net.deployments import Deployment
from repro.net.latency_model import LatencyModel

# City name -> number of validators placed there.  Totals 56.  The heavy
# US/EU concentration (Ashburn/Virginia-like and Frankfurt-like regions)
# follows Stellar's published validator map.
_VALIDATOR_PLACEMENT = [
    ("Washington", 6),     # US-East data-centre corridor
    ("New York", 4),
    ("Chicago", 3),
    ("San Francisco", 4),
    ("Seattle", 2),
    ("Dallas", 2),
    ("Toronto", 1),
    ("Frankfurt", 6),      # EU data-centre hub
    ("Amsterdam", 4),
    ("London", 4),
    ("Paris", 2),
    ("Dublin", 2),
    ("Helsinki", 1),
    ("Warsaw", 1),
    ("Zurich", 1),
    ("Singapore", 3),
    ("Tokyo", 2),
    ("Hong Kong", 1),
    ("Mumbai", 1),
    ("Sydney", 2),
    ("Sao Paulo", 2),
    ("Buenos Aires", 1),
    ("Johannesburg", 1),
]

STELLAR_VALIDATORS: List[City] = []
for _name, _count in _VALIDATOR_PLACEMENT:
    STELLAR_VALIDATORS.extend([city_by_name(_name)] * _count)

if len(STELLAR_VALIDATORS) != 56:  # pragma: no cover - dataset sanity
    raise RuntimeError(
        f"Stellar validator set has {len(STELLAR_VALIDATORS)} entries, expected 56"
    )


def stellar_deployment() -> Deployment:
    """The 56-validator Stellar network as a :class:`Deployment`."""
    cities = list(STELLAR_VALIDATORS)
    return Deployment(name="Stellar56", cities=cities, latency=LatencyModel(cities))
