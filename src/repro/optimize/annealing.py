"""Simulated annealing (§4.2.4, §7.7).

OptiLog's ConfigSensor searches large configuration spaces with simulated
annealing [Kirkpatrick et al. 1983].  The search here is generic: callers
supply a ``score`` function (lower is better), a ``mutate`` function that
proposes a neighbouring configuration, and a schedule.  The search ends
when the iteration budget (the paper's *search timer*) expires or the
temperature cools below the convergence threshold, whichever is first.

Determinism: all randomness flows through the caller-provided generator;
given the same seed, initial state and budget, the search returns the same
configuration.  Experiments that sweep "search time" (Fig. 12) map
wall-clock budgets to iteration budgets through a calibrated
iterations-per-second constant.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Generic, Optional, TypeVar

State = TypeVar("State")
Mutation = Any

# Calibration constant mapping the paper's wall-clock search times onto
# iteration budgets: scoring a ~200-node tree takes on the order of tens of
# microseconds, so a 1-second search performs roughly this many mutations.
ITERATIONS_PER_SECOND = 20_000


@dataclass
class AnnealingSchedule:
    """Cooling schedule and stopping rule.

    Attributes
    ----------
    initial_temperature:
        Starting temperature, in score units.
    cooling:
        Multiplicative cooling factor applied every iteration.
    min_temperature:
        Convergence threshold; the search stops when cooled below it.
    iterations:
        Hard budget (the *search timer*).
    """

    initial_temperature: float = 1.0
    cooling: float = 0.999
    min_temperature: float = 1e-4
    iterations: int = 10_000

    @classmethod
    def for_search_time(cls, seconds: float, **overrides) -> "AnnealingSchedule":
        """Schedule whose budget models a wall-clock search time."""
        params = {"iterations": max(1, int(seconds * ITERATIONS_PER_SECOND))}
        params.update(overrides)
        return cls(**params)


@dataclass
class AnnealingResult(Generic[State]):
    """Outcome of one annealing run."""

    best_state: State
    best_score: float
    initial_score: float
    iterations_used: int
    accepted: int
    converged: bool

    @property
    def improvement(self) -> float:
        """Fractional improvement over the initial configuration."""
        if self.initial_score == 0:
            return 0.0
        return (self.initial_score - self.best_score) / self.initial_score


def anneal(
    initial: State,
    score: Callable[[State], float],
    mutate: Callable[[State, random.Random], State],
    rng: random.Random,
    schedule: Optional[AnnealingSchedule] = None,
) -> AnnealingResult[State]:
    """Minimise ``score`` by simulated annealing from ``initial``.

    ``mutate`` must return a *new* state (states are treated as immutable).
    Infeasible states may be signalled with ``float("inf")`` scores; they
    are never accepted.
    """
    schedule = schedule or AnnealingSchedule()
    current = initial
    current_score = score(current)
    best = current
    best_score = current_score
    initial_score = current_score
    temperature = schedule.initial_temperature
    accepted = 0
    converged = False
    iterations_used = 0

    for iteration in range(schedule.iterations):
        iterations_used = iteration + 1
        candidate = mutate(current, rng)
        candidate_score = score(candidate)
        delta = candidate_score - current_score
        if delta <= 0:
            accept = candidate_score != float("inf")
        elif candidate_score == float("inf") or temperature <= 0:
            accept = False
        else:
            accept = rng.random() < math.exp(-delta / temperature)
        if accept:
            current = candidate
            current_score = candidate_score
            accepted += 1
            if current_score < best_score:
                best = current
                best_score = current_score
        temperature *= schedule.cooling
        if temperature < schedule.min_temperature:
            converged = True
            break

    return AnnealingResult(
        best_state=best,
        best_score=best_score,
        initial_score=initial_score,
        iterations_used=iterations_used,
        accepted=accepted,
        converged=converged,
    )


class IncrementalSearch(Generic[State]):
    """Delta-evaluation protocol for :func:`anneal_incremental`.

    A search engine owns the *current* state as mutable internal data and
    exposes it to the annealer through five hooks.  The contract that
    keeps incremental search bit-identical to :func:`anneal` over the
    equivalent ``score``/``mutate`` pair:

    * :meth:`propose` draws from ``rng`` exactly as the full-path
      ``mutate`` would (same calls, same order) and returns an opaque
      mutation token -- or ``None`` for the full path's "mutation fell
      through, candidate == current" case;
    * :meth:`delta_score` returns the candidate's *absolute* score,
      bit-identical to what the full ``score`` would return on the
      mutated state, updating only the O(b) affected cost entries;
    * exactly one of :meth:`apply` (accepted) or :meth:`revert`
      (rejected) follows every ``delta_score``.  An engine may evaluate
      tentatively-in-place (then ``apply`` just installs cached entries
      and ``revert`` undoes the tentative state) or purely (then
      ``revert`` is a no-op);
    * :meth:`snapshot` materialises the current state as the immutable
      configuration type callers expect; it is only called when a new
      best is found, so it may be comparatively expensive.
    """

    def initial_score(self) -> float:
        """Full score of the initial state (the checked reference)."""
        raise NotImplementedError

    def propose(self, rng: random.Random) -> Optional[Mutation]:
        raise NotImplementedError

    def delta_score(self, mutation: Mutation) -> float:
        raise NotImplementedError

    def apply(self, mutation: Mutation) -> None:
        raise NotImplementedError

    def revert(self, mutation: Mutation) -> None:
        raise NotImplementedError

    def snapshot(self) -> State:
        raise NotImplementedError


def anneal_incremental(
    engine: IncrementalSearch[State],
    rng: random.Random,
    schedule: Optional[AnnealingSchedule] = None,
    check_score: Optional[Callable[[State], float]] = None,
) -> AnnealingResult[State]:
    """Minimise by simulated annealing over an incremental engine.

    The accept/reject sequence, iteration count and best state are
    bit-identical to :func:`anneal` on the equivalent full-scoring
    closures, provided the engine honours the :class:`IncrementalSearch`
    contract: randomness is drawn in the same order and every
    ``delta_score`` matches the full score to the bit.

    ``check_score`` enables the checked-reference mode used by tests: the
    current state is re-scored from scratch after every accepted mutation
    and any divergence from the incremental score raises immediately.
    """
    schedule = schedule or AnnealingSchedule()
    current_score = engine.initial_score()
    best = engine.snapshot()
    best_score = current_score
    initial_score = current_score
    temperature = schedule.initial_temperature
    accepted = 0
    converged = False
    iterations_used = 0

    for iteration in range(schedule.iterations):
        iterations_used = iteration + 1
        mutation = engine.propose(rng)
        if mutation is None:
            candidate_score = current_score
        else:
            candidate_score = engine.delta_score(mutation)
        delta = candidate_score - current_score
        if delta <= 0:
            accept = candidate_score != float("inf")
        elif candidate_score == float("inf") or temperature <= 0:
            accept = False
        else:
            accept = rng.random() < math.exp(-delta / temperature)
        if accept:
            if mutation is not None:
                engine.apply(mutation)
            current_score = candidate_score
            accepted += 1
            if check_score is not None:
                reference = check_score(engine.snapshot())
                if reference != current_score and not (
                    math.isinf(reference) and math.isinf(current_score)
                ):
                    raise AssertionError(
                        f"incremental score {current_score!r} diverged from "
                        f"full score {reference!r} at iteration {iteration}"
                    )
            if current_score < best_score:
                best = engine.snapshot()
                best_score = current_score
        elif mutation is not None:
            engine.revert(mutation)
        temperature *= schedule.cooling
        if temperature < schedule.min_temperature:
            converged = True
            break

    return AnnealingResult(
        best_state=best,
        best_score=best_score,
        initial_score=initial_score,
        iterations_used=iterations_used,
        accepted=accepted,
        converged=converged,
    )
