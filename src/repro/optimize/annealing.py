"""Simulated annealing (§4.2.4, §7.7).

OptiLog's ConfigSensor searches large configuration spaces with simulated
annealing [Kirkpatrick et al. 1983].  The search here is generic: callers
supply a ``score`` function (lower is better), a ``mutate`` function that
proposes a neighbouring configuration, and a schedule.  The search ends
when the iteration budget (the paper's *search timer*) expires or the
temperature cools below the convergence threshold, whichever is first.

Determinism: all randomness flows through the caller-provided generator;
given the same seed, initial state and budget, the search returns the same
configuration.  Experiments that sweep "search time" (Fig. 12) map
wall-clock budgets to iteration budgets through a calibrated
iterations-per-second constant.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Generic, Optional, TypeVar

State = TypeVar("State")

# Calibration constant mapping the paper's wall-clock search times onto
# iteration budgets: scoring a ~200-node tree takes on the order of tens of
# microseconds, so a 1-second search performs roughly this many mutations.
ITERATIONS_PER_SECOND = 20_000


@dataclass
class AnnealingSchedule:
    """Cooling schedule and stopping rule.

    Attributes
    ----------
    initial_temperature:
        Starting temperature, in score units.
    cooling:
        Multiplicative cooling factor applied every iteration.
    min_temperature:
        Convergence threshold; the search stops when cooled below it.
    iterations:
        Hard budget (the *search timer*).
    """

    initial_temperature: float = 1.0
    cooling: float = 0.999
    min_temperature: float = 1e-4
    iterations: int = 10_000

    @classmethod
    def for_search_time(cls, seconds: float, **overrides) -> "AnnealingSchedule":
        """Schedule whose budget models a wall-clock search time."""
        params = {"iterations": max(1, int(seconds * ITERATIONS_PER_SECOND))}
        params.update(overrides)
        return cls(**params)


@dataclass
class AnnealingResult(Generic[State]):
    """Outcome of one annealing run."""

    best_state: State
    best_score: float
    initial_score: float
    iterations_used: int
    accepted: int
    converged: bool

    @property
    def improvement(self) -> float:
        """Fractional improvement over the initial configuration."""
        if self.initial_score == 0:
            return 0.0
        return (self.initial_score - self.best_score) / self.initial_score


def anneal(
    initial: State,
    score: Callable[[State], float],
    mutate: Callable[[State, random.Random], State],
    rng: random.Random,
    schedule: Optional[AnnealingSchedule] = None,
) -> AnnealingResult[State]:
    """Minimise ``score`` by simulated annealing from ``initial``.

    ``mutate`` must return a *new* state (states are treated as immutable).
    Infeasible states may be signalled with ``float("inf")`` scores; they
    are never accepted.
    """
    schedule = schedule or AnnealingSchedule()
    current = initial
    current_score = score(current)
    best = current
    best_score = current_score
    initial_score = current_score
    temperature = schedule.initial_temperature
    accepted = 0
    converged = False
    iterations_used = 0

    for iteration in range(schedule.iterations):
        iterations_used = iteration + 1
        candidate = mutate(current, rng)
        candidate_score = score(candidate)
        delta = candidate_score - current_score
        if delta <= 0:
            accept = candidate_score != float("inf")
        elif candidate_score == float("inf") or temperature <= 0:
            accept = False
        else:
            accept = rng.random() < math.exp(-delta / temperature)
        if accept:
            current = candidate
            current_score = candidate_score
            accepted += 1
            if current_score < best_score:
                best = current
                best_score = current_score
        temperature *= schedule.cooling
        if temperature < schedule.min_temperature:
            converged = True
            break

    return AnnealingResult(
        best_state=best,
        best_score=best_score,
        initial_score=initial_score,
        iterations_used=iterations_used,
        accepted=accepted,
        converged=converged,
    )
