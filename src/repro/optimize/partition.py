"""Collaborative configuration search (§4.2.4, §3).

"Optimizing RSM configurations by exploring the search space on a single
replica creates a performance bottleneck.  Throughput can be improved by
partitioning the search space and distributing the partitions across
replicas" -- OptiLog supports this because the *selection* among proposed
configurations is deterministic at the monitor; the sensors may each
search a different slice.

Two partitioning helpers are provided:

* :func:`partition_candidates` -- deterministic round-robin split of a
  candidate set, so replica ``i`` explores configurations whose primary
  role comes from slice ``i`` (Aware: the leader; OptiTree: the root).
* :func:`scatter_search` -- runs one search per slice and returns the
  per-slice winners, modelling the scatter-gather the paper cites;
  the gather step *is* the ConfigMonitor's best-of-(f+1) selection.
"""

from __future__ import annotations

import random
from typing import Callable, FrozenSet, List, Optional, Sequence, TypeVar

Configuration = TypeVar("Configuration")

# A slice-restricted search: (slice, full candidate set, rng) -> config.
SliceSearch = Callable[
    [FrozenSet[int], FrozenSet[int], random.Random], Optional[Configuration]
]


def partition_candidates(
    candidates: FrozenSet[int], parts: int
) -> List[FrozenSet[int]]:
    """Split ``candidates`` into ``parts`` deterministic round-robin slices.

    Slices are balanced within one element and identical on every replica
    (sorted order), so replicas agree on who searches what without
    coordination.  Empty slices are possible when ``parts`` exceeds the
    candidate count.
    """
    if parts < 1:
        raise ValueError("parts must be positive")
    ordered = sorted(candidates)
    slices: List[List[int]] = [[] for _ in range(parts)]
    for index, candidate in enumerate(ordered):
        slices[index % parts].append(candidate)
    return [frozenset(chunk) for chunk in slices]


def slice_for_replica(
    candidates: FrozenSet[int], parts: int, replica_id: int
) -> FrozenSet[int]:
    """The slice replica ``replica_id`` is responsible for searching."""
    return partition_candidates(candidates, parts)[replica_id % parts]


def scatter_search(
    candidates: FrozenSet[int],
    parts: int,
    search: SliceSearch,
    rng: random.Random,
) -> List[Configuration]:
    """Run one slice-restricted search per partition (scatter phase).

    Returns the non-None winners of each slice; in the replicated system
    each result would be proposed to the log and the ConfigMonitor's
    deterministic selection performs the gather.
    """
    winners = []
    for chunk in partition_candidates(candidates, parts):
        if not chunk:
            continue
        result = search(chunk, candidates, rng)
        if result is not None:
            winners.append(result)
    return winners
