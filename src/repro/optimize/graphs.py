"""Small deterministic undirected-graph type for suspicion graphs.

The suspicion graph ``G`` (§4.2.3) has replicas as vertices and two-way
suspicions as edges.  Candidate selection needs deterministic iteration
(all replicas must compute identical candidate sets), so every accessor
returns sorted data.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

Edge = Tuple[int, int]


def ordered_edge(a: int, b: int) -> Edge:
    """Canonical (low, high) form of an undirected edge."""
    if a == b:
        raise ValueError(f"self-loop on {a}")
    return (a, b) if a < b else (b, a)


class Graph:
    """Undirected graph with deterministic, sorted iteration order."""

    def __init__(self, vertices: Iterable[int] = (), edges: Iterable[Edge] = ()):
        self._adj: Dict[int, Set[int]] = {}
        for vertex in vertices:
            self.add_vertex(vertex)
        for a, b in edges:
            self.add_edge(a, b)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        self._adj.setdefault(v, set())

    def remove_vertex(self, v: int) -> None:
        for neighbor in self._adj.pop(v, set()):
            self._adj[neighbor].discard(v)

    def add_edge(self, a: int, b: int) -> None:
        a, b = ordered_edge(a, b)
        self.add_vertex(a)
        self.add_vertex(b)
        self._adj[a].add(b)
        self._adj[b].add(a)

    def remove_edge(self, a: int, b: int) -> None:
        self._adj.get(a, set()).discard(b)
        self._adj.get(b, set()).discard(a)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def has_edge(self, a: int, b: int) -> bool:
        return b in self._adj.get(a, set())

    def vertices(self) -> List[int]:
        return sorted(self._adj)

    def edges(self) -> List[Edge]:
        result = [
            (a, b) for a in self._adj for b in self._adj[a] if a < b
        ]
        return sorted(result)

    def neighbors(self, v: int) -> List[int]:
        return sorted(self._adj.get(v, set()))

    def degree(self, v: int) -> int:
        return len(self._adj.get(v, set()))

    def edge_count(self) -> int:
        return sum(len(neighbors) for neighbors in self._adj.values()) // 2

    def subgraph(self, keep: Iterable[int]) -> "Graph":
        keep_set = set(keep)
        sub = Graph(vertices=(v for v in self._adj if v in keep_set))
        for a, b in self.edges():
            if a in keep_set and b in keep_set:
                sub.add_edge(a, b)
        return sub

    def complement(self) -> "Graph":
        verts = self.vertices()
        comp = Graph(vertices=verts)
        for i, a in enumerate(verts):
            for b in verts[i + 1 :]:
                if not self.has_edge(a, b):
                    comp.add_edge(a, b)
        return comp

    def copy(self) -> "Graph":
        clone = Graph(vertices=self._adj)
        for a, b in self.edges():
            clone.add_edge(a, b)
        return clone

    def __iter__(self) -> Iterator[int]:
        return iter(self.vertices())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={len(self)}, |E|={self.edge_count()})"


def triangles_through_edge(graph: Graph, a: int, b: int) -> FrozenSet[int]:
    """Vertices forming a triangle with the edge (a, b)."""
    common = set(graph.neighbors(a)) & set(graph.neighbors(b))
    return frozenset(common)
