"""Small deterministic undirected-graph type for suspicion graphs.

The suspicion graph ``G`` (§4.2.3) has replicas as vertices and two-way
suspicions as edges.  Candidate selection needs deterministic iteration
(all replicas must compute identical candidate sets), so every accessor
returns sorted data.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

Edge = Tuple[int, int]


def ordered_edge(a: int, b: int) -> Edge:
    """Canonical (low, high) form of an undirected edge."""
    if a == b:
        raise ValueError(f"self-loop on {a}")
    return (a, b) if a < b else (b, a)


class Graph:
    """Undirected graph with deterministic, sorted iteration order."""

    def __init__(self, vertices: Iterable[int] = (), edges: Iterable[Edge] = ()):
        self._adj: Dict[int, Set[int]] = {}
        self._bitmasks: Optional[Tuple[List[int], List[int]]] = None
        for vertex in vertices:
            self.add_vertex(vertex)
        for a, b in edges:
            self.add_edge(a, b)

    @classmethod
    def from_parts(cls, vertices: Iterable[int], edges: Iterable[Edge]) -> "Graph":
        """Build from known-good parts: distinct vertices, canonical
        (low, high) edges over those vertices.  Skips the per-call
        validation of :meth:`add_edge` -- the SuspicionMonitor's refresh
        path, where both invariants hold by construction.
        """
        graph = cls.__new__(cls)
        adj = graph._adj = {vertex: set() for vertex in vertices}
        graph._bitmasks = None
        for a, b in edges:
            adj[a].add(b)
            adj[b].add(a)
        return graph

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        if v not in self._adj:
            self._adj[v] = set()
            self._bitmasks = None

    def remove_vertex(self, v: int) -> None:
        for neighbor in self._adj.pop(v, set()):
            self._adj[neighbor].discard(v)
        self._bitmasks = None

    def add_edge(self, a: int, b: int) -> None:
        a, b = ordered_edge(a, b)
        self.add_vertex(a)
        self.add_vertex(b)
        self._adj[a].add(b)
        self._adj[b].add(a)
        self._bitmasks = None

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Bulk :meth:`add_edge` with the per-edge lookups hoisted (the
        vectorized Erdős–Rényi generator's fill path)."""
        adj = self._adj
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop on {a}")
            bucket_a = adj.get(a)
            if bucket_a is None:
                bucket_a = adj[a] = set()
            bucket_b = adj.get(b)
            if bucket_b is None:
                bucket_b = adj[b] = set()
            bucket_a.add(b)
            bucket_b.add(a)
        self._bitmasks = None

    def remove_edge(self, a: int, b: int) -> None:
        self._adj.get(a, set()).discard(b)
        self._adj.get(b, set()).discard(a)
        self._bitmasks = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def has_edge(self, a: int, b: int) -> bool:
        return b in self._adj.get(a, set())

    def vertices(self) -> List[int]:
        return sorted(self._adj)

    def edges(self) -> List[Edge]:
        result = [
            (a, b) for a in self._adj for b in self._adj[a] if a < b
        ]
        return sorted(result)

    def neighbors(self, v: int) -> List[int]:
        return sorted(self._adj.get(v, set()))

    def degree(self, v: int) -> int:
        return len(self._adj.get(v, set()))

    def edge_count(self) -> int:
        return sum(len(neighbors) for neighbors in self._adj.values()) // 2

    def adjacency_bitmasks(
        self, keep: Optional[Iterable[int]] = None
    ) -> Tuple[List[int], List[int]]:
        """(vertices, masks): int-bitmask adjacency for the MIS solvers.

        ``vertices`` is sorted (so bit index order equals vertex order --
        the property the solvers' deterministic tie-breaking relies on)
        and ``masks[i]`` has bit ``j`` set iff ``vertices[i]`` and
        ``vertices[j]`` are adjacent.  ``keep`` restricts to an induced
        subgraph without materialising a :class:`Graph` for it.  The
        full (``keep=None``) adjacency is memoized until the next
        mutation -- the suspicion monitor reads it once per candidate
        derivation.
        """
        if keep is None:
            if self._bitmasks is not None:
                return self._bitmasks
            vertices = sorted(self._adj)
        else:
            keep_set = set(keep)
            vertices = sorted(v for v in self._adj if v in keep_set)
        count = len(vertices)
        masks = [0] * count
        if keep is None and count and vertices[0] == 0 and vertices[-1] == count - 1:
            # Sorted distinct ints spanning 0..count-1 are exactly
            # range(count): bit index == vertex id, no index map needed
            # (the common case -- fresh monitor graphs, ER pools).
            adj = self._adj
            for i in range(count):
                mask = 0
                for neighbor in adj[i]:
                    mask |= 1 << neighbor
                masks[i] = mask
        else:
            index = {v: i for i, v in enumerate(vertices)}
            for i, v in enumerate(vertices):
                mask = 0
                for neighbor in self._adj[v]:
                    j = index.get(neighbor)
                    if j is not None:
                        mask |= 1 << j
                masks[i] = mask
        result = (vertices, masks)
        if keep is None:
            self._bitmasks = result
        return result

    def subgraph(self, keep: Iterable[int]) -> "Graph":
        keep_set = set(keep)
        sub = Graph(vertices=(v for v in self._adj if v in keep_set))
        for a, b in self.edges():
            if a in keep_set and b in keep_set:
                sub.add_edge(a, b)
        return sub

    def complement(self) -> "Graph":
        verts = self.vertices()
        comp = Graph(vertices=verts)
        for i, a in enumerate(verts):
            for b in verts[i + 1 :]:
                if not self.has_edge(a, b):
                    comp.add_edge(a, b)
        return comp

    def copy(self) -> "Graph":
        clone = Graph(vertices=self._adj)
        for a, b in self.edges():
            clone.add_edge(a, b)
        return clone

    def __iter__(self) -> Iterator[int]:
        return iter(self.vertices())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={len(self)}, |E|={self.edge_count()})"


def triangles_through_edge(graph: Graph, a: int, b: int) -> FrozenSet[int]:
    """Vertices forming a triangle with the edge (a, b)."""
    common = set(graph.neighbors(a)) & set(graph.neighbors(b))
    return frozenset(common)
