"""Adversary synthesis: anneal the attacker, not the protocol.

ROADMAP item 4 (after Buchnik & Friedman's biased optimizer and
Alpturer et al.'s behavior synthesis): instead of hand-writing five
adversarial scenarios, *search* the strategy space for the schedule that
maximizes damage under an explicit budget.  The pieces are all reused:

* state space   -- :class:`repro.faults.genome.AttackGenome` (budgeted,
  quantized, compiled deterministically to ``FaultSpec`` schedules);
* objective     -- :mod:`repro.experiments.attack` (worst-of-k-seeds
  commit-latency degradation or false-suspicion yield, event-budget
  timeouts, liveness surfaced per evaluation);
* optimizer     -- the PR 4 :class:`IncrementalSearch` protocol and
  :func:`anneal_incremental` engine (maximization = minimizing the
  negated degradation; invalid genomes score ``inf``, the annealer's
  never-accepted infeasible convention);
* parallelism   -- the PR 4 pool: independent restart chains shard over
  :func:`parallel_map` (and a single chain shards its per-seed
  evaluations instead), merged in chain order, so any ``--jobs`` is
  byte-identical to the serial run.

The "incremental" in the protocol here is an evaluation *cache*, not a
delta-score: scenario runs dwarf everything else, and annealing revisits
states (reverted proposals, oscillation), so memoizing genome -> score
is the profitable increment.  ``delta_score`` still returns absolute
scores, exactly as the contract requires.
"""

from __future__ import annotations

import random
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.attack import (
    AttackArena,
    ensure_baselines,
    evaluate_genome,
    genome_label,
)
from repro.experiments.parallel import derive_sweep_seed, parallel_map
from repro.faults.genome import (
    AdversaryBudget,
    AttackGenome,
    mutate,
    seed_genome,
)
from repro.optimize.annealing import (
    AnnealingSchedule,
    IncrementalSearch,
    anneal_incremental,
)

#: Default cooling: with ~tens of iterations per chain (evaluations are
#: whole seeded scenario runs), the temperature must fall fast.  Scores
#: are negated degradation ratios, so O(1) temperature units are right.
DEFAULT_SCHEDULE = AnnealingSchedule(
    initial_temperature=1.0, cooling=0.9, min_temperature=1e-3, iterations=40
)


class AttackSearchEngine(IncrementalSearch):
    """IncrementalSearch over genomes; score = negated degradation.

    Pure evaluation (``revert`` is a no-op); ``snapshot`` returns the
    ``(genome, evaluation)`` pair so the annealer's best state carries
    its liveness/recovery report.  The cache makes re-visited states
    free; ``evaluations`` counts actual scenario-running evaluations and
    ``scenario_runs`` the underlying seeded runs (the bench throughput
    denominator).
    """

    def __init__(
        self,
        arena: AttackArena,
        budget: AdversaryBudget,
        objective: str,
        initial: Optional[AttackGenome] = None,
        eval_jobs: Optional[int] = None,
    ):
        self.arena = ensure_baselines(arena)
        self.budget = budget
        self.objective = objective
        self.eval_jobs = eval_jobs
        self._current = (
            initial if initial is not None else seed_genome(budget, arena.profile)
        )
        self._evaluations: Dict[AttackGenome, Dict[str, Any]] = {}
        self.evaluations = 0

    @property
    def scenario_runs(self) -> int:
        return self.evaluations * len(self.arena.seeds)

    def _score_of(self, evaluation: Dict[str, Any]) -> float:
        if evaluation.get("degradation") is None:
            return float("inf")
        return -evaluation["degradation"]

    def _evaluate(self, genome: AttackGenome) -> Dict[str, Any]:
        cached = self._evaluations.get(genome)
        if cached is None:
            cached = evaluate_genome(
                self.arena, self.budget, self.objective, genome, jobs=self.eval_jobs
            )
            if "invalid" not in cached:
                self.evaluations += 1
            self._evaluations[genome] = cached
        return cached

    # -- IncrementalSearch protocol ------------------------------------

    def initial_score(self) -> float:
        return self._score_of(self._evaluate(self._current))

    def propose(self, rng: random.Random) -> Dict[str, Any]:
        candidate = mutate(
            self._current, rng, self.budget, self.arena.profile
        )
        return {"genome": candidate}

    def delta_score(self, mutation: Dict[str, Any]) -> float:
        return self._score_of(self._evaluate(mutation["genome"]))

    def apply(self, mutation: Dict[str, Any]) -> None:
        self._current = mutation["genome"]

    def revert(self, mutation: Dict[str, Any]) -> None:
        pass  # pure evaluation: nothing was touched

    def snapshot(self) -> Tuple[AttackGenome, Dict[str, Any]]:
        return self._current, self._evaluations[self._current]


def _run_attack_chain(point: Dict[str, Any]) -> Dict[str, Any]:
    """Pool worker: one annealing chain, fully self-contained."""
    engine = AttackSearchEngine(
        arena=point["arena"],
        budget=point["budget"],
        objective=point["objective"],
        initial=seed_genome(
            point["budget"],
            point["arena"].profile,
            variant=point["chain"],
            prefer="smear" if point["objective"] == "suspicion" else None,
        ),
        eval_jobs=point.get("eval_jobs"),
    )
    rng = random.Random(point["chain_seed"])
    result = anneal_incremental(engine, rng, point["schedule"])
    best_genome, best_evaluation = result.best_state
    return {
        "chain": point["chain"],
        "chain_seed": point["chain_seed"],
        "best_score": result.best_score,
        "best_degradation": -result.best_score,
        "initial_degradation": -result.initial_score,
        "best_genome": best_evaluation["genome"],
        "best_evaluation": best_evaluation,
        "best_label": genome_label(best_genome),
        "iterations_used": result.iterations_used,
        "accepted": result.accepted,
        "evaluations": engine.evaluations,
        "scenario_runs": engine.scenario_runs,
    }


def attack_search(
    arena: AttackArena,
    budget: AdversaryBudget,
    objective: str = "latency",
    seed: int = 0,
    restarts: int = 2,
    schedule: Optional[AnnealingSchedule] = None,
    jobs: Optional[int] = None,
    progress=None,
) -> Dict[str, Any]:
    """Synthesize the worst attack the budget allows on this arena.

    Runs ``restarts`` independent annealing chains from labelled
    substreams of ``seed`` and keeps the best worst-of-seeds result.
    Parallelism places itself at exactly one level: with multiple chains
    the pool shards *chains* (per-seed evaluations serial inside each
    worker); with one chain it shards the per-seed *evaluations*.
    Either way results merge in fixed order, so output is byte-identical
    for any ``jobs``.
    """
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    schedule = schedule or DEFAULT_SCHEDULE
    ensure_baselines(arena)
    chain_parallel = restarts > 1
    points = [
        {
            "chain": chain,
            "chain_seed": derive_sweep_seed(seed, f"attack-chain-{chain}"),
            "arena": arena,
            "budget": budget,
            "objective": objective,
            "schedule": schedule,
            "eval_jobs": None if chain_parallel else jobs,
        }
        for chain in range(restarts)
    ]
    chains = parallel_map(
        _run_attack_chain,
        points,
        jobs=jobs if chain_parallel else 1,
        progress=progress,
        label=lambda point: f"chain {point['chain']} (seed {point['chain_seed']})",
    )
    best = max(chains, key=lambda chain: (chain["best_degradation"], -chain["chain"]))
    return {
        "arena": arena.name,
        "duration": arena.base.duration,
        "seeds": list(arena.seeds),
        "objective": objective,
        "budget": asdict(budget),
        "seed": seed,
        "restarts": restarts,
        "iterations": schedule.iterations,
        "best": {
            "degradation": best["best_degradation"],
            "genome": best["best_genome"],
            "label": best["best_label"],
            "evaluation": best["best_evaluation"],
            "chain": best["chain"],
        },
        "chains": [
            {
                key: chain[key]
                for key in (
                    "chain",
                    "chain_seed",
                    "best_degradation",
                    "initial_degradation",
                    "iterations_used",
                    "accepted",
                    "evaluations",
                    "scenario_runs",
                )
            }
            for chain in chains
        ],
        "scenario_runs": sum(chain["scenario_runs"] for chain in chains),
    }
