"""Optimization toolkit: annealing, independent sets, suspicion-graph sets.

Three pieces of machinery the paper's pipeline relies on:

* simulated annealing with a candidate-respecting ``mutate`` (§4.2.4, §7.7);
* deterministic maximum-independent-set computation via Bron-Kerbosch on
  the complement graph (§4.2.3, Fig. 8);
* the maximal disjoint edge set ``E_d`` and triangle set ``T`` used by
  OptiTree's candidate selection (§6.4).
"""

from repro.optimize.annealing import (
    AnnealingResult,
    AnnealingSchedule,
    IncrementalSearch,
    anneal,
    anneal_incremental,
)
from repro.optimize.graphs import Graph
from repro.optimize.maxindset import (
    greedy_independent_set,
    is_independent_set,
    maximum_independent_set,
)

__all__ = [
    "AnnealingResult",
    "AnnealingSchedule",
    "Graph",
    "IncrementalSearch",
    "anneal",
    "anneal_incremental",
    "greedy_independent_set",
    "is_independent_set",
    "maximum_independent_set",
]
