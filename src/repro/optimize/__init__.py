"""Optimization toolkit: annealing, independent sets, suspicion-graph sets.

Three pieces of machinery the paper's pipeline relies on:

* simulated annealing with a candidate-respecting ``mutate`` (§4.2.4, §7.7);
* deterministic maximum-independent-set computation via Bron-Kerbosch on
  the complement graph (§4.2.3, Fig. 8);
* the maximal disjoint edge set ``E_d`` and triangle set ``T`` used by
  OptiTree's candidate selection (§6.4).
"""

from repro.optimize.annealing import (
    AnnealingResult,
    AnnealingSchedule,
    IncrementalSearch,
    anneal,
    anneal_incremental,
)
from repro.optimize.graphs import Graph
from repro.optimize.maxindset import (
    greedy_independent_set,
    is_independent_set,
    maximum_independent_set,
)

def __getattr__(name):
    # The adversary-synthesis engine sits above the experiments layer
    # (which itself uses this package), so it must load lazily: an eager
    # import here would close the cycle optimize -> experiments ->
    # consensus/core -> optimize.
    if name in ("AttackSearchEngine", "attack_search"):
        from repro.optimize import adversary

        return getattr(adversary, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AnnealingResult",
    "AnnealingSchedule",
    "AttackSearchEngine",
    "attack_search",
    "Graph",
    "IncrementalSearch",
    "anneal",
    "anneal_incremental",
    "greedy_independent_set",
    "is_independent_set",
    "maximum_independent_set",
]
