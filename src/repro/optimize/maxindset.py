"""Maximum independent set computation (§4.2.3, Fig. 8).

The SuspicionMonitor derives its candidate set ``K`` as a maximum
independent set of the suspicion graph.  The paper computes it "using a
heuristic variant of the Bron-Kerbosch algorithm, which detects cliques on
the inverted graph"; an independent set in ``G`` is exactly a clique in the
complement of ``G``.

Two implementations are provided:

* :func:`maximum_independent_set` -- exact Bron-Kerbosch with pivoting on
  the complement graph; deterministic tie-breaking (largest set, then
  lexicographically smallest vertex tuple) so every replica computes the
  same ``K``.
* :func:`greedy_independent_set` -- the min-degree greedy heuristic, used
  as the fast path for large graphs and as a comparison point in the
  scalability study (Fig. 8).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.optimize.graphs import Graph


def is_independent_set(graph: Graph, vertices: Iterable[int]) -> bool:
    """True iff no two of ``vertices`` are adjacent in ``graph``."""
    chosen = list(vertices)
    for i, a in enumerate(chosen):
        for b in chosen[i + 1 :]:
            if graph.has_edge(a, b):
                return False
    return True


def _bron_kerbosch_max_clique(adj: Dict[int, Set[int]]) -> Tuple[int, ...]:
    """Maximum clique via Bron-Kerbosch with pivoting.

    Deterministic: candidate iteration is in sorted order and ties between
    equal-sized cliques resolve to the lexicographically smallest tuple.
    """
    best: List[Tuple[int, ...]] = [()]

    def consider(clique: Tuple[int, ...]) -> None:
        current = best[0]
        if len(clique) > len(current) or (
            len(clique) == len(current) and clique < current
        ):
            best[0] = clique

    def expand(r: Tuple[int, ...], p: Set[int], x: Set[int]) -> None:
        if not p and not x:
            consider(tuple(sorted(r)))
            return
        # Prune: even taking all of P cannot beat the current best.
        if len(r) + len(p) < len(best[0]):
            return
        # Pivot on the vertex of P ∪ X with the most neighbours in P.
        pivot = max(sorted(p | x), key=lambda v: len(adj[v] & p))
        for v in sorted(p - adj[pivot]):
            expand(r + (v,), p & adj[v], x & adj[v])
            p = p - {v}
            x = x | {v}

    expand((), set(adj), set())
    return best[0]


def maximum_independent_set(graph: Graph) -> FrozenSet[int]:
    """Exact maximum independent set with deterministic tie-breaking.

    Computed as a maximum clique of the complement graph.  Isolated
    vertices of ``graph`` are universal in the complement, so they always
    appear in the result, matching the intuition that an unsuspected
    replica is always a candidate.
    """
    vertices = graph.vertices()
    if not vertices:
        return frozenset()
    complement_adj: Dict[int, Set[int]] = {v: set() for v in vertices}
    vertex_set = set(vertices)
    for v in vertices:
        complement_adj[v] = vertex_set - set(graph.neighbors(v)) - {v}
    return frozenset(_bron_kerbosch_max_clique(complement_adj))


def greedy_independent_set(graph: Graph) -> FrozenSet[int]:
    """Min-degree greedy heuristic for a large independent set.

    Deterministic: ties on degree resolve to the smallest vertex id.  The
    result is maximal (cannot be extended) but not necessarily maximum.
    """
    remaining = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    chosen: Set[int] = set()
    while remaining:
        v = min(remaining, key=lambda u: (len(remaining[u]), u))
        chosen.add(v)
        dropped = remaining.pop(v)
        for u in dropped:
            if u in remaining:
                for w in remaining[u]:
                    if w in remaining:
                        remaining[w].discard(u)
                del remaining[u]
    return frozenset(chosen)


def independent_set_of_size(
    graph: Graph, size: int, exact_threshold: int = 40
) -> Optional[FrozenSet[int]]:
    """An independent set with at least ``size`` vertices, or None.

    Used by the SuspicionMonitor's overflow rule ("too many suspicions
    occur when G no longer contains an independent set of size n-f").  For
    graphs up to ``exact_threshold`` vertices the check is exact; beyond
    that the greedy heuristic provides a sound (never falsely positive)
    approximation.
    """
    greedy = greedy_independent_set(graph)
    if len(greedy) >= size:
        return greedy
    if len(graph) <= exact_threshold:
        exact = maximum_independent_set(graph)
        if len(exact) >= size:
            return exact
    return None
