"""Maximum independent set computation (§4.2.3, Fig. 8).

The SuspicionMonitor derives its candidate set ``K`` as a maximum
independent set of the suspicion graph.  The paper computes it "using a
heuristic variant of the Bron-Kerbosch algorithm, which detects cliques on
the inverted graph"; an independent set in ``G`` is exactly a clique in the
complement of ``G``.

Two implementations are provided:

* :func:`maximum_independent_set` -- exact Bron-Kerbosch with pivoting on
  the complement graph; deterministic tie-breaking (largest set, then
  lexicographically smallest vertex tuple) so every replica computes the
  same ``K``.
* :func:`greedy_independent_set` -- the min-degree greedy heuristic, used
  as the fast path for large graphs and as a comparison point in the
  scalability study (Fig. 8).

Both run on **int-bitmask adjacency** (:meth:`Graph.adjacency_bitmasks`):
vertex sets become machine ints, set intersection becomes ``&``, degree
becomes a popcount.  The original set-based solvers are kept as
``*_reference`` twins; the equivalence tests pin the bitset results to
them bit-for-bit (the tie-breaking rules translate exactly because bit
index order equals sorted vertex order).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.optimize.graphs import Graph

try:  # Python >= 3.10
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - exercised on 3.9 CI only
    def _popcount(mask: int) -> int:
        return bin(mask).count("1")


def is_independent_set(graph: Graph, vertices: Iterable[int]) -> bool:
    """True iff no two of ``vertices`` are adjacent in ``graph``."""
    chosen = list(vertices)
    for i, a in enumerate(chosen):
        for b in chosen[i + 1 :]:
            if graph.has_edge(a, b):
                return False
    return True


# ----------------------------------------------------------------------
# Bitset solvers (the production path)
# ----------------------------------------------------------------------
def _mask_lex_smaller(a: int, b: int) -> bool:
    """Is the vertex tuple of ``a`` lexicographically smaller than ``b``'s?

    For equal-popcount masks over the same index mapping, the sorted
    vertex tuples first differ at ``min(A xor B)``; the tuple owning that
    smallest differing element is the smaller one.
    """
    diff = a ^ b
    return bool(a & (diff & -diff))


def _max_clique_mask(adj: List[int], count: int) -> int:
    """Maximum clique over bitmask adjacency via Bron-Kerbosch with
    pivoting; ties between equal-sized cliques resolve to the
    lexicographically smallest vertex tuple (bit order == vertex order).
    """
    best_mask = 0
    best_size = 0

    def expand(r_mask: int, r_size: int, p_mask: int, x_mask: int) -> None:
        nonlocal best_mask, best_size
        if not p_mask and not x_mask:
            if r_size > best_size or (
                r_size == best_size and _mask_lex_smaller(r_mask, best_mask)
            ):
                best_mask = r_mask
                best_size = r_size
            return
        # Prune: even taking all of P cannot beat the current best.
        if r_size + _popcount(p_mask) < best_size:
            return
        # Pivot on the vertex of P ∪ X with the most neighbours in P
        # (smallest vertex wins ties: ascending scan, strict improvement).
        scan = p_mask | x_mask
        pivot_adj = 0
        pivot_best = -1
        while scan:
            low = scan & -scan
            scan ^= low
            vertex_adj = adj[low.bit_length() - 1]
            neighbors = _popcount(vertex_adj & p_mask)
            if neighbors > pivot_best:
                pivot_best = neighbors
                pivot_adj = vertex_adj
        candidates = p_mask & ~pivot_adj
        while candidates:
            low = candidates & -candidates
            candidates ^= low
            vertex_adj = adj[low.bit_length() - 1]
            expand(r_mask | low, r_size + 1, p_mask & vertex_adj, x_mask & vertex_adj)
            p_mask &= ~low
            x_mask |= low

    expand(0, 0, (1 << count) - 1, 0)
    return best_mask


def _mask_to_vertices(mask: int, vertices: List[int]) -> FrozenSet[int]:
    chosen = []
    while mask:
        low = mask & -mask
        mask ^= low
        chosen.append(vertices[low.bit_length() - 1])
    return frozenset(chosen)


def maximum_independent_set_masks(
    vertices: List[int], masks: List[int]
) -> FrozenSet[int]:
    """Exact MIS over bitmask adjacency (the SuspicionMonitor's direct
    entry point -- no subgraph materialisation needed)."""
    count = len(vertices)
    if not count:
        return frozenset()
    full = (1 << count) - 1
    complement = [full ^ mask ^ (1 << i) for i, mask in enumerate(masks)]
    return _mask_to_vertices(_max_clique_mask(complement, count), vertices)


def maximum_independent_set(graph: Graph) -> FrozenSet[int]:
    """Exact maximum independent set with deterministic tie-breaking.

    Computed as a maximum clique of the complement graph.  Isolated
    vertices of ``graph`` are universal in the complement, so they always
    appear in the result, matching the intuition that an unsuspected
    replica is always a candidate.
    """
    vertices, masks = graph.adjacency_bitmasks()
    return maximum_independent_set_masks(vertices, masks)


def _greedy_component_mask(masks: List[int], alive: int, count: int) -> int:
    """Reference-equivalent greedy restricted to one alive set."""
    popcount = _popcount
    chosen = 0
    while alive:
        # Ascending scan + strict improvement = smallest vertex among the
        # minimum-degree ones, exactly the reference's (degree, id) min.
        zero_mask = 0
        best_low = 0
        best_adj = 0
        best_degree = count + 1
        scan = alive
        while scan:
            low = scan & -scan
            scan ^= low
            vertex_adj = masks[low.bit_length() - 1] & alive
            if not vertex_adj:
                zero_mask |= low
            elif not zero_mask and best_degree > 1:
                # Once a zero is on board (or a degree-1 pick is locked
                # in: ascending scan, strict improvement), no later
                # contested vertex can win -- skip its popcount.
                degree = popcount(vertex_adj)
                if degree < best_degree:
                    best_degree = degree
                    best_low = low
                    best_adj = vertex_adj
        if zero_mask:
            # Isolated vertices have no alive neighbours: removing them
            # changes no degree, so the reference picks exactly these
            # (ascending, one per round) before any contested vertex --
            # take them all at once.  ``best_low`` may be stale (its scan
            # stopped at the first zero), so contested picks wait for the
            # next pass.
            chosen |= zero_mask
            alive &= ~zero_mask
        else:
            chosen |= best_low
            alive &= ~(best_low | best_adj)
    return chosen


def greedy_independent_set_masks(
    vertices: List[int], masks: List[int]
) -> FrozenSet[int]:
    """Min-degree greedy over bitmask adjacency.

    Picks restricted to one connected component never change degrees in
    another, so the global (degree, id)-min pick order restricted to a
    component is exactly that component's own greedy order -- the result
    is the union of per-component runs.  Suspicion graphs decompose into
    many small components, so solving per component (isolated vertices
    up front, then a bitmask BFS per component) shrinks every scan from
    |V| to the component size while staying bit-equal to the reference.
    """
    count = len(vertices)
    if not count:
        return frozenset()
    chosen_mask = 0
    remaining = 0
    for i, mask in enumerate(masks):
        if not mask:
            chosen_mask |= 1 << i  # isolated: always chosen
        else:
            remaining |= 1 << i
    while remaining:
        seed = remaining & -remaining
        component = seed
        frontier = seed
        while frontier:
            neighborhood = 0
            while frontier:
                low = frontier & -frontier
                frontier ^= low
                neighborhood |= masks[low.bit_length() - 1]
            frontier = neighborhood & remaining & ~component
            component |= frontier
        remaining &= ~component
        chosen_mask |= _greedy_component_mask(masks, component, count)
    return _mask_to_vertices(chosen_mask, vertices)


def greedy_independent_set(graph: Graph) -> FrozenSet[int]:
    """Min-degree greedy heuristic for a large independent set.

    Deterministic: ties on degree resolve to the smallest vertex id.  The
    result is maximal (cannot be extended) but not necessarily maximum.
    """
    vertices, masks = graph.adjacency_bitmasks()
    return greedy_independent_set_masks(vertices, masks)


# ----------------------------------------------------------------------
# Set-based reference twins (the pre-bitset originals)
# ----------------------------------------------------------------------
def _bron_kerbosch_max_clique(adj: Dict[int, Set[int]]) -> Tuple[int, ...]:
    """Maximum clique via Bron-Kerbosch with pivoting (reference).

    Deterministic: candidate iteration is in sorted order and ties between
    equal-sized cliques resolve to the lexicographically smallest tuple.
    """
    best: List[Tuple[int, ...]] = [()]

    def consider(clique: Tuple[int, ...]) -> None:
        current = best[0]
        if len(clique) > len(current) or (
            len(clique) == len(current) and clique < current
        ):
            best[0] = clique

    def expand(r: Tuple[int, ...], p: Set[int], x: Set[int]) -> None:
        if not p and not x:
            consider(tuple(sorted(r)))
            return
        # Prune: even taking all of P cannot beat the current best.
        if len(r) + len(p) < len(best[0]):
            return
        # Pivot on the vertex of P ∪ X with the most neighbours in P.
        pivot = max(sorted(p | x), key=lambda v: len(adj[v] & p))
        for v in sorted(p - adj[pivot]):
            expand(r + (v,), p & adj[v], x & adj[v])
            p = p - {v}
            x = x | {v}

    expand((), set(adj), set())
    return best[0]


def maximum_independent_set_reference(graph: Graph) -> FrozenSet[int]:
    """The pre-bitset exact solver; pinned equal to the production one."""
    vertices = graph.vertices()
    if not vertices:
        return frozenset()
    complement_adj: Dict[int, Set[int]] = {v: set() for v in vertices}
    vertex_set = set(vertices)
    for v in vertices:
        complement_adj[v] = vertex_set - set(graph.neighbors(v)) - {v}
    return frozenset(_bron_kerbosch_max_clique(complement_adj))


def greedy_independent_set_reference(graph: Graph) -> FrozenSet[int]:
    """The pre-bitset greedy heuristic; pinned equal to the production one."""
    remaining = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    chosen: Set[int] = set()
    while remaining:
        v = min(remaining, key=lambda u: (len(remaining[u]), u))
        chosen.add(v)
        dropped = remaining.pop(v)
        for u in dropped:
            if u in remaining:
                for w in remaining[u]:
                    if w in remaining:
                        remaining[w].discard(u)
                del remaining[u]
    return frozenset(chosen)


def independent_set_of_size(
    graph: Graph, size: int, exact_threshold: int = 40
) -> Optional[FrozenSet[int]]:
    """An independent set with at least ``size`` vertices, or None.

    Used by the SuspicionMonitor's overflow rule ("too many suspicions
    occur when G no longer contains an independent set of size n-f").  For
    graphs up to ``exact_threshold`` vertices the check is exact; beyond
    that the greedy heuristic provides a sound (never falsely positive)
    approximation.
    """
    greedy = greedy_independent_set(graph)
    if len(greedy) >= size:
        return greedy
    if len(graph) <= exact_threshold:
        exact = maximum_independent_set(graph)
        if len(exact) >= size:
            return exact
    return None
