"""Benchmark scale control.

Benchmarks default to CI-friendly reduced parameters; set ``REPRO_FULL=1``
to run at paper scale (long wall-clock).  Each bench prints the table its
figure reports (visible with ``pytest -s`` or in the benchmark extra
info).
"""

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def scale():
    return "full" if full_scale() else "ci"
