"""Fig. 7: OptiAware runtime behaviour under the Pre-Prepare delay attack.

Regenerates the latency-timeline comparison of BFT-SMaRt, Aware and
OptiAware.  Expected shape: Aware/OptiAware optimize below the static
baseline; under attack all degrade; only OptiAware reconfigures away from
the Byzantine leader and restores its optimized latency.
"""

from repro.experiments import fig7
from benchmarks.conftest import full_scale


def test_fig07_optiaware_runtime(benchmark):
    fast = not full_scale()

    def run():
        return fig7.run(fast=fast)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig7.format_table(
        ["protocol", "initial [ms]", "optimized [ms]", "attack [ms]",
         "final [ms]", "reconfigs"],
        fig7.summary_rows(results),
        title="Fig. 7 -- client latency through the attack timeline",
    ))
    static = results["static"]
    aware = results["aware"]
    optiaware = results["optiaware"]
    # Optimization helps (Aware/OptiAware beat the static baseline).
    assert aware.phase_means["optimized"] < static.phase_means["optimized"]
    # The attack degrades everyone while it lasts.
    assert static.phase_means["under attack"] > 5 * static.phase_means["initial"]
    # Only OptiAware escapes: its final latency is back near optimized,
    # the others remain degraded.
    assert optiaware.phase_means["final"] < 2 * optiaware.phase_means["optimized"]
    assert static.phase_means["final"] > 5 * static.phase_means["initial"]
    assert aware.phase_means["final"] > 5 * aware.phase_means["initial"]
    assert len(optiaware.reconfigure_times) >= 2
