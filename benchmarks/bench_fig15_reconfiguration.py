"""Fig. 15 (App. B.2): throughput under a root failing every 10 s."""

from repro.experiments import fig15
from benchmarks.conftest import full_scale


def test_fig15_reconfiguration(benchmark):
    duration = 90.0 if full_scale() else 45.0

    result = benchmark.pedantic(
        lambda: fig15.run(duration=duration, sa_iterations=2500),
        rounds=1, iterations=1,
    )
    print()
    nonzero = [v for _t, v in result.throughput_series if v > 0]
    print(f"crashes: {len(result.crash_times)}  "
          f"reconfigs: {len(result.reconfigure_times)}  "
          f"peak tput: {max(nonzero):,.0f} op/s")
    for time, value in result.throughput_series:
        print(f"  t={time:5.1f}s  {value:10,.0f} op/s")
    assert len(result.crash_times) >= 3
    assert len(result.reconfigure_times) == len(result.crash_times)
    # Every crash dips throughput and recovery follows within ~4 s
    # (~1 s of SA search plus pipeline refill), as in the paper.
    recovered = sum(
        1 for crash in result.crash_times if result.recovered_after(crash)
    )
    assert recovered == len(result.crash_times)
    # There are real dips: some buckets right after crashes are empty.
    for crash in result.crash_times:
        dip = [
            v for t, v in result.throughput_series if crash <= t <= crash + 1.5
        ]
        assert dip and min(dip) < max(nonzero) / 2
