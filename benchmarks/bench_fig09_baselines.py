"""Fig. 9: throughput and latency of HotStuff, Kauri and OptiTree across
geographic distributions (Europe21 / NA-EU43 / Stellar56 / Global73)."""

from repro.experiments import fig9
from repro.experiments.tables import format_table
from benchmarks.conftest import full_scale


def test_fig09_baseline_comparison(benchmark):
    duration = 120.0 if full_scale() else 10.0
    deployments = fig9.DEPLOYMENTS if full_scale() else ("Europe21", "Global73")

    cells = benchmark.pedantic(
        lambda: fig9.run(deployments=deployments, duration=duration,
                         search_iterations=8000),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["deployment", "protocol", "throughput [op/s]", "latency [s]"],
        [[c.deployment, c.protocol, round(c.throughput), round(c.latency, 3)]
         for c in cells],
        title="Fig. 9 -- baseline comparison",
    ))
    for deployment in deployments:
        by = {c.protocol: c for c in cells if c.deployment == deployment}
        # OptiTree > Kauri(pipeline) in throughput, lower latency.
        assert by["OptiTree"].throughput > by["Kauri (pipeline)"].throughput
        assert by["OptiTree"].latency < by["Kauri (pipeline)"].latency
        # Pipelining trades latency for throughput vs no-pipeline OptiTree.
        assert by["OptiTree"].throughput > by["OptiTree (no pipeline)"].throughput
        # Trees carry more latency than HotStuff's star (§7.4).
        assert by["Kauri (pipeline)"].latency > by["HotStuff-fixed"].latency
    summary = fig9.improvement_summary(cells, "Global73")
    if summary:
        print(f"Global73 OptiTree vs Kauri: tput {summary['throughput_gain']:+.1%}, "
              f"latency {-summary['latency_reduction']:+.1%}")
        assert summary["throughput_gain"] > 0.3
        assert summary["latency_reduction"] > 0.15
