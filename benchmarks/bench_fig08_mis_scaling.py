"""Fig. 8: candidate-set (maximum independent set) computation time."""

from repro.experiments import fig8
from repro.experiments.tables import format_table
from benchmarks.conftest import full_scale


def test_fig08_mis_scaling(benchmark):
    graphs = 100 if full_scale() else 25

    rows = benchmark.pedantic(
        lambda: fig8.run(graphs_per_size=graphs), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["n", "mean time [ms]", "mean |K|", "solver"],
        [[r.n, r.mean_time_ms, r.mean_candidates, r.solver] for r in rows],
        title="Fig. 8 -- candidate-set computation time",
    ))
    # Time grows with n within each solver regime and stays below the
    # paper's 1 s bound at n = 100.
    exact = [r for r in rows if r.solver == "bron-kerbosch"]
    heuristic = [r for r in rows if r.solver != "bron-kerbosch"]
    assert exact[0].mean_time_ms < exact[-1].mean_time_ms
    if len(heuristic) >= 2:
        assert heuristic[0].mean_time_ms < heuristic[-1].mean_time_ms
    assert all(r.mean_time_ms < 1000.0 for r in rows)
