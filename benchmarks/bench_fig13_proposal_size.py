"""Fig. 13 / §7.8: proposal-size overhead of OptiLog's sensors."""

from repro.experiments import fig13
from repro.experiments.tables import format_table


def test_fig13_proposal_size(benchmark):
    cells = benchmark.pedantic(fig13.run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["n", "sensors", "proposal size [bytes]"],
        [[c.n, c.sensors, round(c.proposal_bytes, 1)] for c in cells],
        title="Fig. 13 -- proposal size including measurements",
    ))
    extra = fig13.overhead_summary(cells, n=80)
    for sensors, overhead in extra.items():
        print(f"  n=80 {sensors}: +{overhead:,.0f} bytes")
    # Paper: ~270 B for latency+suspicions, ~4.5 KB for proofs at n=80.
    assert 150 <= extra["Suspicion+lv"] <= 500
    assert 3000 <= extra["Misbehavior+lv"] <= 6000
    # Vector size scales with n.
    lv = {c.n: c.proposal_bytes for c in cells if c.sensors == "Latency vector (lv)"}
    assert lv[80] > lv[20]
