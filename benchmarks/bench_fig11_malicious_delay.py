"""Fig. 11: OptiTree (Europe21) with δ-bounded delaying intermediates."""

from repro.experiments import fig11
from repro.experiments.tables import format_table
from benchmarks.conftest import full_scale


def test_fig11_malicious_delay(benchmark):
    duration = 120.0 if full_scale() else 10.0

    cells = benchmark.pedantic(
        lambda: fig11.run(duration=duration, search_iterations=6000),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["faulty internal", "delta", "throughput [op/s]", "latency [s]"],
        [[c.faulty, c.delta if c.delta is not None else "none",
          round(c.throughput), round(c.latency, 3)] for c in cells],
        title="Fig. 11 -- malicious delays by faulty intermediates",
    ))
    baseline = next(c for c in cells if c.delta is None)
    worst = min(
        (c for c in cells if c.delta == 1.4), key=lambda c: -c.faulty
    )
    # Four delaying intermediates at δ=1.4 visibly cut throughput.
    assert worst.throughput < baseline.throughput
    assert worst.latency > baseline.latency
    # Larger δ hurts at least as much as smaller δ for 4 attackers.
    at4 = {c.delta: c for c in cells if c.faulty == 4}
    assert at4[1.4].latency >= at4[1.1].latency - 0.01
