"""Fig. 12: tree latency improves with simulated-annealing search time."""

from repro.experiments import fig12
from repro.experiments.tables import format_table
from benchmarks.conftest import full_scale


def test_fig12_sa_search_time(benchmark):
    runs = 50 if full_scale() else 4
    sizes = fig12.SIZES if full_scale() else (57, 211)

    rows = benchmark.pedantic(
        lambda: fig12.run(sizes=sizes, runs=runs, iterations_per_second=3000),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["n", "search time [s]", "mean score [s]", "stdev"],
        [[r.n, r.search_time, r.mean_score, r.stdev_score] for r in rows],
        title="Fig. 12 -- SA search time vs tree latency",
    ))
    for n in sizes:
        sized = sorted(
            (r for r in rows if r.n == n), key=lambda r: r.search_time
        )
        # Longer searches never hurt, and the largest size gains clearly.
        assert sized[-1].mean_score <= sized[0].mean_score * 1.02
    largest = sorted(
        (r for r in rows if r.n == max(sizes)), key=lambda r: r.search_time
    )
    gain = 1.0 - largest[-1].mean_score / largest[0].mean_score
    print(f"n={max(sizes)} gain 250 ms -> 4 s: {gain:+.1%}")
    assert gain > 0.05
