"""Fig. 14 (App. B.1): latency cost of overprovisioning for u faults."""

from repro.experiments import fig14
from repro.experiments.tables import format_table
from benchmarks.conftest import full_scale


def test_fig14_overprovisioning(benchmark):
    runs = 20 if full_scale() else 2
    sizes = fig14.SIZES if full_scale() else (43, 211)

    rows = benchmark.pedantic(
        lambda: fig14.run(sizes=sizes, runs=runs, sa_iterations=2500),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["n", "u/n", "u", "mean score [s]"],
        [[r.n, f"{r.u_fraction:.0%}", r.u, r.mean_score] for r in rows],
        title="Fig. 14 -- score vs tolerated faulty leaves",
    ))
    for n in sizes:
        degradation = fig14.degradation(rows, n)
        print(f"  n={n} degradation 5% -> 30%: {degradation:+.1%}")
        assert degradation > 0.0
    # The largest size pays a substantial premium (paper: +54% at n=211).
    assert fig14.degradation(rows, max(sizes)) > 0.10
