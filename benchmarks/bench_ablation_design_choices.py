"""Ablations for DESIGN.md §5's design choices.

* Candidate rule: MIS (base monitor) vs E_d/T (tree monitor) under the
  same suspicion history -- the tree rule excludes fewer replicas per
  suspicion but gives the 2f bound.
* Score with/without the estimate ``u`` -- using the observed fault
  count beats budgeting the worst case f (§6.1.2 Challenge 2).
* SA vs greedy-random tree search under equal evaluation budgets.
"""

import random

from repro.core.log import AppendOnlyLog
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.core.suspicion import SuspicionMonitor
from repro.net.deployments import random_world_deployment
from repro.optimize.annealing import AnnealingSchedule
from repro.tree.candidates import TreeSuspicionMonitor
from repro.tree.optitree import optitree_search, random_tree
from repro.tree.score import tree_score


def _suspicion_history(n, count, seed):
    rng = random.Random(seed)
    records = []
    for round_id in range(count):
        a, b = rng.sample(range(n), 2)
        records.append(
            SuspicionRecord(
                reporter=a, suspect=b, kind=SuspicionKind.SLOW,
                round_id=round_id, phase=1,
            )
        )
        records.append(
            SuspicionRecord(
                reporter=b, suspect=a, kind=SuspicionKind.FALSE,
                round_id=round_id,
            )
        )
    return records


def test_ablation_candidate_rules(benchmark):
    """E_d/T keeps more candidates than MIS... or excludes both suspects
    -- measure both on identical histories."""
    n, f = 43, 14

    def run():
        results = []
        for seed in range(5):
            records = _suspicion_history(n, 10, seed)
            log_mis, log_tree = AppendOnlyLog(), AppendOnlyLog()
            mis = SuspicionMonitor(0, log_mis, n=n, f=f)
            tree = TreeSuspicionMonitor(0, log_tree, n=n, f=f)
            for record in records:
                log_mis.append(record)
                log_tree.append(record)
            results.append((len(mis.K), mis.u, len(tree.K), tree.u))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("  (|K_mis|, u_mis, |K_tree|, u_tree):", results)
    for k_mis, u_mis, k_tree, u_tree in results:
        # MIS keeps one endpoint per edge: K_mis >= K_tree, but the tree
        # rule's u (edges+triangles) is never above the MIS estimate.
        assert k_mis >= k_tree
        assert u_tree <= u_mis
        assert k_mis >= n - f


def test_ablation_score_with_u_vs_worst_case(benchmark):
    """Scoring with the observed u yields faster trees than assuming f."""
    n, f, u = 111, 36, 5
    deployment = random_world_deployment(n, random.Random(1))
    latency = deployment.latency.matrix_seconds() / 2.0
    schedule = AnnealingSchedule(iterations=3000, initial_temperature=0.05)
    q = n - f

    def run():
        with_u = optitree_search(
            latency, n, f, frozenset(range(n)), u=u,
            rng=random.Random(2), schedule=schedule,
        ).best_state
        worst_case = optitree_search(
            latency, n, f, frozenset(range(n)), u=0,
            rng=random.Random(2), schedule=schedule, k=q + f,
        ).best_state
        return (
            tree_score(latency, with_u, q + u),
            tree_score(latency, worst_case, q + f),
        )

    score_u, score_f = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  score(q+u)={score_u:.4f} s vs score(q+f)={score_f:.4f} s")
    assert score_u < score_f


def test_ablation_sa_vs_random_sampling(benchmark):
    """SA beats best-of-N random trees at an equal evaluation budget."""
    n, f = 157, 52
    deployment = random_world_deployment(n, random.Random(3))
    latency = deployment.latency.matrix_seconds() / 2.0
    budget = 3000
    k = 2 * f + 1

    def run():
        sa = optitree_search(
            latency, n, f, frozenset(range(n)), u=0, rng=random.Random(4),
            schedule=AnnealingSchedule(iterations=budget, initial_temperature=0.05),
            k=k,
        ).best_score
        rng = random.Random(4)
        best_random = min(
            tree_score(latency, random_tree(n, frozenset(range(n)), rng), k)
            for _ in range(budget)
        )
        return sa, best_random

    sa, best_random = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  SA={sa:.4f} s vs best-of-{3000}-random={best_random:.4f} s")
    assert sa <= best_random * 1.05
