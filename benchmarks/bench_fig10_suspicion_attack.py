"""Fig. 10: tree latency vs reconfigurations under targeted false
suspicions (n = 211, worldwide)."""

from repro.experiments import fig10
from repro.experiments.tables import format_table
from benchmarks.conftest import full_scale


def test_fig10_suspicion_attack(benchmark):
    runs = 20 if full_scale() else 2
    reconfigs = 32 if full_scale() else 10
    iterations = 3000 if full_scale() else 1200

    rows = benchmark.pedantic(
        lambda: fig10.run(runs=runs, max_reconfigs=reconfigs,
                          sa_iterations=iterations),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["reconfigs", "OptiTree [s]", "Kauri-sa [s]", "Kauri [s]"],
        [[r.reconfigurations, r.optitree, r.kauri_sa, r.kauri] for r in rows],
        title="Fig. 10 -- score under the false-suspicion attack",
    ))
    first, last = rows[0], rows[-1]
    # OptiTree stays below random Kauri trees throughout.
    assert last.optitree < last.kauri
    # Kauri-sa degrades faster than OptiTree as candidates run out.
    assert (last.kauri_sa - first.kauri_sa) > (last.optitree - first.optitree)
